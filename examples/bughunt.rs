//! Bug hunting: re-discover the eight InstCombine bugs of the paper's
//! Fig. 8 by running the verifier over them, then confirm the fixed
//! versions verify.
//!
//! Run with: `cargo run --release -p alive --example bughunt`

use alive::{verify, Verdict, VerifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = VerifyConfig::fast();

    println!("=== the eight Fig. 8 InstCombine bugs ===\n");
    for entry in alive::suite::buggy() {
        println!("--- {} ---", entry.name);
        println!("{}", entry.transform);
        match verify(&entry.transform, &config)? {
            Verdict::Invalid(cex) => println!("{cex}"),
            other => println!("UNEXPECTED: {other}"),
        }
    }

    println!("\n=== the corrected versions ===\n");
    for entry in alive::suite::corpus()
        .into_iter()
        .filter(|e| e.name.ends_with("-fixed"))
    {
        match verify(&entry.transform, &config)? {
            Verdict::Valid { typings_checked } => {
                println!("{:20} verified ({typings_checked} typings)", entry.name)
            }
            other => println!("{:20} UNEXPECTED: {other}", entry.name),
        }
    }
    Ok(())
}
