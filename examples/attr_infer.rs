//! Attribute inference (paper §3.4): find the weakest source attributes
//! and strongest target attributes for a few transformations.
//!
//! Run with: `cargo run --release -p alive --example attr_infer`

use alive::{infer_attributes, parse_transform, VerifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases = [
        // The nsw can be propagated from mul to shl.
        "Name: mul-to-shl\nPre: isPowerOf2(C) && !isSignBit(C)\n%r = mul nsw %x, C\n=>\n%r = shl %x, log2(C)",
        // The nsw on the source is unnecessary.
        "Name: add-zero\n%r = add nsw %x, 0\n=>\n%r = %x",
        // The nsw is required (the paper's §2.4 example).
        "Name: inc-gt\n%1 = add nsw %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true",
    ];

    let config = VerifyConfig::fast();
    for src in cases {
        let t = parse_transform(src)?;
        println!("=== {} ===", t.name.as_deref().unwrap_or("?"));
        println!("as written:\n{t}");
        let r = infer_attributes(&t, &config)?;
        println!(
            "precondition weakened:     {}",
            if r.pre_weakened { "yes" } else { "no" }
        );
        println!(
            "postcondition strengthened: {}",
            if r.post_strengthened { "yes" } else { "no" }
        );
        println!("inferred:\n{}", r.inferred);
        println!("({} correctness checks)\n", r.checks);
    }
    Ok(())
}
