//! Quick start: write an optimization in the Alive DSL, prove it correct,
//! get a counterexample for a broken variant, and emit InstCombine-style
//! C++ for the verified one.
//!
//! Run with: `cargo run --release -p alive --example quickstart`

use alive::{generate_cpp, parse_transform, verify, Verdict, VerifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's introductory example: (x ^ -1) + C ==> (C-1) - x,
    // polymorphic over both the constant C and the bitwidth of %x.
    let correct = parse_transform(
        r"
Name: AddSub:NotIntro
%1 = xor %x, -1
%2 = add %1, C
=>
%2 = sub C-1, %x
",
    )?;

    println!("== verifying ==\n{correct}");
    let config = VerifyConfig::default();
    match verify(&correct, &config)? {
        Verdict::Valid { typings_checked } => {
            println!("=> proven correct for {typings_checked} type assignments\n")
        }
        other => println!("=> unexpected: {other}\n"),
    }

    // An off-by-one in the target: Alive finds the bug and prints a
    // small-bitwidth counterexample (Fig. 5 style).
    let broken = parse_transform(
        r"
Name: AddSub:NotIntro (broken)
%1 = xor %x, -1
%2 = add %1, C
=>
%2 = sub C, %x
",
    )?;
    println!("== verifying the broken variant ==");
    match verify(&broken, &config)? {
        Verdict::Invalid(cex) => println!("{cex}"),
        other => println!("unexpected: {other}"),
    }

    // Generate C++ suitable for an InstCombine-style pass.
    println!("== generated C++ for the verified optimization ==");
    println!("{}", generate_cpp(&correct)?);
    Ok(())
}
