//! Optimizing IR with verified rewrites: build a small mini-LLVM function,
//! run a peephole pass assembled from *proven-correct* Alive
//! transformations, and differential-test the result against the original
//! on every 8-bit input.
//!
//! Run with: `cargo run --release -p alive --example optimize_ir`

use alive::opt::interp::run;
use alive::opt::{Function, MInst, MValue};
use alive::smt::BvVal;
use alive::{parse_transforms, verified_peephole, VerifyConfig};
use alive_ir::BinOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three candidate rewrites; the second is wrong and must be rejected
    // by verification before the pass is assembled.
    let candidates = parse_transforms(
        r"
Name: mul-pow2-to-shl
Pre: isPowerOf2(C)
%r = mul %x, C
=>
%r = shl %x, log2(C)

Name: bogus-add-identity
%r = add %x, 1
=>
%r = %x

Name: not-plus-one
%a = xor %x, -1
%r = add %a, 1
=>
%r = sub 0, %x
",
    )?;

    let entries = candidates
        .into_iter()
        .map(|t| (t.name.clone().unwrap_or_default(), t));
    let (pass, rejected) = verified_peephole(entries, &VerifyConfig::fast());
    println!("rejected by verification: {rejected:?}");
    assert_eq!(rejected, vec!["bogus-add-identity".to_string()]);

    // f(x) = -( (x * 8) )  written the long way: ~(x*8) + 1.
    let mut f = Function::new("f", vec![8]);
    let m = f.push(MInst::Bin {
        op: BinOp::Mul,
        flags: vec![],
        a: MValue::Reg(0),
        b: MValue::Const(BvVal::new(8, 8)),
    });
    let n = f.push(MInst::Bin {
        op: BinOp::Xor,
        flags: vec![],
        a: MValue::Reg(m),
        b: MValue::Const(BvVal::ones(8)),
    });
    let r = f.push(MInst::Bin {
        op: BinOp::Add,
        flags: vec![],
        a: MValue::Reg(n),
        b: MValue::Const(BvVal::new(8, 1)),
    });
    f.ret = MValue::Reg(r);

    println!("\nbefore:\n{f}");
    let original = f.clone();
    let stats = pass.run(&mut f);
    println!("\nafter ({} rewrites):\n{f}", stats.total_fires());
    for (name, count) in stats.sorted_counts() {
        println!("  {count}x {name}");
    }

    // Differential test over the whole 8-bit input space.
    for x in 0..=255u128 {
        let input = [BvVal::new(8, x)];
        let before = run(&original, &input);
        let after = run(&f, &input);
        assert!(
            after.refines(&before),
            "optimization broke x={x}: {before:?} -> {after:?}"
        );
    }
    println!("\ndifferential test passed on all 256 inputs");
    Ok(())
}
