//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build and test without network access, so this
//! vendored shim reimplements the slice of proptest's API our property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, [`Just`],
//! `any::<T>()`, `proptest::collection::vec`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted for hermeticity:
//!
//! * **No shrinking.** A failing case is reported with its generated
//!   inputs (tests panic with the value via `prop_assert!` messages), but
//!   it is not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from the test's name, so runs are reproducible; set
//!   `PROPTEST_SHIM_SEED` to explore a different stream.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Number of cases to run per property (a subset of upstream's config).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xoshiro256** RNG used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name` (and
        /// the optional `PROPTEST_SHIM_SEED` environment variable).
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
                if let Ok(n) = extra.trim().parse::<u64>() {
                    seed ^= n.rotate_left(17);
                }
            }
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                state: [next(), next(), next(), next()],
            }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy is just a sampling function.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy::new(move |rng| f(self.sample(rng)))
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
        where
            Self: Sized + 'static,
            S2: Strategy + 'static,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            BoxedStrategy::new(move |rng| f(self.sample(rng)).sample(rng))
        }

        /// Builds a recursive strategy: `self` generates leaves, and `f`
        /// wraps an inner strategy into one for the composite cases. The
        /// `_desired_size`/`_expected_branch_size` hints are accepted for
        /// API compatibility but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let mut strat = self.boxed();
            let leaf = strat.clone();
            for _ in 0..depth {
                let composite = f(strat).boxed();
                strat = BoxedStrategy::union(vec![leaf.clone(), composite]);
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(move |rng| self.sample(rng))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        sampler: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Rc::clone(&self.sampler),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a sampling function.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
            BoxedStrategy {
                sampler: Rc::new(f),
            }
        }

        /// Picks uniformly among `arms` each draw (used by `prop_oneof!`).
        pub fn union(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
        where
            T: 'static,
        {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            BoxedStrategy::new(move |rng| {
                let i = rng.below(arms.len() as u64) as usize;
                arms[i].sample(rng)
            })
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (self.start as i128 + (r % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (start as i128 + (r % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples a uniform value of the type.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

/// Strategy generating any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary + 'static>() -> strategy::BoxedStrategy<T> {
    strategy::BoxedStrategy::new(T::arbitrary)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{BoxedStrategy, Strategy};

    /// A range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let SizeRange { min, max } = size.into();
        BoxedStrategy::new(move |rng| {
            let len = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            (0..len).map(|_| element.sample(rng)).collect()
        })
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::{BoxedStrategy, Strategy};

    /// Strategy for `Option<T>`: `None` about a quarter of the time,
    /// otherwise `Some` of a value drawn from `inner` (upstream proptest
    /// defaults to a 3:1 Some:None weighting as well).
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::new(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.sample(rng))
            }
        })
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::BoxedStrategy::union(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = { $crate::test_runner::ProptestConfig::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = { $cfg:expr }; ) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&{ $strat }, &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = { $cfg }; $($rest)* }
    };
}

// Re-exports at the crate root, as upstream offers.
pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        let s = (1u32..=8, 0usize..5, any::<bool>());
        for _ in 0..500 {
            let (a, b, _c) = s.sample(&mut rng);
            assert!((1..=8).contains(&a));
            assert!(b < 5);
        }
    }

    #[test]
    fn prop_map_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let s = (2usize..=4)
            .prop_flat_map(|n| collection::vec(0usize..n, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = any::<u8>().prop_map(T::Leaf);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::deterministic("rec");
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&s.sample(&mut rng)));
        }
        assert!(max_depth > 1, "recursion never taken");
        assert!(max_depth <= 5, "depth bound exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, (a, b) in (0u8..10, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(a < 10);
            let _ = b;
        }
    }
}
