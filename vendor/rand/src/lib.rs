//! Offline stand-in for the `rand` crate.
//!
//! The build must be hermetic (no crates.io access), so this vendored shim
//! implements exactly the slice of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range`/`gen_bool`/`gen`. The generator is xoshiro256**
//! seeded through splitmix64 — high-quality and fully deterministic, though
//! its streams differ from upstream `StdRng` (callers only rely on
//! determinism, not on specific values).

#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// A deterministic xoshiro256** generator (stand-in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

use rngs::StdRng;

/// A random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value of the underlying stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference impl).
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Expand the seed with splitmix64, as rand does.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (self.start as i128 + (r % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (start as i128 + (r % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Values samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform sample.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample(rng: &mut dyn RngCore) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`Range` or `RangeInclusive`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let neg = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((400..800).contains(&hits), "p=0.3 gave {hits}/2000");
    }
}
