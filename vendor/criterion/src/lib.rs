//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/builder surface the workspace benches use —
//! [`Criterion`], [`BenchmarkId`], [`Throughput`], `criterion_group!`,
//! `criterion_main!`, `bench_function`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter` — as a plain wall-clock harness.
//! No statistics, plots, or comparisons: each benchmark runs a warm-up
//! plus a timed sample and prints mean time per iteration (and derived
//! throughput where configured). Good enough to keep `cargo bench`
//! runnable in hermetic environments; use real criterion for rigorous
//! numbers.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives the timed closure of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: u64,
    /// Mean duration of one iteration, recorded by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `f`: a few warm-up calls, then `sample_size` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.sample_size.min(3) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / self.sample_size as u32;
    }
}

fn print_result(id: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let ns = per_iter.as_nanos();
    let human = if ns >= 1_000_000_000 {
        format!("{:.3} s", per_iter.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("bench: {id:<50} {human}/iter  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if !per_iter.is_zero() => {
            let rate = n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64;
            println!("bench: {id:<50} {human}/iter  ({rate:.1} MiB/s)");
        }
        _ => println!("bench: {id:<50} {human}/iter"),
    }
}

/// A named set of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim has no separate
    /// measurement phase to bound.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id);
        print_result(&full, b.elapsed_per_iter, self.throughput);
        let _ = &self.criterion;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        print_result(&full, b.elapsed_per_iter, self.throughput);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point: owns global configuration, hands out groups.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default timed-iteration count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        print_result(&id.to_string(), b.elapsed_per_iter, None);
        self
    }
}

/// Declares a benchmark group function (same shape as upstream).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", "0..100"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs() {
        benches();
    }
}
