//! End-to-end pipeline integration: DSL text → parse → validate → type
//! enumeration → verification → attribute inference → C++ generation →
//! application to mini-LLVM IR → differential execution.

use alive::ir::BinOp;
use alive::opt::interp::run;
use alive::opt::{Function, MInst, MValue};
use alive::smt::BvVal;
use alive::{
    generate_cpp, infer_attributes, parse_transform, verified_peephole, verify, Verdict,
    VerifyConfig,
};

const OPT: &str = r"
Name: demo
Pre: isPowerOf2(C)
%r = mul nsw %x, C
%s = add %r, %y
=>
%m = shl %x, log2(C)
%s = add %m, %y
";

#[test]
fn full_pipeline_on_one_optimization() {
    let t = parse_transform(OPT).expect("parses");
    alive::validate(&t).expect("validates");

    // 1. Verification succeeds.
    let verdict = verify(&t, &VerifyConfig::fast()).expect("verifies");
    assert!(verdict.is_valid(), "{verdict}");

    // 2. Attribute inference: nsw on the source mul is unnecessary for this
    //    rewrite (the target drops it anyway).
    let attrs = infer_attributes(&t, &VerifyConfig::fast()).expect("inference");
    assert!(
        attrs.pre_weakened,
        "mul nsw requirement should be droppable"
    );

    // 3. C++ generation produces an InstCombine-style snippet.
    let cpp = generate_cpp(&t).expect("codegen");
    assert!(cpp.contains("m_Mul"), "{cpp}");
    assert!(cpp.contains("isPowerOf2()"), "{cpp}");
    assert!(cpp.contains("replaceAllUsesWith"), "{cpp}");

    // 4. Application: build ((x * 8) + y) and optimize.
    let (pass, rejected) = verified_peephole([("demo".to_string(), t)], &VerifyConfig::fast());
    assert!(rejected.is_empty());
    let mut f = Function::new("t", vec![8, 8]);
    let m = f.push(MInst::Bin {
        op: BinOp::Mul,
        flags: vec![alive::ir::Flag::Nsw],
        a: MValue::Reg(0),
        b: MValue::Const(BvVal::new(8, 8)),
    });
    let s = f.push(MInst::Bin {
        op: BinOp::Add,
        flags: vec![],
        a: MValue::Reg(m),
        b: MValue::Reg(1),
    });
    f.ret = MValue::Reg(s);
    let original = f.clone();
    let stats = pass.run(&mut f);
    assert_eq!(stats.total_fires(), 1);
    assert!(
        f.insts
            .iter()
            .any(|i| matches!(i, MInst::Bin { op: BinOp::Shl, .. })),
        "mul should have become shl: {f}"
    );

    // 5. Differential execution over a sample of the input space.
    for x in (0..=255u128).step_by(7) {
        for y in (0..=255u128).step_by(13) {
            let input = [BvVal::new(8, x), BvVal::new(8, y)];
            let before = run(&original, &input);
            let after = run(&f, &input);
            assert!(
                after.refines(&before),
                "x={x} y={y}: {before:?} -> {after:?}"
            );
        }
    }
}

#[test]
fn check_text_verifies_multiple_transforms() {
    let results = alive::check_text(
        r"
Name: ok1
%r = sub %x, %x
=>
%r = 0
Name: broken
%r = sub %x, %x
=>
%r = 1
Name: ok2
%r = or %x, %x
=>
%r = %x
",
        &VerifyConfig::fast(),
    )
    .expect("all parse and verify");
    assert_eq!(results.len(), 3);
    assert!(results[0].1.is_valid());
    assert!(results[1].1.is_invalid());
    assert!(results[2].1.is_valid());
}

#[test]
fn counterexamples_expose_each_undefined_behavior_kind() {
    // Value bug.
    let t = parse_transform("%r = add %x, 1\n=>\n%r = add %x, 2").unwrap();
    match verify(&t, &VerifyConfig::fast()).unwrap() {
        Verdict::Invalid(cex) => assert_eq!(cex.kind, alive::FailureKind::ValueMismatch),
        other => panic!("{other}"),
    }
    // Definedness bug (target divides: x/x is UB at x = 0).
    let t =
        parse_transform("%r = add %x, 0\n=>\n%d = udiv %x, %x\n%m = mul %d, %x\n%r = add %m, 0")
            .unwrap();
    match verify(&t, &VerifyConfig::fast()).unwrap() {
        Verdict::Invalid(cex) => assert_eq!(cex.kind, alive::FailureKind::Definedness),
        other => panic!("{other}"),
    }
    // Poison bug (target adds nsw).
    let t = parse_transform("%r = add %x, %y\n=>\n%r = add nsw %x, %y").unwrap();
    match verify(&t, &VerifyConfig::fast()).unwrap() {
        Verdict::Invalid(cex) => assert_eq!(cex.kind, alive::FailureKind::Poison),
        other => panic!("{other}"),
    }
    // Memory bug (target drops a store).
    let t = parse_transform("store %v, %p\n%r = load %p\n=>\n%r = %v").unwrap();
    match verify(&t, &VerifyConfig::fast()).unwrap() {
        Verdict::Invalid(cex) => assert_eq!(cex.kind, alive::FailureKind::MemoryMismatch),
        other => panic!("{other}"),
    }
}

#[test]
fn undef_refinement_matches_paper_semantics() {
    // §3.1.3: select undef can be refined by ashr undef at i4.
    let ok = parse_transform("%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3").unwrap();
    assert!(verify(&ok, &VerifyConfig::fast()).unwrap().is_valid());
    // The reverse direction is wrong: `or 1, undef` only produces odd
    // values, while the select's arms include the even value 0.
    let bad = parse_transform("%r = or i4 1, undef\n=>\n%r = select undef, i4 -1, 0").unwrap();
    assert!(verify(&bad, &VerifyConfig::fast()).unwrap().is_invalid());
    // By contrast, xor with undef covers every value, so any refinement of
    // the target is answerable by a source undef choice.
    let ok2 = parse_transform("%r = xor i4 %x, undef\n=>\n%r = select undef, i4 -1, 0").unwrap();
    assert!(verify(&ok2, &VerifyConfig::fast()).unwrap().is_valid());
}
