//! Fig. 8 integration test: the eight incorrect InstCombine
//! transformations are rejected with the failure kinds the paper reports
//! (four introduce undefined behavior, two produce wrong values, two
//! introduce poison), and every corrected version verifies.

use alive::{FailureKind, Verdict, VerifyConfig};

fn verdict_of(name: &str) -> Verdict {
    let entry = alive::suite::by_name(name).unwrap_or_else(|| panic!("{name} in corpus"));
    alive::verify(&entry.transform, &VerifyConfig::fast()).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn failure_of(name: &str) -> FailureKind {
    match verdict_of(name) {
        Verdict::Invalid(cex) => cex.kind,
        other => panic!("{name} must be rejected, got {other}"),
    }
}

#[test]
fn all_eight_bugs_are_rejected() {
    for pr in [
        "PR20186", "PR20189", "PR21242", "PR21243", "PR21245", "PR21255", "PR21256", "PR21274",
    ] {
        assert!(verdict_of(pr).is_invalid(), "{pr} must be rejected");
    }
}

#[test]
fn bug_kinds_match_the_papers_classification() {
    // "The most common kind of bug ... was the introduction of undefined
    // behavior ... four bugs in this category. We also found two bugs where
    // the value of an expression was incorrect ... and two bugs where a
    // transformation would generate a poison value."
    let ub = [
        failure_of("PR20186"),
        failure_of("PR21255"),
        failure_of("PR21256"),
        failure_of("PR21274"),
    ];
    assert!(ub.iter().all(|k| *k == FailureKind::Definedness), "{ub:?}");

    let value = [failure_of("PR21243"), failure_of("PR21245")];
    assert!(
        value.iter().all(|k| *k == FailureKind::ValueMismatch),
        "{value:?}"
    );

    let poison = [failure_of("PR20189"), failure_of("PR21242")];
    assert!(
        poison.iter().all(|k| *k == FailureKind::Poison),
        "{poison:?}"
    );
}

#[test]
fn pr21245_counterexample_is_at_i4_like_figure5() {
    let entry = alive::suite::by_name("PR21245").unwrap();
    // Default config enumerates small widths first (the paper's bias).
    match alive::verify(&entry.transform, &VerifyConfig::default()).unwrap() {
        Verdict::Invalid(cex) => {
            assert_eq!(cex.kind, FailureKind::ValueMismatch);
            assert_eq!(cex.root, "r");
            assert_eq!(cex.root_width, 4);
            assert!(cex.source_value.is_some());
            assert!(cex.target_value.is_some());
            assert_ne!(cex.source_value, cex.target_value);
            // The printed form follows Fig. 5.
            let printed = cex.to_string();
            assert!(
                printed.starts_with("ERROR: Mismatch in values of i4 %r"),
                "{printed}"
            );
            assert!(printed.contains("Example:"), "{printed}");
            assert!(printed.contains("Source value: "), "{printed}");
            assert!(printed.contains("Target value: "), "{printed}");
        }
        other => panic!("expected counterexample, got {other}"),
    }
}

#[test]
fn every_fixed_version_verifies() {
    for pr in [
        "PR20186", "PR20189", "PR21242", "PR21243", "PR21245", "PR21255", "PR21256", "PR21274",
    ] {
        let v = verdict_of(&format!("{pr}-fixed"));
        assert!(v.is_valid(), "{pr}-fixed must verify: {v}");
    }
}
