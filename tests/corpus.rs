//! Corpus-wide integration tests.
//!
//! The deterministic sample keeps the default test run fast; the full
//! sweep (every entry at the fast profile, ~4 minutes) runs with
//! `cargo test -p integration --test corpus -- --ignored`.

use alive::{generate_cpp, VerifyConfig};

#[test]
fn sampled_corpus_verifies_as_expected() {
    let all = alive::suite::full_corpus();
    let config = VerifyConfig::fast();
    // Deterministic sample: every 4th entry plus all expected bugs.
    for (i, e) in all.iter().enumerate() {
        if i % 4 != 0 && !e.expected_bug {
            continue;
        }
        let v =
            alive::verify(&e.transform, &config).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        assert_eq!(
            v.is_invalid(),
            e.expected_bug,
            "{}: verifier disagrees with expectation: {v}",
            e.name
        );
    }
}

#[test]
#[ignore = "full corpus sweep takes minutes; run explicitly"]
fn full_corpus_verifies_as_expected() {
    let config = VerifyConfig::fast();
    for e in alive::suite::full_corpus() {
        let v =
            alive::verify(&e.transform, &config).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        assert_eq!(v.is_invalid(), e.expected_bug, "{}: {v}", e.name);
    }
}

#[test]
fn corpus_covers_every_table3_category() {
    let all = alive::suite::corpus();
    for file in alive::suite::InstCombineFile::all() {
        let n = all.iter().filter(|e| e.file == file).count();
        assert!(n >= 8, "{file}: only {n} entries");
    }
    assert!(all.len() >= 140, "corpus size: {}", all.len());
}

#[test]
fn cpp_generation_covers_non_memory_corpus() {
    let mut generated = 0;
    let mut skipped = 0;
    for e in alive::suite::corpus() {
        let has_memory = e
            .transform
            .source
            .iter()
            .chain(&e.transform.target)
            .any(|s| s.inst.is_memory_op());
        match generate_cpp(&e.transform) {
            Ok(cpp) => {
                assert!(!has_memory, "{}: memory op slipped through", e.name);
                assert!(cpp.contains("match(I,"), "{}: {cpp}", e.name);
                generated += 1;
            }
            Err(_) => {
                assert!(has_memory, "{}: unexpected codegen failure", e.name);
                skipped += 1;
            }
        }
    }
    assert!(generated > 120, "generated {generated}");
    assert!(skipped <= 10, "skipped {skipped}");
}

#[test]
fn suite_names_resolve() {
    for e in alive::suite::full_corpus() {
        assert!(alive::suite::by_name(&e.name).is_some(), "{}", e.name);
    }
}
