//! Checks of specific claims and worked examples from the paper text,
//! beyond the numbered tables and figures.

use alive::{parse_transform, verify, Verdict, VerifyConfig};

/// §1: the introductory InstCombine example, both abstract (constant C)
/// and with the concrete constant 3333 the paper shows in LLVM IR.
#[test]
fn section1_intro_example() {
    let abstract_form =
        parse_transform("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x").unwrap();
    assert!(verify(&abstract_form, &VerifyConfig::default())
        .unwrap()
        .is_valid());

    let concrete =
        parse_transform("%1 = xor i32 %x, -1\n%2 = add i32 %1, 3333\n=>\n%2 = sub i32 3332, %x")
            .unwrap();
    assert!(verify(&concrete, &VerifyConfig::default())
        .unwrap()
        .is_valid());
}

/// §2.4: "(x + 1) > x ==> true", valid only because of nsw.
#[test]
fn section24_nsw_example() {
    let with_nsw =
        parse_transform("%1 = add nsw %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true").unwrap();
    assert!(verify(&with_nsw, &VerifyConfig::fast()).unwrap().is_valid());

    let without_nsw =
        parse_transform("%1 = add %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true").unwrap();
    assert!(verify(&without_nsw, &VerifyConfig::fast())
        .unwrap()
        .is_invalid());
}

/// §3.1.3: the shl-nsw/ashr worked example with precondition C1 u>= C2.
#[test]
fn section313_shl_ashr_example() {
    let t = parse_transform(
        "Pre: C1 u>= C2\n%0 = shl nsw i8 %a, C1\n%1 = ashr %0, C2\n=>\n%1 = shl nsw %a, C1-C2",
    )
    .unwrap();
    assert!(verify(&t, &VerifyConfig::fast()).unwrap().is_valid());
    // Without the precondition the subtraction wraps and the claim fails.
    let no_pre =
        parse_transform("%0 = shl nsw i8 %a, C1\n%1 = ashr %0, C2\n=>\n%1 = shl nsw %a, C1-C2")
            .unwrap();
    assert!(verify(&no_pre, &VerifyConfig::fast()).unwrap().is_invalid());
}

/// §3.1.3: the select-undef example with the ∀u2 ∃u1 quantifier structure.
#[test]
fn section313_undef_quantifier_example() {
    let t = parse_transform("%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3").unwrap();
    assert!(verify(&t, &VerifyConfig::fast()).unwrap().is_valid());
}

/// Fig. 4(c): `or i8 1, undef` only yields odd values, so refining it to a
/// bare undef (which can be even) is wrong — while refining it to the
/// constant 1 is fine.
#[test]
fn figure4_undef_semantics() {
    let bad = parse_transform("%z = or i8 1, undef\n=>\n%z = undef").unwrap();
    assert!(verify(&bad, &VerifyConfig::fast()).unwrap().is_invalid());

    let good = parse_transform("%z = or i8 1, undef\n=>\n%z = 1").unwrap();
    assert!(verify(&good, &VerifyConfig::fast()).unwrap().is_valid());

    // Fig. 4(a): xor undef, undef can be refined to any constant — the two
    // occurrences are independent.
    let xor = parse_transform("%z = xor i8 undef, undef\n=>\n%z = 7").unwrap();
    assert!(verify(&xor, &VerifyConfig::fast()).unwrap().is_valid());
}

/// §2.5 / §3.3: loads from uninitialized stack memory return undef, so
/// the load can be refined to any fixed constant.
#[test]
fn uninitialized_alloca_load_is_undef() {
    let t = parse_transform("%p = alloca i8, 1\n%v = load %p\n=>\n%v = 0").unwrap();
    assert!(verify(&t, &VerifyConfig::fast()).unwrap().is_valid());
}

/// §6.2: the prevented-bug workflow — an initially wrong patch is caught,
/// its fix verifies (we use PR21255 as the stand-in patch).
#[test]
fn section62_patch_review_workflow() {
    let patch_v1 = alive::suite::by_name("PR21255").unwrap();
    let v1 = verify(&patch_v1.transform, &VerifyConfig::fast()).unwrap();
    let Verdict::Invalid(cex) = v1 else {
        panic!("v1 must be rejected")
    };
    // The counterexample points at a concrete overflow of C2 << C1.
    assert!(!cex.bindings.is_empty());

    let patch_v2 = alive::suite::by_name("PR21255-fixed").unwrap();
    assert!(verify(&patch_v2.transform, &VerifyConfig::fast())
        .unwrap()
        .is_valid());
}

/// Table 2 constraints are exercised end to end: each attribute's poison
/// condition distinguishes an otherwise identical rewrite.
#[test]
fn table2_attribute_semantics_end_to_end() {
    // Dropping flags is always legal.
    for (src, tgt) in [
        ("add nsw", "add"),
        ("add nuw", "add"),
        ("sub nsw", "sub"),
        ("sub nuw", "sub"),
        ("mul nsw", "mul"),
        ("mul nuw", "mul"),
        ("shl nsw", "shl"),
        ("shl nuw", "shl"),
    ] {
        let t = parse_transform(&format!("%r = {src} %x, %y\n=>\n%r = {tgt} %x, %y")).unwrap();
        assert!(
            verify(&t, &VerifyConfig::fast()).unwrap().is_valid(),
            "{src} -> {tgt}"
        );
        // Adding them out of thin air is not.
        let t = parse_transform(&format!("%r = {tgt} %x, %y\n=>\n%r = {src} %x, %y")).unwrap();
        assert!(
            verify(&t, &VerifyConfig::fast()).unwrap().is_invalid(),
            "{tgt} -> {src}"
        );
    }
    for (src, tgt) in [("udiv exact", "udiv"), ("sdiv exact", "sdiv")] {
        let t = parse_transform(&format!("%r = {src} %x, %y\n=>\n%r = {tgt} %x, %y")).unwrap();
        assert!(verify(&t, &VerifyConfig::fast()).unwrap().is_valid());
    }
}

/// Table 1 definedness is exercised end to end: rewrites justified only by
/// source UB are accepted; target-side UB introduction is rejected.
#[test]
fn table1_definedness_end_to_end() {
    // x/x == 1 relies on x != 0 being UB in the source.
    let t = parse_transform("%r = udiv %x, %x\n=>\n%r = 1").unwrap();
    assert!(verify(&t, &VerifyConfig::fast()).unwrap().is_valid());

    // srem INT_MIN, -1 is UB: the negated-divisor rewrite needs C != -1.
    let t = parse_transform("Pre: C != -1\n%r = srem %X, -C\n=>\n%r = srem %X, C").unwrap();
    assert!(verify(&t, &VerifyConfig::fast()).unwrap().is_valid());
    let t = parse_transform("%r = srem %X, -C\n=>\n%r = srem %X, C").unwrap();
    assert!(verify(&t, &VerifyConfig::fast()).unwrap().is_invalid());
}
