//! End-to-end soundness: optimizing generated workloads with the
//! *verified* corpus must preserve behavior — for every function and every
//! tested input, the optimized outcome refines the original (equal values
//! where the original was defined and poison-free).
//!
//! This closes the loop between the two halves of the system: the SMT
//! verifier proves templates correct; the interpreter independently checks
//! that applying those templates preserved concrete executions.

use alive::opt::interp::run;
use alive::opt::{generate_workload, Peephole, WorkloadConfig};
use alive::smt::BvVal;
use proptest::prelude::*;

fn pass_and_workload(seed: u64, functions: usize) -> (Peephole, Vec<alive::opt::Function>) {
    let templates: Vec<(String, alive::Transform)> = alive::suite::corpus()
        .into_iter()
        .filter(|e| {
            !e.transform
                .source
                .iter()
                .chain(&e.transform.target)
                .any(|s| s.inst.is_memory_op())
        })
        .map(|e| (e.name, e.transform))
        .collect();
    let config = WorkloadConfig {
        seed,
        functions,
        width: 8, // small width => dense input coverage
        ..WorkloadConfig::default()
    };
    let funcs = generate_workload(&config, &templates);
    (Peephole::new(templates), funcs)
}

#[test]
fn optimized_workload_refines_original() {
    let (pass, funcs) = pass_and_workload(2024, 40);
    let mut optimized = funcs.clone();
    let stats = pass.run_module(&mut optimized);
    assert!(
        stats.total_fires() > 50,
        "pass should fire: {:?}",
        stats.total_fires()
    );

    let samples: Vec<u128> = vec![0, 1, 2, 3, 7, 8, 0x55, 0x80, 0xAA, 0xFE, 0xFF];
    for (orig, opt) in funcs.iter().zip(&optimized) {
        for (i, &a) in samples.iter().enumerate() {
            let args: Vec<BvVal> = orig
                .params
                .iter()
                .enumerate()
                .map(|(k, &w)| BvVal::new(w, a.rotate_left((k + i) as u32)))
                .collect();
            let before = run(orig, &args);
            let after = run(opt, &args);
            assert!(
                after.refines(&before),
                "{}: inputs {args:?}: {before:?} -> {after:?}\noriginal:\n{orig}\noptimized:\n{opt}",
                orig.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_seeds_random_inputs(seed in 0u64..10_000, inputs in proptest::collection::vec(any::<u64>(), 4)) {
        let (pass, funcs) = pass_and_workload(seed, 4);
        let mut optimized = funcs.clone();
        pass.run_module(&mut optimized);
        for (orig, opt) in funcs.iter().zip(&optimized) {
            let args: Vec<BvVal> = orig
                .params
                .iter()
                .zip(inputs.iter().cycle())
                .map(|(&w, &v)| BvVal::new(w, v as u128))
                .collect();
            let before = run(orig, &args);
            let after = run(opt, &args);
            prop_assert!(
                after.refines(&before),
                "{}: {before:?} -> {after:?}",
                orig.name
            );
        }
    }
}
