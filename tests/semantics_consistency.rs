//! Cross-validation of the two independent implementations of LLVM's
//! semantics: the SMT encoding in `alive-vcgen` (used for proofs) and the
//! concrete interpreter in `alive-opt` (used to execute optimized code).
//!
//! For every binary operation and attribute, and for *all* 4-bit operand
//! pairs, the interpreter's outcome (value / poison / UB) must agree with
//! the evaluated ι/δ/ρ expressions of the encoder. A divergence here would
//! mean the verifier proves theorems about different semantics than the
//! pass executes.

use alive::ir::{BinOp, Flag};
use alive::opt::interp::{run, Exec, Outcome};
use alive::opt::{Function, MInst, MValue};
use alive::smt::{eval, Assignment, BvVal, TermPool, Value};
use alive::typeck::{enumerate_typings, TypeckConfig};
use alive::vcgen::encode_transform;

const W: u32 = 4;

fn flag_text(flags: &[Flag]) -> String {
    flags.iter().map(|f| format!(" {f}")).collect::<String>()
}

fn check_op(op: BinOp, flags: &[Flag]) {
    // Identity transform so both templates exist; we only consult the
    // source encoding.
    let text = format!(
        "%r = {op}{f} %x, %y\n=>\n%r = {op}{f} %x, %y",
        f = flag_text(flags)
    );
    let t = alive::parse_transform(&text).unwrap();
    let cfg = TypeckConfig {
        widths: vec![W],
        ..TypeckConfig::default()
    };
    let typing = &enumerate_typings(&t, &cfg).unwrap()[0];
    let mut pool = TermPool::new();
    let enc = encode_transform(&mut pool, &t, typing).unwrap();
    let xv = enc.inputs["x"];
    let yv = enc.inputs["y"];
    let value = enc.src.values["r"];
    let defined = enc.src.defined["r"];
    let poison = enc.src.poison_free["r"];

    // The interpreter-side function.
    let mut f = Function::new("t", vec![W, W]);
    let r = f.push(MInst::Bin {
        op,
        flags: flags.to_vec(),
        a: MValue::Reg(0),
        b: MValue::Reg(1),
    });
    f.ret = MValue::Reg(r);

    for x in 0..(1u128 << W) {
        for y in 0..(1u128 << W) {
            let (bx, by) = (BvVal::new(W, x), BvVal::new(W, y));
            let mut env = Assignment::new();
            env.set(xv, bx);
            env.set(yv, by);
            let d = eval(&pool, defined, &env).unwrap() == Value::Bool(true);
            let p = eval(&pool, poison, &env).unwrap() == Value::Bool(true);
            let v = eval(&pool, value, &env).unwrap().as_bv();

            let outcome = run(&f, &[bx, by]);
            let ctx = format!("{op}{} x={x} y={y}", flag_text(flags));
            match outcome {
                Outcome::Ub => assert!(!d, "{ctx}: interp UB but encoder defined"),
                Outcome::Return(Exec::Poison) => {
                    assert!(d, "{ctx}: interp poison but encoder undefined");
                    assert!(!p, "{ctx}: interp poison but encoder poison-free");
                }
                Outcome::Return(Exec::Val(got)) => {
                    assert!(d, "{ctx}: interp value but encoder undefined");
                    assert!(p, "{ctx}: interp value but encoder poison");
                    assert_eq!(got, v, "{ctx}: value mismatch");
                }
            }
        }
    }
}

#[test]
fn plain_binops_agree() {
    for op in [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::SDiv,
        BinOp::URem,
        BinOp::SRem,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
    ] {
        check_op(op, &[]);
    }
}

#[test]
fn nsw_nuw_ops_agree() {
    for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Shl] {
        check_op(op, &[Flag::Nsw]);
        check_op(op, &[Flag::Nuw]);
        check_op(op, &[Flag::Nsw, Flag::Nuw]);
    }
}

#[test]
fn exact_ops_agree() {
    for op in [BinOp::UDiv, BinOp::SDiv, BinOp::LShr, BinOp::AShr] {
        check_op(op, &[Flag::Exact]);
    }
}
