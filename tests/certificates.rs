//! End-to-end certificate tests: every refinement the verifier proves on
//! the corpus must come with a machine-checkable certificate that the
//! independent `alive-proof` checker accepts — and tampered certificates
//! must be rejected.
//!
//! The deterministic sample keeps the default run fast; the full sweep
//! runs with `cargo test -p integration --test certificates -- --ignored`.

use alive::proof::Step;
use alive::{verify_with_certificates, Certificate, Verdict, VerifyConfig};
use std::sync::OnceLock;

fn certified_sample() -> &'static [(String, Verdict, Vec<Certificate>)] {
    static SAMPLE: OnceLock<Vec<(String, Verdict, Vec<Certificate>)>> = OnceLock::new();
    SAMPLE.get_or_init(|| {
        let config = VerifyConfig::fast();
        let mut out = Vec::new();
        for (i, e) in alive::suite::full_corpus().iter().enumerate() {
            // Deterministic sample: every 8th entry, skipping expected bugs
            // (bugs exercise the counterexample path, not certificates).
            if i % 8 != 0 || e.expected_bug {
                continue;
            }
            let (v, stats, certs) = verify_with_certificates(&e.transform, &config)
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            if v.is_valid() {
                assert_eq!(
                    certs.len(),
                    stats.queries,
                    "{}: every refuted condition must carry a certificate",
                    e.name
                );
            }
            out.push((e.name.clone(), v, certs));
        }
        out
    })
}

#[test]
fn sampled_corpus_certificates_all_check() {
    let mut checked = 0usize;
    for (name, v, certs) in certified_sample() {
        assert!(v.is_valid(), "{name}: sampled entry unexpectedly {v}");
        for cert in certs {
            cert.check()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", cert.meta.check));
            checked += 1;
        }
    }
    assert!(checked >= 20, "only {checked} certificates checked");
}

#[test]
fn sampled_corpus_certificates_round_trip() {
    for (name, _, certs) in certified_sample() {
        for cert in certs {
            let text = cert.to_text();
            let parsed =
                Certificate::parse(&text).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
            assert_eq!(&parsed, cert, "{name}: text round trip altered certificate");
            parsed
                .check()
                .unwrap_or_else(|e| panic!("{name}: reparsed certificate rejected: {e}"));
        }
    }
}

/// Dropping the final refutation must always be caught: no certificate
/// remains valid without its empty learned clause.
#[test]
fn truncated_certificates_are_rejected() {
    for (name, _, certs) in certified_sample().iter().take(4) {
        for cert in certs {
            let mut cert = cert.clone();
            let Some(last) = cert
                .steps
                .iter()
                .rposition(|s| matches!(s, Step::Learn(c) if c.is_empty()))
            else {
                panic!("{name}: certificate lacks a refutation step");
            };
            cert.steps.truncate(last);
            assert!(
                cert.check().is_err(),
                "{name}/{}: truncated certificate accepted",
                cert.meta.check
            );
        }
    }
}

/// Mutating a recorded proof must break at least some certificates. (A
/// single flip can leave a proof valid — almost any clause is RUP against
/// a small unsat formula — so the assertions are existential, per
/// mutation family, not universal.)
#[test]
fn mutated_certificates_are_rejected() {
    let certs: Vec<(String, Certificate)> = certified_sample()
        .iter()
        .flat_map(|(name, _, cs)| cs.iter().map(move |c| (name.clone(), c.clone())))
        // Mutations only bite on non-trivial proofs (>1 axiom).
        .filter(|(_, c)| c.num_axioms() > 1)
        .collect();
    assert!(!certs.is_empty(), "sample has no non-trivial certificates");

    // Family 1: flip the first literal of each learned clause.
    let mut flip_rejections = 0usize;
    for (_, cert) in &certs {
        let mut m = cert.clone();
        for s in &mut m.steps {
            if let Step::Learn(c) = s {
                if let Some(l) = c.first_mut() {
                    *l = -*l;
                }
            }
        }
        if m.check().is_err() {
            flip_rejections += 1;
        }
    }
    assert!(
        flip_rejections * 2 > certs.len(),
        "literal flips rejected only {flip_rejections}/{} certificates",
        certs.len()
    );

    // Family 2: drop one axiom clause (the proof may then delete or rely
    // on a clause that was never added).
    let mut drop_rejections = 0usize;
    for (_, cert) in &certs {
        let first_add = cert
            .steps
            .iter()
            .position(|s| matches!(s, Step::Add(_)))
            .expect("certificate has axioms");
        let mut m = cert.clone();
        m.steps.remove(first_add);
        if m.check().is_err() {
            drop_rejections += 1;
        }
    }
    assert!(
        drop_rejections > 0,
        "dropping axioms never rejected any of {} certificates",
        certs.len()
    );
}

/// Tampering with the serialized form is caught by the parser or checker.
#[test]
fn tampered_certificate_text_is_rejected() {
    let (_, _, certs) = {
        let e = alive::suite::full_corpus()
            .into_iter()
            .find(|e| !e.expected_bug)
            .expect("corpus has valid entries");
        verify_with_certificates(&e.transform, &VerifyConfig::fast()).unwrap()
    };
    let cert = certs.first().expect("at least one certificate");
    let text = cert.to_text();

    // Undercounting the variables makes recorded literals out of range
    // (or the header fails to parse).
    let shrunk = text.replace(&format!("vars: {}", cert.num_vars), "vars: 0");
    if cert.num_vars > 0 {
        let parsed = Certificate::parse(&shrunk).expect("header still well-formed");
        assert!(parsed.check().is_err(), "out-of-range literals accepted");
    }

    // Corrupting the step syntax is a parse error.
    let garbled = text.replace("steps:", "steps: what");
    assert!(Certificate::parse(&garbled).is_err());

    // Truncating the file is a parse error (missing terminator).
    let truncated = &text[..text.len() - 3];
    assert!(Certificate::parse(truncated).is_err());
}

#[test]
#[ignore = "full corpus certificate sweep takes minutes; run explicitly"]
fn full_corpus_certificates_all_check() {
    let config = VerifyConfig::fast();
    for e in alive::suite::full_corpus() {
        if e.expected_bug {
            continue;
        }
        let (v, stats, certs) = verify_with_certificates(&e.transform, &config)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        if !v.is_valid() {
            continue;
        }
        assert_eq!(certs.len(), stats.queries, "{}", e.name);
        for cert in &certs {
            let reparsed = Certificate::parse(&cert.to_text())
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            reparsed
                .check()
                .unwrap_or_else(|err| panic!("{}/{}: {err}", e.name, cert.meta.check));
        }
    }
}
