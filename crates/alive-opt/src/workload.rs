//! Deterministic workload generation — the stand-in for "compile the LLVM
//! nightly test suite and SPEC" in the paper's §6.4/Fig. 9 experiments.
//!
//! A workload is a module of straight-line functions whose expression
//! shapes mix (a) *planted* instances of optimization source templates —
//! drawn with a Zipf-like skew so a few optimizations dominate, exactly the
//! long-tail behavior of Fig. 9 — and (b) random expression DAGs that
//! mostly match nothing, standing in for the bulk of real code.

use crate::ir::{Function, MInst, MValue};
use alive_ir::ast::{BinOp, CExpr, ICmpPred, Inst, Operand, Pred, Stmt, Type};
use alive_ir::Transform;
use alive_smt::BvVal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of the workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// RNG seed (workloads are fully deterministic given the seed).
    pub seed: u64,
    /// Number of functions to generate.
    pub functions: usize,
    /// Planted optimization instances per function (before random filler).
    pub planted_per_function: usize,
    /// Random filler instructions per function.
    pub filler_per_function: usize,
    /// Zipf skew exponent for choosing which optimization to plant.
    pub zipf_exponent: f64,
    /// Bitwidth of generated values.
    pub width: u32,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            seed: 0xA11FE,
            functions: 200,
            planted_per_function: 6,
            filler_per_function: 24,
            zipf_exponent: 1.2,
            width: 32,
        }
    }
}

/// Generates a module of functions.
///
/// `templates` are the optimization patterns whose *source* shapes get
/// planted (only integer templates without conversions are plantable;
/// others are silently skipped when drawn).
pub fn generate_workload(
    config: &WorkloadConfig,
    templates: &[(String, Transform)],
) -> Vec<Function> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Zipf weights over templates, in the given order.
    let weights: Vec<f64> = (0..templates.len().max(1))
        .map(|k| 1.0 / ((k + 1) as f64).powf(config.zipf_exponent))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let mut out = Vec::with_capacity(config.functions);
    for fi in 0..config.functions {
        let mut f = Function::new(format!("f{fi}"), vec![config.width; 4]);
        for _ in 0..config.planted_per_function {
            if templates.is_empty() {
                break;
            }
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut chosen = 0;
            for (k, w) in weights.iter().enumerate() {
                if pick < *w {
                    chosen = k;
                    break;
                }
                pick -= w;
            }
            let (_, t) = &templates[chosen];
            let _ = plant(&mut f, t, config.width, &mut rng);
        }
        for _ in 0..config.filler_per_function {
            push_random_inst(&mut f, config.width, &mut rng);
        }
        // Return a xor-mix of the last few values so everything stays live.
        let n = f.params.len() + f.insts.len();
        let mut acc = MValue::Reg((n - 1) as u32);
        for k in 2..=4.min(n) {
            let v = (n - k) as u32;
            if f.width_of(v) == config.width && acc.width(&f) == config.width {
                let x = f.push(MInst::Bin {
                    op: BinOp::Xor,
                    flags: vec![],
                    a: acc,
                    b: MValue::Reg(v),
                });
                acc = MValue::Reg(x);
            }
        }
        if acc.width(&f) != config.width {
            // Root landed on an i1 (e.g. an icmp); widen it.
            let z = f.push(MInst::Conv {
                op: alive_ir::ConvOp::ZExt,
                a: acc,
                to: config.width,
            });
            acc = MValue::Reg(z);
        }
        f.ret = acc;
        out.push(f);
    }
    out
}

/// Instantiates the source template of `t` into `f` with random inputs.
///
/// Returns `false` when the template is not plantable (conversions, i1
/// scaffolding or unsupported operands).
pub fn plant(f: &mut Function, t: &Transform, width: u32, rng: &mut StdRng) -> bool {
    // Reject templates with conversions/memory (width bookkeeping).
    if t.source.iter().any(|s| {
        matches!(
            s.inst,
            Inst::Conv { .. }
                | Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Alloca { .. }
                | Inst::Gep { .. }
                | Inst::Unreachable
        )
    }) {
        return false;
    }
    let snapshot = f.insts.len();
    let mut env: HashMap<String, MValue> = HashMap::new();
    let mut consts: HashMap<String, BvVal> = HashMap::new();

    // Choose constants, biased toward values that satisfy preconditions.
    for sym in t.constant_symbols() {
        let v = pick_constant(&t.pre, &sym, width, rng);
        consts.insert(sym, v);
    }

    for stmt in &t.source {
        let Some(inst) = build_stmt(f, stmt, width, &mut env, &consts, rng) else {
            f.insts.truncate(snapshot);
            return false;
        };
        let id = f.push(inst);
        if let Some(name) = &stmt.name {
            env.insert(name.clone(), MValue::Reg(id));
        }
    }
    true
}

fn operand_value(
    f: &mut Function,
    op: &Operand,
    width: u32,
    env: &mut HashMap<String, MValue>,
    consts: &HashMap<String, BvVal>,
    rng: &mut StdRng,
) -> Option<MValue> {
    let w = match op.type_annotation() {
        Some(Type::Int(w)) => *w,
        Some(_) => return None,
        None => width,
    };
    match op {
        Operand::Reg(name, _) => {
            if let Some(v) = env.get(name) {
                return Some(*v);
            }
            // A fresh input: reuse an existing value of the right width or
            // synthesize one from a parameter.
            let v = fresh_input(f, w, rng);
            env.insert(name.clone(), v);
            Some(v)
        }
        Operand::Const(CExpr::Sym(s), _) => consts.get(s).map(|v| {
            debug_assert_eq!(v.width(), w);
            MValue::Const(*v)
        }),
        Operand::Const(CExpr::Lit(n), _) => Some(MValue::Const(BvVal::from_i128(w, *n))),
        Operand::Const(_, _) => None, // expression operands are for targets
        Operand::Undef(_) => Some(MValue::Undef(w)),
    }
}

fn build_stmt(
    f: &mut Function,
    stmt: &Stmt,
    width: u32,
    env: &mut HashMap<String, MValue>,
    consts: &HashMap<String, BvVal>,
    rng: &mut StdRng,
) -> Option<MInst> {
    match &stmt.inst {
        Inst::BinOp { op, flags, a, b } => {
            let av = operand_value(f, a, width, env, consts, rng)?;
            let bv = operand_value(f, b, width, env, consts, rng)?;
            if av.width(f) != bv.width(f) {
                return None;
            }
            Some(MInst::Bin {
                op: *op,
                flags: flags.clone(),
                a: av,
                b: bv,
            })
        }
        Inst::ICmp { pred, a, b } => {
            let av = operand_value(f, a, width, env, consts, rng)?;
            let bv = operand_value(f, b, width, env, consts, rng)?;
            if av.width(f) != bv.width(f) {
                return None;
            }
            Some(MInst::ICmp {
                pred: *pred,
                a: av,
                b: bv,
            })
        }
        Inst::Select {
            cond,
            on_true,
            on_false,
        } => {
            // The select condition is i1.
            let cv = match cond {
                Operand::Reg(name, _) => *env
                    .entry(name.clone())
                    .or_insert_with(|| bool_input(f, rng)),
                Operand::Const(CExpr::Lit(n), _) => MValue::Const(BvVal::new(1, (*n as u128) & 1)),
                Operand::Undef(_) => MValue::Undef(1),
                _ => return None,
            };
            let tv = operand_value(f, on_true, width, env, consts, rng)?;
            let ev = operand_value(f, on_false, width, env, consts, rng)?;
            if tv.width(f) != ev.width(f) {
                return None;
            }
            Some(MInst::Select {
                c: cv,
                t: tv,
                e: ev,
            })
        }
        Inst::Copy { val } => {
            let av = operand_value(f, val, width, env, consts, rng)?;
            Some(MInst::Copy { a: av })
        }
        _ => None,
    }
}

/// A fresh input of the requested width: a parameter (possibly widened or
/// truncated) or an i1 comparison for boolean inputs.
fn fresh_input(f: &mut Function, w: u32, rng: &mut StdRng) -> MValue {
    if w == 1 {
        return bool_input(f, rng);
    }
    let p = rng.gen_range(0..f.params.len());
    let pw = f.params[p];
    if pw == w {
        MValue::Reg(p as u32)
    } else if pw < w {
        let id = f.push(MInst::Conv {
            op: alive_ir::ConvOp::ZExt,
            a: MValue::Reg(p as u32),
            to: w,
        });
        MValue::Reg(id)
    } else {
        let id = f.push(MInst::Conv {
            op: alive_ir::ConvOp::Trunc,
            a: MValue::Reg(p as u32),
            to: w,
        });
        MValue::Reg(id)
    }
}

fn bool_input(f: &mut Function, rng: &mut StdRng) -> MValue {
    let p = rng.gen_range(0..f.params.len());
    let pw = f.params[p];
    let id = f.push(MInst::ICmp {
        pred: ICmpPred::Ne,
        a: MValue::Reg(p as u32),
        b: MValue::Const(BvVal::zero(pw)),
    });
    MValue::Reg(id)
}

/// Picks a constant for `sym`, trying to satisfy obvious preconditions
/// (powers of two, sign bits) so planted patterns actually fire.
fn pick_constant(pre: &Pred, sym: &str, width: u32, rng: &mut StdRng) -> BvVal {
    let wants_pow2 = pred_mentions(pre, sym, "isPowerOf2");
    let wants_signbit = pred_mentions(pre, sym, "isSignBit");
    if wants_signbit {
        return BvVal::int_min(width);
    }
    if wants_pow2 {
        let k = rng.gen_range(0..width.saturating_sub(1).max(1));
        return BvVal::one(width).shl(BvVal::new(width, k as u128));
    }
    // Small constants dominate real code.
    let choices: [i128; 8] = [0, 1, 2, 4, 8, -1, 3, 7];
    let c = choices[rng.gen_range(0..choices.len())];
    BvVal::from_i128(width, c)
}

fn pred_mentions(p: &Pred, sym: &str, fun: &str) -> bool {
    match p {
        Pred::True => false,
        Pred::Not(a) => pred_mentions(a, sym, fun),
        Pred::And(a, b) | Pred::Or(a, b) => {
            pred_mentions(a, sym, fun) || pred_mentions(b, sym, fun)
        }
        Pred::Cmp(..) => false,
        Pred::Fun(name, args) => {
            name == fun
                && args.iter().any(|a| match a {
                    alive_ir::PredArg::Expr(e) => e.symbols().contains(&sym),
                    alive_ir::PredArg::Reg(_) => false,
                })
        }
    }
}

fn push_random_inst(f: &mut Function, width: u32, rng: &mut StdRng) {
    // Pick operands among parameters and earlier same-width results.
    let candidates: Vec<MValue> = (0..(f.params.len() + f.insts.len()) as u32)
        .map(MValue::Reg)
        .filter(|v| v.width(f) == width)
        .collect();
    let pick = |rng: &mut StdRng, c: &[MValue]| -> MValue {
        if c.is_empty() || rng.gen_bool(0.3) {
            MValue::Const(BvVal::from_i128(
                width,
                [0i128, 1, 2, -1, 5, 16][rng.gen_range(0..6usize)],
            ))
        } else {
            c[rng.gen_range(0..c.len())]
        }
    };
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
    ];
    let op = ops[rng.gen_range(0..ops.len())];
    let a = pick(rng, &candidates);
    let mut b = pick(rng, &candidates);
    if op.is_shift() {
        // Keep shifts in range to avoid gratuitous UB in workloads.
        b = MValue::Const(BvVal::new(width, rng.gen_range(0..width) as u128));
    }
    f.push(MInst::Bin {
        op,
        flags: vec![],
        a,
        b,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::parse_transform;

    fn templates() -> Vec<(String, Transform)> {
        vec![
            (
                "add-zero".into(),
                parse_transform("%r = add %x, 0\n=>\n%r = %x").unwrap(),
            ),
            (
                "mul-pow2".into(),
                parse_transform("Pre: isPowerOf2(C)\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)")
                    .unwrap(),
            ),
            (
                "not-not".into(),
                parse_transform("%a = xor %x, -1\n%r = xor %a, -1\n=>\n%r = %x").unwrap(),
            ),
        ]
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig {
            functions: 5,
            ..WorkloadConfig::default()
        };
        let a = generate_workload(&cfg, &templates());
        let b = generate_workload(&cfg, &templates());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg1 = WorkloadConfig {
            functions: 5,
            ..WorkloadConfig::default()
        };
        let cfg2 = WorkloadConfig {
            seed: 999,
            ..cfg1.clone()
        };
        assert_ne!(
            generate_workload(&cfg1, &templates()),
            generate_workload(&cfg2, &templates())
        );
    }

    #[test]
    fn planted_patterns_fire() {
        let cfg = WorkloadConfig {
            functions: 30,
            planted_per_function: 4,
            filler_per_function: 8,
            ..WorkloadConfig::default()
        };
        let ts = templates();
        let mut funcs = generate_workload(&cfg, &ts);
        let pass = crate::pass::Peephole::new(ts);
        let stats = pass.run_module(&mut funcs);
        assert!(
            stats.total_fires() > 20,
            "planted patterns should fire: {:?}",
            stats.fires
        );
        // Zipf skew: the first template fires most.
        let sorted = stats.sorted_counts();
        assert_eq!(sorted.first().map(|x| x.0.as_str()), Some("add-zero"));
    }

    #[test]
    fn workload_functions_are_well_formed() {
        let cfg = WorkloadConfig {
            functions: 10,
            ..WorkloadConfig::default()
        };
        for f in generate_workload(&cfg, &templates()) {
            // Executing must not panic (UB is a legal outcome).
            let args: Vec<BvVal> = f.params.iter().map(|&w| BvVal::new(w, 0x5A5A)).collect();
            let _ = crate::interp::run(&f, &args);
            // Liveness and DCE must be self-consistent.
            let mut g = f.clone();
            g.dce();
            let _ = crate::interp::run(&g, &args);
        }
    }
}
