//! Interpreter for mini-LLVM with LLVM's three kinds of undefined
//! behavior tracked explicitly (paper §2.4).
//!
//! Every value evaluates to a concrete bitvector, *poison*, or the whole
//! execution is *immediate UB* (true undefined behavior, e.g. division by
//! zero). `undef` operands evaluate to an arbitrary-but-fixed value chosen
//! by the caller (zero by default), which is a legal refinement.

use crate::ir::{Function, MInst, MValue, ValueId};
use alive_ir::ast::{BinOp, ConvOp, Flag, ICmpPred};
use alive_smt::BvVal;

/// Result of evaluating one value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Exec {
    /// A concrete value.
    Val(BvVal),
    /// A poison value (deferred UB).
    Poison,
}

/// Result of executing a whole function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Function returned this value.
    Return(Exec),
    /// Execution hit immediate undefined behavior.
    Ub,
}

impl Outcome {
    /// Does `self` (the optimized behavior) refine `source`?
    ///
    /// UB in the source permits anything; poison permits any value or
    /// poison; a concrete source value must be preserved exactly.
    pub fn refines(&self, source: &Outcome) -> bool {
        match source {
            Outcome::Ub => true,
            Outcome::Return(Exec::Poison) => !matches!(self, Outcome::Ub),
            Outcome::Return(Exec::Val(v)) => {
                matches!(self, Outcome::Return(Exec::Val(w)) if w == v)
            }
        }
    }
}

/// Executes `f` on the given parameter values.
///
/// `undef` operands evaluate to zero of their width (any fixed choice is a
/// legal refinement of `undef`).
///
/// # Panics
///
/// Panics if `args` does not match the parameter count/widths.
pub fn run(f: &Function, args: &[BvVal]) -> Outcome {
    assert_eq!(args.len(), f.params.len(), "arity mismatch");
    for (a, w) in args.iter().zip(&f.params) {
        assert_eq!(a.width(), *w, "parameter width mismatch");
    }
    let mut memo: Vec<Option<Exec>> = vec![None; f.params.len() + f.insts.len()];
    for (i, a) in args.iter().enumerate() {
        memo[i] = Some(Exec::Val(*a));
    }
    match eval_value(f, f.ret, &mut memo) {
        Ok(e) => Outcome::Return(e),
        Err(Ub) => Outcome::Ub,
    }
}

struct Ub;

fn eval_value(f: &Function, v: MValue, memo: &mut Vec<Option<Exec>>) -> Result<Exec, Ub> {
    match v {
        MValue::Const(c) => Ok(Exec::Val(c)),
        MValue::Undef(w) => Ok(Exec::Val(BvVal::zero(w))),
        MValue::Reg(id) => eval_reg(f, id, memo),
    }
}

fn eval_reg(f: &Function, id: ValueId, memo: &mut Vec<Option<Exec>>) -> Result<Exec, Ub> {
    if let Some(e) = memo[id as usize] {
        return Ok(e);
    }
    let inst = f
        .inst_of(id)
        .expect("parameters are pre-seeded in the memo")
        .clone();
    let result = eval_inst(f, &inst, memo)?;
    memo[id as usize] = Some(result);
    Ok(result)
}

fn eval_inst(f: &Function, inst: &MInst, memo: &mut Vec<Option<Exec>>) -> Result<Exec, Ub> {
    match inst {
        MInst::Bin { op, flags, a, b } => {
            let av = eval_value(f, *a, memo)?;
            let bv = eval_value(f, *b, memo)?;
            let (Exec::Val(x), Exec::Val(y)) = (av, bv) else {
                // Poison operand: division by poison is UB-equivalent;
                // conservatively fold to poison for side-effect-free ops.
                return Ok(Exec::Poison);
            };
            bin_semantics(*op, flags, x, y)
        }
        MInst::ICmp { pred, a, b } => {
            let av = eval_value(f, *a, memo)?;
            let bv = eval_value(f, *b, memo)?;
            let (Exec::Val(x), Exec::Val(y)) = (av, bv) else {
                return Ok(Exec::Poison);
            };
            let r = match pred {
                ICmpPred::Eq => x == y,
                ICmpPred::Ne => x != y,
                ICmpPred::Ugt => y.ult(x),
                ICmpPred::Uge => y.ule(x),
                ICmpPred::Ult => x.ult(y),
                ICmpPred::Ule => x.ule(y),
                ICmpPred::Sgt => y.slt(x),
                ICmpPred::Sge => y.sle(x),
                ICmpPred::Slt => x.slt(y),
                ICmpPred::Sle => x.sle(y),
            };
            Ok(Exec::Val(BvVal::new(1, r as u128)))
        }
        MInst::Select { c, t, e } => {
            let cv = eval_value(f, *c, memo)?;
            let Exec::Val(cb) = cv else {
                return Ok(Exec::Poison);
            };
            // Both arms are side-effect free; only the chosen arm's poison
            // matters in LLVM's (2015) semantics. We still evaluate only the
            // chosen arm, which is equivalent here.
            if cb.bits() == 1 {
                eval_value(f, *t, memo)
            } else {
                eval_value(f, *e, memo)
            }
        }
        MInst::Conv { op, a, to } => {
            let av = eval_value(f, *a, memo)?;
            let Exec::Val(x) = av else {
                return Ok(Exec::Poison);
            };
            Ok(Exec::Val(match op {
                ConvOp::ZExt => x.zext(*to),
                ConvOp::SExt => x.sext(*to),
                ConvOp::Trunc => x.trunc(*to),
                ConvOp::Bitcast | ConvOp::IntToPtr | ConvOp::PtrToInt => {
                    if *to >= x.width() {
                        x.zext(*to)
                    } else {
                        x.trunc(*to)
                    }
                }
            }))
        }
        MInst::Copy { a } => eval_value(f, *a, memo),
    }
}

/// Table 1 (definedness → UB) and Table 2 (attributes → poison) semantics.
fn bin_semantics(op: BinOp, flags: &[Flag], x: BvVal, y: BvVal) -> Result<Exec, Ub> {
    let w = x.width();
    // Immediate UB per Table 1.
    match op {
        BinOp::UDiv | BinOp::URem if y.is_zero() => {
            return Err(Ub);
        }
        BinOp::SDiv | BinOp::SRem
            if (y.is_zero() || (x == BvVal::int_min(w) && y == BvVal::ones(w))) =>
        {
            return Err(Ub);
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr if y.to_unsigned() >= w as u128 => {
            return Err(Ub);
        }
        _ => {}
    }
    // Poison per Table 2.
    for flag in flags {
        let poisoned = match (op, flag) {
            (BinOp::Add, Flag::Nsw) => x.sext(w + 1).add(y.sext(w + 1)) != x.add(y).sext(w + 1),
            (BinOp::Add, Flag::Nuw) => x.zext(w + 1).add(y.zext(w + 1)) != x.add(y).zext(w + 1),
            (BinOp::Sub, Flag::Nsw) => x.sext(w + 1).sub(y.sext(w + 1)) != x.sub(y).sext(w + 1),
            (BinOp::Sub, Flag::Nuw) => x.zext(w + 1).sub(y.zext(w + 1)) != x.sub(y).zext(w + 1),
            (BinOp::Mul, Flag::Nsw) => x.sext(2 * w).mul(y.sext(2 * w)) != x.mul(y).sext(2 * w),
            (BinOp::Mul, Flag::Nuw) => x.zext(2 * w).mul(y.zext(2 * w)) != x.mul(y).zext(2 * w),
            (BinOp::SDiv, Flag::Exact) => x.sdiv(y).mul(y) != x,
            (BinOp::UDiv, Flag::Exact) => x.udiv(y).mul(y) != x,
            (BinOp::Shl, Flag::Nsw) => x.shl(y).ashr(y) != x,
            (BinOp::Shl, Flag::Nuw) => x.shl(y).lshr(y) != x,
            (BinOp::AShr, Flag::Exact) => x.ashr(y).shl(y) != x,
            (BinOp::LShr, Flag::Exact) => x.lshr(y).shl(y) != x,
            _ => false,
        };
        if poisoned {
            return Ok(Exec::Poison);
        }
    }
    let v = match op {
        BinOp::Add => x.add(y),
        BinOp::Sub => x.sub(y),
        BinOp::Mul => x.mul(y),
        BinOp::UDiv => x.udiv(y),
        BinOp::SDiv => x.sdiv(y),
        BinOp::URem => x.urem(y),
        BinOp::SRem => x.srem(y),
        BinOp::Shl => x.shl(y),
        BinOp::LShr => x.lshr(y),
        BinOp::AShr => x.ashr(y),
        BinOp::And => x.and(y),
        BinOp::Or => x.or(y),
        BinOp::Xor => x.xor(y),
    };
    Ok(Exec::Val(v))
}

/// Total abstract cost of running `f` on `args` (the sum of executed
/// instruction costs; straight-line code executes live instructions once).
pub fn run_cost(f: &Function) -> u64 {
    f.static_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::MValue;

    fn f_binop(op: BinOp, flags: Vec<Flag>, w: u32) -> Function {
        let mut f = Function::new("t", vec![w, w]);
        let r = f.push(MInst::Bin {
            op,
            flags,
            a: MValue::Reg(0),
            b: MValue::Reg(1),
        });
        f.ret = MValue::Reg(r);
        f
    }

    #[test]
    fn simple_arithmetic() {
        let f = f_binop(BinOp::Add, vec![], 8);
        assert_eq!(
            run(&f, &[BvVal::new(8, 200), BvVal::new(8, 100)]),
            Outcome::Return(Exec::Val(BvVal::new(8, 44)))
        );
    }

    #[test]
    fn division_by_zero_is_ub() {
        let f = f_binop(BinOp::UDiv, vec![], 8);
        assert_eq!(run(&f, &[BvVal::new(8, 5), BvVal::zero(8)]), Outcome::Ub);
    }

    #[test]
    fn int_min_over_minus_one_is_ub() {
        let f = f_binop(BinOp::SDiv, vec![], 8);
        assert_eq!(run(&f, &[BvVal::int_min(8), BvVal::ones(8)]), Outcome::Ub);
    }

    #[test]
    fn oversized_shift_is_ub() {
        let f = f_binop(BinOp::Shl, vec![], 8);
        assert_eq!(run(&f, &[BvVal::new(8, 1), BvVal::new(8, 8)]), Outcome::Ub);
    }

    #[test]
    fn nsw_overflow_is_poison() {
        let f = f_binop(BinOp::Add, vec![Flag::Nsw], 8);
        assert_eq!(
            run(&f, &[BvVal::new(8, 100), BvVal::new(8, 100)]),
            Outcome::Return(Exec::Poison)
        );
        assert_eq!(
            run(&f, &[BvVal::new(8, 100), BvVal::new(8, 27)]),
            Outcome::Return(Exec::Val(BvVal::new(8, 127)))
        );
    }

    #[test]
    fn poison_propagates() {
        let mut f = Function::new("t", vec![8, 8]);
        let p = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![Flag::Nsw],
            a: MValue::Reg(0),
            b: MValue::Reg(1),
        });
        let r = f.push(MInst::Bin {
            op: BinOp::Xor,
            flags: vec![],
            a: MValue::Reg(p),
            b: MValue::Const(BvVal::new(8, 1)),
        });
        f.ret = MValue::Reg(r);
        assert_eq!(
            run(&f, &[BvVal::new(8, 100), BvVal::new(8, 100)]),
            Outcome::Return(Exec::Poison)
        );
    }

    #[test]
    fn select_takes_chosen_arm() {
        let mut f = Function::new("t", vec![1, 8, 8]);
        let r = f.push(MInst::Select {
            c: MValue::Reg(0),
            t: MValue::Reg(1),
            e: MValue::Reg(2),
        });
        f.ret = MValue::Reg(r);
        assert_eq!(
            run(&f, &[BvVal::new(1, 1), BvVal::new(8, 7), BvVal::new(8, 9)]),
            Outcome::Return(Exec::Val(BvVal::new(8, 7)))
        );
        assert_eq!(
            run(&f, &[BvVal::new(1, 0), BvVal::new(8, 7), BvVal::new(8, 9)]),
            Outcome::Return(Exec::Val(BvVal::new(8, 9)))
        );
    }

    #[test]
    fn refinement_rules() {
        let v = Outcome::Return(Exec::Val(BvVal::new(8, 5)));
        let w = Outcome::Return(Exec::Val(BvVal::new(8, 6)));
        let p = Outcome::Return(Exec::Poison);
        assert!(v.refines(&v));
        assert!(!w.refines(&v));
        assert!(v.refines(&p));
        assert!(p.refines(&p));
        assert!(!Outcome::Ub.refines(&p));
        assert!(Outcome::Ub.refines(&Outcome::Ub));
        assert!(v.refines(&Outcome::Ub));
        assert!(!p.refines(&v));
    }
}
