//! The mini-LLVM substrate: an SSA IR, a peephole pass that applies
//! verified Alive transformations, an interpreter with UB/poison tracking,
//! a known-bits analysis for precondition evaluation, and a deterministic
//! workload generator.
//!
//! The paper's evaluation (§6.4, Fig. 9) links Alive-generated C++ into
//! LLVM and compiles the LLVM nightly suite plus SPEC. LLVM itself is not
//! available here, so this crate is the substitute substrate: the pass
//! *interprets* verified Alive templates over a miniature LLVM-like IR —
//! exercising the same match/precondition/rewrite logic the generated C++
//! would — and the workload generator stands in for the compiled
//! benchmarks.
//!
//! # Examples
//!
//! ```
//! use alive_ir::parse_transform;
//! use alive_opt::{Function, MInst, MValue, Peephole};
//! use alive_opt::interp::{run, Exec, Outcome};
//! use alive_smt::BvVal;
//! use alive_ir::BinOp;
//!
//! // Build  f(x) = x * 8  and optimize it with mul->shl.
//! let mut f = Function::new("f", vec![8]);
//! let r = f.push(MInst::Bin {
//!     op: BinOp::Mul,
//!     flags: vec![],
//!     a: MValue::Reg(0),
//!     b: MValue::Const(BvVal::new(8, 8)),
//! });
//! f.ret = MValue::Reg(r);
//!
//! let pass = Peephole::new([(
//!     "mul-pow2".to_string(),
//!     parse_transform("Pre: isPowerOf2(C)\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)").unwrap(),
//! )]);
//! let stats = pass.run(&mut f);
//! assert_eq!(stats.total_fires(), 1);
//! assert_eq!(
//!     run(&f, &[BvVal::new(8, 5)]),
//!     Outcome::Return(Exec::Val(BvVal::new(8, 40)))
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod interp;
pub mod ir;
pub mod matcher;
pub mod pass;
pub mod workload;

pub use analysis::{known_bits, KnownBits};
pub use interp::{run, Exec, Outcome};
pub use ir::{Function, MInst, MValue, ValueId};
pub use matcher::{apply_at, match_at, Binding};
pub use pass::{PassStats, Peephole};
pub use workload::{generate_workload, WorkloadConfig};
