//! Matching Alive source templates against mini-LLVM DAGs and applying the
//! rewrite — the interpreted equivalent of the C++ that `alive-codegen`
//! emits (paper §4): first a pattern match binds template registers and
//! abstract constants, then the precondition is evaluated against
//! dataflow-analysis facts, then the target template is materialized.

use crate::analysis::KnownBits;
use crate::ir::{Function, MInst, MValue};
use alive_ir::ast::{
    CBinop, CExpr, CExprArg, CUnop, Inst, Operand, Pred, PredArg, PredCmpOp, Stmt, Type,
};
use alive_ir::Transform;
use alive_smt::BvVal;
use std::collections::HashMap;

/// Bindings of template names to IR entities.
#[derive(Clone, Debug, Default)]
pub struct Binding {
    /// Template register -> IR value.
    pub regs: HashMap<String, MValue>,
    /// Abstract constant -> concrete value.
    pub consts: HashMap<String, BvVal>,
}

/// Attempts to match the source template of `t` rooted at instruction
/// index `root_idx`, including the precondition.
pub fn match_at(f: &Function, root_idx: usize, t: &Transform, kb: &[KnownBits]) -> Option<Binding> {
    let mut src_def: HashMap<&str, &Stmt> = HashMap::new();
    for s in &t.source {
        if let Some(n) = &s.name {
            src_def.insert(n, s);
        }
    }
    let root_stmt = src_def.get(t.root())?;
    // Memory templates are not applied by the interpreted pass (mirroring
    // the C++ generator's restriction).
    if t.source
        .iter()
        .chain(&t.target)
        .any(|s| s.inst.is_memory_op() || matches!(s.inst, Inst::Unreachable))
    {
        return None;
    }

    let mut binding = Binding::default();
    let mut deferred: Vec<(CExpr, BvVal)> = Vec::new();
    let root_inst = f.inst_of(f.id_of_inst(root_idx))?;
    if !match_inst(
        f,
        &root_stmt.inst,
        root_inst,
        &src_def,
        &mut binding,
        &mut deferred,
    ) {
        return None;
    }
    // Deferred constant-expression operand checks.
    for (e, actual) in &deferred {
        match eval_cexpr(e, actual.width(), &binding, f) {
            Some(v) if v == *actual => {}
            _ => return None,
        }
    }
    // Precondition.
    if !eval_pred(&t.pre, &binding, f, kb) {
        return None;
    }
    Some(binding)
}

fn match_value(
    f: &Function,
    templ: &Operand,
    actual: MValue,
    src_def: &HashMap<&str, &Stmt>,
    binding: &mut Binding,
    deferred: &mut Vec<(CExpr, BvVal)>,
) -> bool {
    // Explicit type annotations constrain the width.
    if let Some(Type::Int(w)) = templ.type_annotation() {
        if actual.width(f) != *w {
            return false;
        }
    }
    match templ {
        Operand::Reg(name, _) => {
            if let Some(&prev) = binding.regs.get(name) {
                return prev == actual;
            }
            if let Some(stmt) = src_def.get(name.as_str()) {
                // Must be an instruction result matching the defining stmt.
                let MValue::Reg(id) = actual else {
                    return false;
                };
                let Some(inst) = f.inst_of(id) else {
                    return false;
                };
                binding.regs.insert(name.clone(), actual);
                if !match_inst(f, &stmt.inst, inst, src_def, binding, deferred) {
                    return false;
                }
                true
            } else {
                binding.regs.insert(name.clone(), actual);
                true
            }
        }
        Operand::Const(CExpr::Sym(s), _) => {
            let MValue::Const(v) = actual else {
                return false;
            };
            if let Some(&prev) = binding.consts.get(s) {
                return prev == v;
            }
            binding.consts.insert(s.clone(), v);
            true
        }
        Operand::Const(CExpr::Lit(n), _) => {
            let MValue::Const(v) = actual else {
                return false;
            };
            v == BvVal::from_i128(v.width(), *n)
        }
        Operand::Const(e, _) => {
            let MValue::Const(v) = actual else {
                return false;
            };
            deferred.push((e.clone(), v));
            true
        }
        Operand::Undef(_) => matches!(actual, MValue::Undef(_)),
    }
}

fn match_inst(
    f: &Function,
    templ: &Inst,
    actual: &MInst,
    src_def: &HashMap<&str, &Stmt>,
    binding: &mut Binding,
    deferred: &mut Vec<(CExpr, BvVal)>,
) -> bool {
    match (templ, actual) {
        (
            Inst::BinOp { op, flags, a, b },
            MInst::Bin {
                op: aop,
                flags: aflags,
                a: aa,
                b: ab,
            },
        ) => {
            op == aop
                && flags.iter().all(|fl| aflags.contains(fl))
                && match_value(f, a, *aa, src_def, binding, deferred)
                && match_value(f, b, *ab, src_def, binding, deferred)
        }
        (
            Inst::ICmp { pred, a, b },
            MInst::ICmp {
                pred: apred,
                a: aa,
                b: ab,
            },
        ) => {
            pred == apred
                && match_value(f, a, *aa, src_def, binding, deferred)
                && match_value(f, b, *ab, src_def, binding, deferred)
        }
        (
            Inst::Select {
                cond,
                on_true,
                on_false,
            },
            MInst::Select { c, t, e },
        ) => {
            match_value(f, cond, *c, src_def, binding, deferred)
                && match_value(f, on_true, *t, src_def, binding, deferred)
                && match_value(f, on_false, *e, src_def, binding, deferred)
        }
        (
            Inst::Conv { op, arg, to },
            MInst::Conv {
                op: aop,
                a,
                to: ato,
            },
        ) => {
            if op != aop {
                return false;
            }
            if let Some(Type::Int(w)) = to {
                if ato != w {
                    return false;
                }
            }
            match_value(f, arg, *a, src_def, binding, deferred)
        }
        (Inst::Copy { val }, _) => {
            // A bare copy template matches any instruction producing the
            // operand — only meaningful for literal roots, so reject.
            let _ = val;
            false
        }
        _ => false,
    }
}

/// Concretely evaluates a constant expression under a binding.
pub fn eval_cexpr(e: &CExpr, width: u32, binding: &Binding, f: &Function) -> Option<BvVal> {
    Some(match e {
        CExpr::Lit(n) => BvVal::from_i128(width, *n),
        CExpr::Sym(s) => {
            let v = *binding.consts.get(s)?;
            if v.width() != width {
                return None;
            }
            v
        }
        CExpr::Unop(CUnop::Neg, a) => eval_cexpr(a, width, binding, f)?.neg(),
        CExpr::Unop(CUnop::Not, a) => eval_cexpr(a, width, binding, f)?.not(),
        CExpr::Binop(op, a, b) => {
            let x = eval_cexpr(a, width, binding, f)?;
            let y = eval_cexpr(b, width, binding, f)?;
            match op {
                CBinop::Add => x.add(y),
                CBinop::Sub => x.sub(y),
                CBinop::Mul => x.mul(y),
                CBinop::SDiv => x.sdiv(y),
                CBinop::UDiv => x.udiv(y),
                CBinop::SRem => x.srem(y),
                CBinop::URem => x.urem(y),
                CBinop::Shl => x.shl(y),
                CBinop::LShr => x.lshr(y),
                CBinop::AShr => x.ashr(y),
                CBinop::And => x.and(y),
                CBinop::Or => x.or(y),
                CBinop::Xor => x.xor(y),
            }
        }
        CExpr::Fun(name, args) => match name.as_str() {
            "log2" => eval_fun_arg(args, 0, width, binding, f)?.log2(),
            "abs" => eval_fun_arg(args, 0, width, binding, f)?.abs(),
            "umax" => {
                let a = eval_fun_arg(args, 0, width, binding, f)?;
                let b = eval_fun_arg(args, 1, width, binding, f)?;
                if a.ult(b) {
                    b
                } else {
                    a
                }
            }
            "umin" => {
                let a = eval_fun_arg(args, 0, width, binding, f)?;
                let b = eval_fun_arg(args, 1, width, binding, f)?;
                if a.ult(b) {
                    a
                } else {
                    b
                }
            }
            "smax" | "max" => {
                let a = eval_fun_arg(args, 0, width, binding, f)?;
                let b = eval_fun_arg(args, 1, width, binding, f)?;
                if a.slt(b) {
                    b
                } else {
                    a
                }
            }
            "smin" | "min" => {
                let a = eval_fun_arg(args, 0, width, binding, f)?;
                let b = eval_fun_arg(args, 1, width, binding, f)?;
                if a.slt(b) {
                    a
                } else {
                    b
                }
            }
            "width" => match args.first()? {
                CExprArg::Reg(r) => {
                    let v = binding.regs.get(r)?;
                    BvVal::new(width, v.width(f) as u128)
                }
                CExprArg::Expr(_) => return None,
            },
            "cttz" => eval_fun_arg(args, 0, width, binding, f)?.cttz(),
            "ctlz" => eval_fun_arg(args, 0, width, binding, f)?.ctlz(),
            _ => return None,
        },
    })
}

fn eval_fun_arg(
    args: &[CExprArg],
    i: usize,
    width: u32,
    binding: &Binding,
    f: &Function,
) -> Option<BvVal> {
    match args.get(i)? {
        CExprArg::Expr(e) => eval_cexpr(e, width, binding, f),
        CExprArg::Reg(_) => None,
    }
}

/// Width at which a precondition expression should be evaluated: the width
/// of any symbol or register it mentions.
fn pred_width(e: &CExpr, binding: &Binding) -> Option<u32> {
    for s in e.symbols() {
        if let Some(v) = binding.consts.get(s) {
            return Some(v.width());
        }
    }
    None
}

/// Concretely evaluates a precondition against the binding and the
/// known-bits analysis (must-analyses return `false` when unprovable).
pub fn eval_pred(p: &Pred, binding: &Binding, f: &Function, kb: &[KnownBits]) -> bool {
    match p {
        Pred::True => true,
        Pred::Not(a) => !eval_pred(a, binding, f, kb),
        Pred::And(a, b) => eval_pred(a, binding, f, kb) && eval_pred(b, binding, f, kb),
        Pred::Or(a, b) => eval_pred(a, binding, f, kb) || eval_pred(b, binding, f, kb),
        Pred::Cmp(op, a, b) => {
            let Some(w) = pred_width(a, binding).or_else(|| pred_width(b, binding)) else {
                return false;
            };
            let (Some(x), Some(y)) = (eval_cexpr(a, w, binding, f), eval_cexpr(b, w, binding, f))
            else {
                return false;
            };
            match op {
                PredCmpOp::Eq => x == y,
                PredCmpOp::Ne => x != y,
                PredCmpOp::Slt => x.slt(y),
                PredCmpOp::Sle => x.sle(y),
                PredCmpOp::Sgt => y.slt(x),
                PredCmpOp::Sge => y.sle(x),
                PredCmpOp::Ult => x.ult(y),
                PredCmpOp::Ule => x.ule(y),
                PredCmpOp::Ugt => y.ult(x),
                PredCmpOp::Uge => y.ule(x),
            }
        }
        Pred::Fun(name, args) => eval_pred_fun(name, args, binding, f, kb),
    }
}

fn arg_known_bits(
    arg: &PredArg,
    binding: &Binding,
    f: &Function,
    kb: &[KnownBits],
) -> Option<KnownBits> {
    match arg {
        PredArg::Reg(r) => match binding.regs.get(r)? {
            MValue::Reg(id) => kb.get(*id as usize).copied(),
            MValue::Const(v) => Some(KnownBits::constant(*v)),
            MValue::Undef(w) => Some(KnownBits::unknown(*w)),
        },
        PredArg::Expr(e) => {
            let w = pred_width(e, binding)?;
            eval_cexpr(e, w, binding, f).map(KnownBits::constant)
        }
    }
}

fn eval_pred_fun(
    name: &str,
    args: &[PredArg],
    binding: &Binding,
    f: &Function,
    kb: &[KnownBits],
) -> bool {
    match name {
        "isPowerOf2" => {
            arg_known_bits(&args[0], binding, f, kb).is_some_and(|k| k.is_power_of_two())
        }
        "isPowerOf2OrZero" => arg_known_bits(&args[0], binding, f, kb)
            .and_then(|k| k.is_constant())
            .is_some_and(|v| v.is_zero() || v.is_power_of_two()),
        "isSignBit" => arg_known_bits(&args[0], binding, f, kb)
            .and_then(|k| k.is_constant())
            .is_some_and(|v| v == BvVal::int_min(v.width())),
        "isShiftedMask" => arg_known_bits(&args[0], binding, f, kb)
            .and_then(|k| k.is_constant())
            .is_some_and(|v| {
                if v.is_zero() {
                    return false;
                }
                let filled = v.or(v.sub(BvVal::one(v.width())));
                filled.add(BvVal::one(v.width())).and(filled).is_zero()
            }),
        "MaskedValueIsZero" => {
            let (Some(kv), Some(km)) = (
                arg_known_bits(&args[0], binding, f, kb),
                arg_known_bits(&args[1], binding, f, kb),
            ) else {
                return false;
            };
            let Some(mask) = km.is_constant() else {
                return false;
            };
            kv.masked_value_is_zero(mask)
        }
        "isKnownNonZero" | "CannotBeZero" => {
            arg_known_bits(&args[0], binding, f, kb).is_some_and(|k| k.is_non_zero())
        }
        "isNonNegative" => {
            arg_known_bits(&args[0], binding, f, kb).is_some_and(|k| k.is_non_negative())
        }
        "hasOneUse" => match args.first() {
            Some(PredArg::Reg(r)) => match binding.regs.get(r) {
                Some(MValue::Reg(id)) => f.use_count(*id) == 1,
                _ => false,
            },
            _ => false,
        },
        "WillNotOverflowSignedAdd"
        | "WillNotOverflowUnsignedAdd"
        | "WillNotOverflowSignedSub"
        | "WillNotOverflowUnsignedSub"
        | "WillNotOverflowSignedMul"
        | "WillNotOverflowUnsignedMul" => {
            let (Some(ka), Some(kb2)) = (
                arg_known_bits(&args[0], binding, f, kb),
                arg_known_bits(&args[1], binding, f, kb),
            ) else {
                return false;
            };
            let (Some(x), Some(y)) = (ka.is_constant(), kb2.is_constant()) else {
                return false;
            };
            let w = x.width();
            match name {
                "WillNotOverflowSignedAdd" => {
                    x.sext(w + 1).add(y.sext(w + 1)) == x.add(y).sext(w + 1)
                }
                "WillNotOverflowUnsignedAdd" => {
                    x.zext(w + 1).add(y.zext(w + 1)) == x.add(y).zext(w + 1)
                }
                "WillNotOverflowSignedSub" => {
                    x.sext(w + 1).sub(y.sext(w + 1)) == x.sub(y).sext(w + 1)
                }
                "WillNotOverflowUnsignedSub" => {
                    x.zext(w + 1).sub(y.zext(w + 1)) == x.sub(y).zext(w + 1)
                }
                "WillNotOverflowSignedMul" => {
                    x.sext(2 * w).mul(y.sext(2 * w)) == x.mul(y).sext(2 * w)
                }
                "WillNotOverflowUnsignedMul" => {
                    x.zext(2 * w).mul(y.zext(2 * w)) == x.mul(y).zext(2 * w)
                }
                _ => unreachable!(),
            }
        }
        _ => false,
    }
}

/// Applies the target template at a matched site. Returns `false` (leaving
/// `f` untouched) when the target cannot be materialized.
pub fn apply_at(f: &mut Function, root_idx: usize, t: &Transform, binding: &Binding) -> bool {
    match stage_rewrite(f, root_idx, t, binding) {
        Some(staged) => {
            for (slot, inst) in staged {
                match slot {
                    Some(idx) => f.insts[idx] = inst,
                    None => {
                        f.insts.push(inst);
                    }
                }
            }
            true
        }
        None => false,
    }
}

/// Plans the rewrite without mutating `f`; `None` means inapplicable.
fn stage_rewrite(
    f: &Function,
    root_idx: usize,
    t: &Transform,
    binding: &Binding,
) -> Option<Vec<(Option<usize>, MInst)>> {
    let root_name = t.root();
    // A non-final target statement must not read the (old) root value.
    for s in &t.target[..t.target.len().saturating_sub(1)] {
        if s.inst.used_regs().contains(&root_name) {
            return None;
        }
    }
    let root_width = f.insts[root_idx].result_width(f);

    let mut new_names: HashMap<String, MValue> = HashMap::new();
    let mut staged: Vec<(Option<usize>, MInst)> = Vec::new(); // (overwrite slot, inst)
                                                              // Widths of values defined by staged instructions (they are not in `f`
                                                              // yet, or they replace a slot whose old width may differ).
    let mut pending: HashMap<u32, u32> = HashMap::new();

    let w_of = |v: MValue, pending: &HashMap<u32, u32>, f: &Function| -> u32 {
        match v {
            MValue::Reg(id) => pending.get(&id).copied().unwrap_or_else(|| f.width_of(id)),
            MValue::Const(c) => c.width(),
            MValue::Undef(w) => w,
        }
    };

    let resolve = |op: &Operand,
                   width_hint: Option<u32>,
                   new_names: &HashMap<String, MValue>,
                   f: &Function|
     -> Option<MValue> {
        match op {
            Operand::Reg(name, _) => new_names
                .get(name)
                .copied()
                .or_else(|| binding.regs.get(name).copied()),
            Operand::Const(e, ann) => {
                let w = match ann {
                    Some(Type::Int(w)) => *w,
                    _ => width_hint?,
                };
                eval_cexpr(e, w, binding, f).map(MValue::Const)
            }
            Operand::Undef(ann) => {
                let w = match ann {
                    Some(Type::Int(w)) => *w,
                    _ => width_hint?,
                };
                Some(MValue::Undef(w))
            }
        }
    };

    let mut appended = 0usize;
    for (i, s) in t.target.iter().enumerate() {
        let name = s.name.as_deref().expect("non-memory target stmt defines");
        let is_root = i + 1 == t.target.len();
        // Width hints: the width of any operand resolvable without a hint,
        // else the root/overwritten width.
        let overwrite_width = binding
            .regs
            .get(name)
            .map(|v| w_of(*v, &pending, f))
            .or(if is_root { Some(root_width) } else { None });

        let (inst, result_width) = match &s.inst {
            Inst::BinOp { op, flags, a, b } => {
                let hint = resolve(a, None, &new_names, f)
                    .or_else(|| resolve(b, None, &new_names, f))
                    .map(|v| w_of(v, &pending, f))
                    .or(overwrite_width);
                let av = resolve(a, hint, &new_names, f)?;
                let bv = resolve(b, hint, &new_names, f)?;
                let w = w_of(av, &pending, f);
                if w != w_of(bv, &pending, f) {
                    return None;
                }
                (
                    MInst::Bin {
                        op: *op,
                        flags: flags.clone(),
                        a: av,
                        b: bv,
                    },
                    w,
                )
            }
            Inst::ICmp { pred, a, b } => {
                let hint = resolve(a, None, &new_names, f)
                    .or_else(|| resolve(b, None, &new_names, f))
                    .map(|v| w_of(v, &pending, f));
                let av = resolve(a, hint, &new_names, f)?;
                let bv = resolve(b, hint, &new_names, f)?;
                if w_of(av, &pending, f) != w_of(bv, &pending, f) {
                    return None;
                }
                (
                    MInst::ICmp {
                        pred: *pred,
                        a: av,
                        b: bv,
                    },
                    1,
                )
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => {
                let cv = resolve(cond, Some(1), &new_names, f)?;
                let hint = resolve(on_true, None, &new_names, f)
                    .or_else(|| resolve(on_false, None, &new_names, f))
                    .map(|v| w_of(v, &pending, f))
                    .or(overwrite_width);
                let tv = resolve(on_true, hint, &new_names, f)?;
                let ev = resolve(on_false, hint, &new_names, f)?;
                let w = w_of(tv, &pending, f);
                if w != w_of(ev, &pending, f) || w_of(cv, &pending, f) != 1 {
                    return None;
                }
                (
                    MInst::Select {
                        c: cv,
                        t: tv,
                        e: ev,
                    },
                    w,
                )
            }
            Inst::Conv { op, arg, to } => {
                let av = resolve(arg, None, &new_names, f)?;
                let to_w = match to {
                    Some(Type::Int(w)) => *w,
                    _ => overwrite_width?,
                };
                let from_w = w_of(av, &pending, f);
                let ok = match op {
                    alive_ir::ConvOp::ZExt | alive_ir::ConvOp::SExt => from_w < to_w,
                    alive_ir::ConvOp::Trunc => from_w > to_w,
                    _ => true,
                };
                if !ok {
                    return None;
                }
                (
                    MInst::Conv {
                        op: *op,
                        a: av,
                        to: to_w,
                    },
                    to_w,
                )
            }
            Inst::Copy { val } => {
                let av = resolve(val, overwrite_width, &new_names, f)?;
                let w = w_of(av, &pending, f);
                (MInst::Copy { a: av }, w)
            }
            _ => return None,
        };

        // Where does this instruction live?
        let slot = if is_root {
            Some(root_idx)
        } else if let Some(MValue::Reg(id)) = binding.regs.get(name) {
            // Overwrites a matched source instruction.
            f.inst_index(*id)
        } else {
            None
        };
        let value_id = match slot {
            Some(idx) => f.id_of_inst(idx),
            None => {
                // Will be appended; the id is known in advance.
                let id = f.id_of_inst(f.insts.len() + appended);
                appended += 1;
                id
            }
        };
        pending.insert(value_id, result_width);
        staged.push((slot, inst));
        new_names.insert(name.to_string(), MValue::Reg(value_id));
    }
    Some(staged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::known_bits;
    use crate::interp::{run, Exec, Outcome};
    use alive_ir::ast::BinOp;
    use alive_ir::parse_transform;

    /// x ^ -1 then + C  ==>  (C-1) - x (the intro example).
    fn intro() -> Transform {
        parse_transform("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x").unwrap()
    }

    fn build_intro_fn() -> (Function, usize) {
        let mut f = Function::new("t", vec![8]);
        let x = f.param(0);
        let a = f.push(MInst::Bin {
            op: BinOp::Xor,
            flags: vec![],
            a: MValue::Reg(x),
            b: MValue::Const(BvVal::ones(8)),
        });
        let r = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![],
            a: MValue::Reg(a),
            b: MValue::Const(BvVal::new(8, 100)),
        });
        f.ret = MValue::Reg(r);
        let root_idx = f.inst_index(r).unwrap();
        (f, root_idx)
    }

    #[test]
    fn matches_and_applies_intro_example() {
        let t = intro();
        let (mut f, root_idx) = build_intro_fn();
        let kb = known_bits(&f);
        let b = match_at(&f, root_idx, &t, &kb).expect("should match");
        assert_eq!(b.consts["C"], BvVal::new(8, 100));
        assert!(apply_at(&mut f, root_idx, &t, &b));
        // Behavior preserved on a sample of inputs.
        for x in [0u128, 1, 5, 100, 200, 255] {
            let out = run(&f, &[BvVal::new(8, x)]);
            let expect = BvVal::new(8, x).not().add(BvVal::new(8, 100));
            assert_eq!(out, Outcome::Return(Exec::Val(expect)), "x={x}");
        }
        // The rewritten root is a sub.
        assert!(matches!(
            f.insts[root_idx],
            MInst::Bin { op: BinOp::Sub, .. }
        ));
    }

    #[test]
    fn no_match_when_shape_differs() {
        let t = intro();
        let mut f = Function::new("t", vec![8]);
        let r = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::new(8, 100)),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(match_at(&f, 0, &t, &kb).is_none());
    }

    #[test]
    fn precondition_gates_match() {
        // mul nsw x, C => shl with isPowerOf2(C): only fires for powers of 2.
        let t = parse_transform("Pre: isPowerOf2(C)\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)")
            .unwrap();
        for (c, expect) in [(8u128, true), (12, false), (0, false)] {
            let mut f = Function::new("t", vec![8]);
            let r = f.push(MInst::Bin {
                op: BinOp::Mul,
                flags: vec![],
                a: MValue::Reg(0),
                b: MValue::Const(BvVal::new(8, c)),
            });
            f.ret = MValue::Reg(r);
            let kb = known_bits(&f);
            assert_eq!(match_at(&f, 0, &t, &kb).is_some(), expect, "C={c}");
        }
    }

    #[test]
    fn flags_must_be_present_to_match() {
        let t = parse_transform("%r = add nsw %x, %y\n=>\n%r = add %x, %y").unwrap();
        let mut f = Function::new("t", vec![8, 8]);
        let r = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Reg(1),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(match_at(&f, 0, &t, &kb).is_none(), "no nsw on instruction");
    }

    #[test]
    fn repeated_register_requires_same_value() {
        let t = parse_transform("%r = udiv %x, %x\n=>\n%r = 1").unwrap();
        let mut f = Function::new("t", vec![8, 8]);
        let r1 = f.push(MInst::Bin {
            op: BinOp::UDiv,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Reg(0),
        });
        let r2 = f.push(MInst::Bin {
            op: BinOp::UDiv,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Reg(1),
        });
        f.ret = MValue::Reg(r2);
        let kb = known_bits(&f);
        assert!(match_at(&f, f.inst_index(r1).unwrap(), &t, &kb).is_some());
        assert!(match_at(&f, f.inst_index(r2).unwrap(), &t, &kb).is_none());
    }

    #[test]
    fn masked_value_is_zero_uses_analysis() {
        // Pre: MaskedValueIsZero(%x, ~C) ; and %x, C => %x
        let t =
            parse_transform("Pre: MaskedValueIsZero(%x, ~C)\n%r = and %x, C\n=>\n%r = %x").unwrap();
        // %x = urem param, 8 -> top 5 bits zero; and with 0x07 is identity.
        let mut f = Function::new("t", vec![8]);
        let x = f.push(MInst::Bin {
            op: BinOp::URem,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::new(8, 8)),
        });
        let r = f.push(MInst::Bin {
            op: BinOp::And,
            flags: vec![],
            a: MValue::Reg(x),
            b: MValue::Const(BvVal::new(8, 0x07)),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        let idx = f.inst_index(r).unwrap();
        let b = match_at(&f, idx, &t, &kb).expect("provable by known bits");
        assert!(apply_at(&mut f, idx, &t, &b));
        assert!(matches!(f.insts[idx], MInst::Copy { .. }));
    }

    #[test]
    fn has_one_use_counts_uses() {
        let t = parse_transform(
            "Pre: hasOneUse(%a)\n%a = xor %x, -1\n%r = add %a, 1\n=>\n%r = sub 0, %x",
        )
        .unwrap();
        let mut f = Function::new("t", vec![8]);
        let a = f.push(MInst::Bin {
            op: BinOp::Xor,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::ones(8)),
        });
        let r = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![],
            a: MValue::Reg(a),
            b: MValue::Const(BvVal::new(8, 1)),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(match_at(&f, 1, &t, &kb).is_some());
        // Add a second use of %a: precondition now fails.
        let extra = f.push(MInst::Bin {
            op: BinOp::And,
            flags: vec![],
            a: MValue::Reg(a),
            b: MValue::Reg(a),
        });
        let _ = extra;
        let kb = known_bits(&f);
        assert!(match_at(&f, 1, &t, &kb).is_none());
    }
}
