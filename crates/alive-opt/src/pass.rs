//! The peephole pass driver: applies a set of (verified) Alive
//! transformations to mini-LLVM functions until fixpoint, counting which
//! optimization fired how often — the data behind the paper's Fig. 9.

use crate::analysis::known_bits;
use crate::ir::Function;
use crate::matcher::{apply_at, match_at};
use alive_ir::Transform;
use std::collections::HashMap;

/// A compiled peephole optimizer holding an ordered list of rewrites.
#[derive(Debug, Default)]
pub struct Peephole {
    opts: Vec<(String, Transform)>,
    /// Bound on fixpoint sweeps per function.
    pub max_sweeps: usize,
}

/// Statistics from running the pass.
#[derive(Clone, Debug, Default)]
pub struct PassStats {
    /// Per-optimization invocation counts.
    pub fires: HashMap<String, u64>,
    /// Number of sweeps executed.
    pub sweeps: u64,
    /// Number of instructions visited.
    pub visited: u64,
}

impl PassStats {
    /// Total number of rewrites applied.
    pub fn total_fires(&self) -> u64 {
        self.fires.values().sum()
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &PassStats) {
        for (k, v) in &other.fires {
            *self.fires.entry(k.clone()).or_default() += v;
        }
        self.sweeps += other.sweeps;
        self.visited += other.visited;
    }

    /// Invocation counts sorted descending (the Fig. 9 series).
    pub fn sorted_counts(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.fires.iter().map(|(k, c)| (k.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl Peephole {
    /// Builds an optimizer from named transformations.
    ///
    /// The caller is responsible for only supplying *verified*
    /// transformations; `alive::verified_peephole` does this end to end.
    pub fn new(opts: impl IntoIterator<Item = (String, Transform)>) -> Peephole {
        Peephole {
            opts: opts.into_iter().collect(),
            max_sweeps: 8,
        }
    }

    /// Number of optimizations installed.
    pub fn len(&self) -> usize {
        self.opts.len()
    }

    /// `true` if no optimizations are installed.
    pub fn is_empty(&self) -> bool {
        self.opts.is_empty()
    }

    /// Optimization names, in priority order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.opts.iter().map(|(n, _)| n.as_str())
    }

    /// Runs the pass on one function until fixpoint (bounded), then DCE.
    pub fn run(&self, f: &mut Function) -> PassStats {
        let mut stats = PassStats::default();
        for _ in 0..self.max_sweeps {
            stats.sweeps += 1;
            let mut changed = false;
            let mut kb = known_bits(f);
            let mut idx = 0;
            while idx < f.insts.len() {
                stats.visited += 1;
                for (name, t) in &self.opts {
                    if let Some(binding) = match_at(f, idx, t, &kb) {
                        if apply_at(f, idx, t, &binding) {
                            *stats.fires.entry(name.clone()).or_default() += 1;
                            changed = true;
                            // Rewrites may append instructions and change
                            // value facts; recompute the analysis.
                            kb = known_bits(f);
                            break;
                        }
                    }
                }
                idx += 1;
            }
            if !changed {
                break;
            }
        }
        f.dce();
        stats
    }

    /// Runs the pass over a whole module, merging statistics.
    pub fn run_module(&self, funcs: &mut [Function]) -> PassStats {
        let mut stats = PassStats::default();
        for f in funcs {
            stats.merge(&self.run(f));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, Outcome};
    use crate::ir::{MInst, MValue};
    use alive_ir::ast::BinOp;
    use alive_ir::parse_transform;
    use alive_smt::BvVal;

    fn simple_opts() -> Peephole {
        Peephole::new([
            (
                "add-zero".to_string(),
                parse_transform("%r = add %x, 0\n=>\n%r = %x").unwrap(),
            ),
            (
                "mul-pow2".to_string(),
                parse_transform("Pre: isPowerOf2(C)\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)")
                    .unwrap(),
            ),
            (
                "not-plus-one".to_string(),
                parse_transform("%a = xor %x, -1\n%r = add %a, 1\n=>\n%r = sub 0, %x").unwrap(),
            ),
        ])
    }

    fn chain_fn() -> Function {
        // r = ((x * 8) + 0) ; then ~r + 1
        let mut f = Function::new("t", vec![8]);
        let m = f.push(MInst::Bin {
            op: BinOp::Mul,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::new(8, 8)),
        });
        let az = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![],
            a: MValue::Reg(m),
            b: MValue::Const(BvVal::zero(8)),
        });
        let n = f.push(MInst::Bin {
            op: BinOp::Xor,
            flags: vec![],
            a: MValue::Reg(az),
            b: MValue::Const(BvVal::ones(8)),
        });
        let r = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![],
            a: MValue::Reg(n),
            b: MValue::Const(BvVal::new(8, 1)),
        });
        f.ret = MValue::Reg(r);
        f
    }

    #[test]
    fn pass_reaches_fixpoint_and_preserves_semantics() {
        let pass = simple_opts();
        let mut f = chain_fn();
        let original = f.clone();
        let stats = pass.run(&mut f);
        assert!(stats.total_fires() >= 3, "fires: {:?}", stats.fires);
        assert!(stats.fires.contains_key("add-zero"));
        assert!(stats.fires.contains_key("mul-pow2"));
        assert!(stats.fires.contains_key("not-plus-one"));
        // Differential check across all inputs.
        for x in 0..=255u128 {
            let inp = [BvVal::new(8, x)];
            let a = run(&original, &inp);
            let b = run(&f, &inp);
            assert!(b.refines(&a), "x={x}: {a:?} vs {b:?}");
        }
        // The optimized function is shorter.
        assert!(f.len() < original.len());
    }

    #[test]
    fn module_statistics_accumulate() {
        let pass = simple_opts();
        let mut funcs = vec![chain_fn(), chain_fn(), chain_fn()];
        let stats = pass.run_module(&mut funcs);
        assert_eq!(stats.fires["add-zero"], 3);
        let sorted = stats.sorted_counts();
        assert_eq!(sorted.len(), 3);
        assert!(sorted[0].1 >= sorted[1].1);
    }

    #[test]
    fn empty_pass_changes_nothing() {
        let pass = Peephole::new([]);
        let mut f = chain_fn();
        let before = f.clone();
        let stats = pass.run(&mut f);
        assert_eq!(stats.total_fires(), 0);
        assert_eq!(f, before);
    }

    #[test]
    fn optimized_output_costs_less() {
        let pass = simple_opts();
        let mut f = chain_fn();
        let before = f.static_cost();
        pass.run(&mut f);
        assert!(f.static_cost() < before, "mul should become shl");
    }

    #[test]
    fn run_handles_ub_refinement() {
        // udiv x, x => 1 fires; for x=0 the original is UB, so anything
        // (here: 1) refines it.
        let pass = Peephole::new([(
            "udiv-self".to_string(),
            parse_transform("%r = udiv %x, %x\n=>\n%r = 1").unwrap(),
        )]);
        let mut f = Function::new("t", vec![8]);
        let r = f.push(MInst::Bin {
            op: BinOp::UDiv,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Reg(0),
        });
        f.ret = MValue::Reg(r);
        let original = f.clone();
        let stats = pass.run(&mut f);
        assert_eq!(stats.total_fires(), 1);
        for x in 0..=255u128 {
            let inp = [BvVal::new(8, x)];
            assert!(run(&f, &inp).refines(&run(&original, &inp)));
        }
        assert_eq!(run(&original, &[BvVal::zero(8)]), Outcome::Ub);
    }
}
