//! Known-bits dataflow analysis for mini-LLVM.
//!
//! Alive preconditions consult LLVM dataflow analyses through built-in
//! predicates such as `MaskedValueIsZero` and `isPowerOf2` (paper §2.3).
//! The pass needs concrete (must-)analysis results to decide whether a
//! rewrite may fire; this module provides a classic known-zero/known-one
//! forward analysis over the straight-line IR.

use crate::ir::{Function, MInst, MValue};
use alive_ir::ast::{BinOp, ConvOp};
use alive_smt::BvVal;

/// Per-value known bits: a bit may be known-zero, known-one, or unknown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KnownBits {
    /// Mask of bits known to be zero.
    pub zero: BvVal,
    /// Mask of bits known to be one.
    pub one: BvVal,
}

impl KnownBits {
    /// Nothing known at a given width.
    pub fn unknown(width: u32) -> KnownBits {
        KnownBits {
            zero: BvVal::zero(width),
            one: BvVal::zero(width),
        }
    }

    /// Exact constant.
    pub fn constant(v: BvVal) -> KnownBits {
        KnownBits {
            zero: v.not(),
            one: v,
        }
    }

    /// Width of the tracked value.
    pub fn width(&self) -> u32 {
        self.zero.width()
    }

    /// Is the value fully known?
    pub fn is_constant(&self) -> Option<BvVal> {
        if self.zero.or(self.one) == BvVal::ones(self.width()) {
            Some(self.one)
        } else {
            None
        }
    }

    /// Are all bits in `mask` known zero?
    pub fn masked_value_is_zero(&self, mask: BvVal) -> bool {
        self.zero.and(mask) == mask
    }

    /// Is the value provably a (non-zero) power of two?
    ///
    /// A must-analysis: `false` means "cannot prove", not "is not".
    pub fn is_power_of_two(&self) -> bool {
        match self.is_constant() {
            Some(v) => v.is_power_of_two(),
            None => {
                // Exactly one bit not known-zero, and that bit known-one.
                let candidates = self.zero.not();
                candidates.is_power_of_two() && self.one == candidates
            }
        }
    }

    /// Is the value provably non-zero?
    pub fn is_non_zero(&self) -> bool {
        !self.one.is_zero()
    }

    /// Is the value provably non-negative (sign bit known zero)?
    pub fn is_non_negative(&self) -> bool {
        self.zero.bit(self.width() - 1)
    }
}

/// Computes known bits for every value of `f`.
///
/// Rewrites may leave instructions referencing later-defined values, so
/// the analysis is demand-driven over the (acyclic) value graph rather
/// than a single forward sweep.
pub fn known_bits(f: &Function) -> Vec<KnownBits> {
    let n = f.params.len() + f.insts.len();
    let mut out: Vec<Option<KnownBits>> = vec![None; n];
    for (i, &w) in f.params.iter().enumerate() {
        out[i] = Some(KnownBits::unknown(w));
    }
    for idx in 0..f.insts.len() {
        compute(f, f.id_of_inst(idx), &mut out);
    }
    out.into_iter()
        .map(|o| o.expect("all values computed"))
        .collect()
}

fn compute(f: &Function, root: u32, out: &mut [Option<KnownBits>]) {
    let mut stack: Vec<(u32, bool)> = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if out[id as usize].is_some() {
            continue;
        }
        let inst = f.inst_of(id).expect("parameters pre-seeded");
        if !expanded {
            stack.push((id, true));
            for op in inst.operands() {
                if let MValue::Reg(r) = op {
                    if out[r as usize].is_none() {
                        stack.push((r, false));
                    }
                }
            }
            continue;
        }
        let kb = transfer(f, inst, out);
        out[id as usize] = Some(kb);
    }
}

/// Known bits of an operand given already-computed results.
fn value_bits(f: &Function, v: MValue, env: &[Option<KnownBits>]) -> KnownBits {
    let _ = f;
    match v {
        MValue::Const(c) => KnownBits::constant(c),
        MValue::Undef(w) => KnownBits::unknown(w),
        MValue::Reg(r) => env[r as usize].expect("operand computed before use"),
    }
}

fn transfer(f: &Function, inst: &MInst, env: &[Option<KnownBits>]) -> KnownBits {
    let w = inst.result_width(f);
    match inst {
        MInst::Bin { op, a, b, .. } => {
            let ka = value_bits(f, *a, env);
            let kb = value_bits(f, *b, env);
            match op {
                BinOp::And => KnownBits {
                    zero: ka.zero.or(kb.zero),
                    one: ka.one.and(kb.one),
                },
                BinOp::Or => KnownBits {
                    zero: ka.zero.and(kb.zero),
                    one: ka.one.or(kb.one),
                },
                BinOp::Xor => {
                    let known = ka.zero.or(ka.one).and(kb.zero.or(kb.one));
                    let val = ka.one.xor(kb.one);
                    KnownBits {
                        zero: known.and(val.not()),
                        one: known.and(val),
                    }
                }
                BinOp::Shl => {
                    if let Some(sh) = kb.is_constant() {
                        if sh.to_unsigned() < w as u128 {
                            return KnownBits {
                                zero: ka.zero.shl(sh).or(BvVal::ones(w)
                                    .lshr(BvVal::new(w, w as u128 - sh.to_unsigned()))
                                    .and(BvVal::ones(w))),
                                one: ka.one.shl(sh),
                            };
                        }
                    }
                    KnownBits::unknown(w)
                }
                BinOp::LShr => {
                    if let Some(sh) = kb.is_constant() {
                        if sh.to_unsigned() < w as u128 {
                            let high_zeros = if sh.is_zero() {
                                BvVal::zero(w)
                            } else {
                                BvVal::ones(w).shl(BvVal::new(w, w as u128 - sh.to_unsigned()))
                            };
                            return KnownBits {
                                zero: ka.zero.lshr(sh).or(high_zeros),
                                one: ka.one.lshr(sh),
                            };
                        }
                    }
                    KnownBits::unknown(w)
                }
                BinOp::URem => {
                    if let Some(d) = kb.is_constant() {
                        if d.is_power_of_two() {
                            let mask = d.sub(BvVal::one(w));
                            return KnownBits {
                                zero: mask.not(),
                                one: BvVal::zero(w),
                            };
                        }
                    }
                    KnownBits::unknown(w)
                }
                _ => match (ka.is_constant(), kb.is_constant()) {
                    // Fully-constant folding (avoiding UB cases).
                    (Some(x), Some(y)) => {
                        let safe =
                            !matches!(op, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem)
                                || !y.is_zero();
                        let shift_ok = !matches!(op, BinOp::Shl | BinOp::LShr | BinOp::AShr)
                            || y.to_unsigned() < w as u128;
                        if safe && shift_ok {
                            let v = match op {
                                BinOp::Add => x.add(y),
                                BinOp::Sub => x.sub(y),
                                BinOp::Mul => x.mul(y),
                                BinOp::UDiv => x.udiv(y),
                                BinOp::SDiv => x.sdiv(y),
                                BinOp::URem => x.urem(y),
                                BinOp::SRem => x.srem(y),
                                BinOp::Shl => x.shl(y),
                                BinOp::LShr => x.lshr(y),
                                BinOp::AShr => x.ashr(y),
                                _ => unreachable!("bitwise handled above"),
                            };
                            KnownBits::constant(v)
                        } else {
                            KnownBits::unknown(w)
                        }
                    }
                    _ => KnownBits::unknown(w),
                },
            }
        }
        MInst::ICmp { .. } => KnownBits::unknown(1),
        MInst::Select { t, e, .. } => {
            let kt = value_bits(f, *t, env);
            let ke = value_bits(f, *e, env);
            KnownBits {
                zero: kt.zero.and(ke.zero),
                one: kt.one.and(ke.one),
            }
        }
        MInst::Conv { op, a, to } => {
            let ka = value_bits(f, *a, env);
            let aw = ka.width();
            match op {
                ConvOp::ZExt => KnownBits {
                    zero: ka.zero.zext(*to).or({
                        // Extended bits are zero.
                        BvVal::ones(*to).shl(BvVal::new(*to, aw as u128))
                    }),
                    one: ka.one.zext(*to),
                },
                ConvOp::SExt => {
                    // Without knowing the sign bit, extended bits unknown.
                    if ka.zero.bit(aw - 1) {
                        KnownBits {
                            zero: ka
                                .zero
                                .zext(*to)
                                .or(BvVal::ones(*to).shl(BvVal::new(*to, aw as u128))),
                            one: ka.one.zext(*to),
                        }
                    } else if ka.one.bit(aw - 1) {
                        KnownBits {
                            zero: ka.zero.zext(*to),
                            one: ka
                                .one
                                .zext(*to)
                                .or(BvVal::ones(*to).shl(BvVal::new(*to, aw as u128))),
                        }
                    } else {
                        KnownBits {
                            zero: ka
                                .zero
                                .zext(*to)
                                .and(BvVal::ones(*to).lshr(BvVal::new(*to, (*to - aw) as u128))),
                            one: ka.one.zext(*to),
                        }
                    }
                }
                ConvOp::Trunc => KnownBits {
                    zero: ka.zero.trunc(*to),
                    one: ka.one.trunc(*to),
                },
                _ => KnownBits::unknown(*to),
            }
        }
        MInst::Copy { a } => value_bits(f, *a, env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Function;
    use alive_ir::ast::Flag;

    #[test]
    fn constants_are_fully_known() {
        let k = KnownBits::constant(BvVal::new(8, 0b1010_0101));
        assert_eq!(k.is_constant(), Some(BvVal::new(8, 0b1010_0101)));
        assert!(k.masked_value_is_zero(BvVal::new(8, 0b0101_1010)));
        assert!(!k.masked_value_is_zero(BvVal::new(8, 1)));
    }

    #[test]
    fn and_with_mask_knows_zeros() {
        let mut f = Function::new("t", vec![8]);
        let r = f.push(MInst::Bin {
            op: BinOp::And,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::new(8, 0x0F)),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(kb[r as usize].masked_value_is_zero(BvVal::new(8, 0xF0)));
        assert!(!kb[r as usize].masked_value_is_zero(BvVal::new(8, 0x01)));
    }

    #[test]
    fn or_with_bit_knows_nonzero() {
        let mut f = Function::new("t", vec![8]);
        let r = f.push(MInst::Bin {
            op: BinOp::Or,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::new(8, 1)),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(kb[r as usize].is_non_zero());
    }

    #[test]
    fn shl_of_one_is_power_of_two_when_constant() {
        let mut f = Function::new("t", vec![8]);
        let r = f.push(MInst::Bin {
            op: BinOp::Shl,
            flags: vec![],
            a: MValue::Const(BvVal::new(8, 1)),
            b: MValue::Const(BvVal::new(8, 3)),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(kb[r as usize].is_power_of_two());
        assert_eq!(kb[r as usize].is_constant(), Some(BvVal::new(8, 8)));
    }

    #[test]
    fn urem_pow2_bounds() {
        let mut f = Function::new("t", vec![8]);
        let r = f.push(MInst::Bin {
            op: BinOp::URem,
            flags: vec![],
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::new(8, 8)),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(kb[r as usize].masked_value_is_zero(BvVal::new(8, 0xF8)));
    }

    #[test]
    fn zext_upper_bits_known_zero() {
        let mut f = Function::new("t", vec![4]);
        let r = f.push(MInst::Conv {
            op: ConvOp::ZExt,
            a: MValue::Reg(0),
            to: 8,
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert!(kb[r as usize].masked_value_is_zero(BvVal::new(8, 0xF0)));
        assert!(kb[r as usize].is_non_negative());
    }

    #[test]
    fn unknown_params_are_unknown() {
        let mut f = Function::new("t", vec![8, 8]);
        let r = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![Flag::Nsw],
            a: MValue::Reg(0),
            b: MValue::Reg(1),
        });
        f.ret = MValue::Reg(r);
        let kb = known_bits(&f);
        assert_eq!(kb[r as usize], KnownBits::unknown(8));
        assert!(!kb[r as usize].is_power_of_two());
    }
}
