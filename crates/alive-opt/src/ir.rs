//! A miniature LLVM-like SSA IR ("mini-LLVM").
//!
//! This is the substrate standing in for LLVM itself: the peephole pass
//! applies verified Alive transformations to these functions, the
//! interpreter executes them (with UB and poison tracking), and the
//! workload generator produces them in bulk. Functions are straight-line
//! SSA — InstCombine does not modify control flow (paper §2.1), so
//! branches are unnecessary for exercising it.

use alive_ir::ast::{BinOp, ConvOp, Flag, ICmpPred};
use alive_smt::BvVal;
use std::fmt;

/// A dense SSA value id: parameters first, then instruction results.
pub type ValueId = u32;

/// An operand of a mini-LLVM instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MValue {
    /// Reference to a parameter or instruction result.
    Reg(ValueId),
    /// An immediate constant.
    Const(BvVal),
    /// The `undef` value.
    Undef(u32),
}

impl MValue {
    /// Bitwidth of the operand (register widths come from the function).
    pub fn width(&self, f: &Function) -> u32 {
        match self {
            MValue::Reg(r) => f.width_of(*r),
            MValue::Const(v) => v.width(),
            MValue::Undef(w) => *w,
        }
    }
}

/// A mini-LLVM instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MInst {
    /// Integer binary operation.
    Bin {
        /// Operation.
        op: BinOp,
        /// Poison-generating attributes present on this instruction.
        flags: Vec<Flag>,
        /// Left operand.
        a: MValue,
        /// Right operand.
        b: MValue,
    },
    /// Integer comparison (result width 1).
    ICmp {
        /// Predicate.
        pred: ICmpPred,
        /// Left operand.
        a: MValue,
        /// Right operand.
        b: MValue,
    },
    /// Ternary select.
    Select {
        /// i1 condition.
        c: MValue,
        /// Value when true.
        t: MValue,
        /// Value when false.
        e: MValue,
    },
    /// Width conversion (zext/sext/trunc).
    Conv {
        /// Conversion kind.
        op: ConvOp,
        /// Operand.
        a: MValue,
        /// Result width.
        to: u32,
    },
    /// Identity (used to splice rewrites; folded away by DCE).
    Copy {
        /// The forwarded value.
        a: MValue,
    },
}

impl MInst {
    /// Operands of the instruction.
    pub fn operands(&self) -> Vec<MValue> {
        match self {
            MInst::Bin { a, b, .. } | MInst::ICmp { a, b, .. } => vec![*a, *b],
            MInst::Select { c, t, e } => vec![*c, *t, *e],
            MInst::Conv { a, .. } | MInst::Copy { a } => vec![*a],
        }
    }

    /// Rewrites the operands in place.
    pub fn map_operands(&mut self, mut fun: impl FnMut(MValue) -> MValue) {
        match self {
            MInst::Bin { a, b, .. } | MInst::ICmp { a, b, .. } => {
                *a = fun(*a);
                *b = fun(*b);
            }
            MInst::Select { c, t, e } => {
                *c = fun(*c);
                *t = fun(*t);
                *e = fun(*e);
            }
            MInst::Conv { a, .. } | MInst::Copy { a } => *a = fun(*a),
        }
    }

    /// Result width of the instruction given the function context.
    pub fn result_width(&self, f: &Function) -> u32 {
        match self {
            MInst::Bin { a, .. } => a.width(f),
            MInst::ICmp { .. } => 1,
            MInst::Select { t, .. } => t.width(f),
            MInst::Conv { to, .. } => *to,
            MInst::Copy { a } => a.width(f),
        }
    }

    /// Abstract cost of executing this instruction once (used by the
    /// execution-time experiment; multiplies/divides dominate).
    pub fn cost(&self) -> u64 {
        match self {
            MInst::Bin { op, .. } => match op {
                BinOp::Mul => 3,
                BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => 20,
                _ => 1,
            },
            MInst::ICmp { .. } | MInst::Select { .. } | MInst::Conv { .. } => 1,
            MInst::Copy { .. } => 0,
        }
    }
}

/// A straight-line SSA function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter widths; parameter `i` is value id `i`.
    pub params: Vec<u32>,
    /// Instructions; instruction `i` defines value id `params.len() + i`.
    pub insts: Vec<MInst>,
    /// The returned value.
    pub ret: MValue,
}

impl Function {
    /// Creates an empty function with the given parameter widths.
    pub fn new(name: impl Into<String>, params: Vec<u32>) -> Function {
        Function {
            name: name.into(),
            params,
            insts: Vec::new(),
            ret: MValue::Const(BvVal::zero(1)),
        }
    }

    /// Value id of parameter `i`.
    pub fn param(&self, i: usize) -> ValueId {
        debug_assert!(i < self.params.len());
        i as ValueId
    }

    /// Appends an instruction and returns its value id.
    pub fn push(&mut self, inst: MInst) -> ValueId {
        self.insts.push(inst);
        (self.params.len() + self.insts.len() - 1) as ValueId
    }

    /// The instruction defining `id`, if `id` is not a parameter.
    pub fn inst_of(&self, id: ValueId) -> Option<&MInst> {
        let idx = (id as usize).checked_sub(self.params.len())?;
        self.insts.get(idx)
    }

    /// Index into `insts` for a value id, if it is an instruction result.
    pub fn inst_index(&self, id: ValueId) -> Option<usize> {
        (id as usize).checked_sub(self.params.len())
    }

    /// The value id of instruction index `idx`.
    pub fn id_of_inst(&self, idx: usize) -> ValueId {
        (self.params.len() + idx) as ValueId
    }

    /// Width of a value id.
    pub fn width_of(&self, id: ValueId) -> u32 {
        if (id as usize) < self.params.len() {
            self.params[id as usize]
        } else {
            self.inst_of(id)
                .expect("value id in range")
                .result_width(self)
        }
    }

    /// Number of uses of `id` among instructions and the return value.
    pub fn use_count(&self, id: ValueId) -> usize {
        let mut n = 0;
        for inst in &self.insts {
            n += inst
                .operands()
                .iter()
                .filter(|v| matches!(v, MValue::Reg(r) if *r == id))
                .count();
        }
        if matches!(self.ret, MValue::Reg(r) if r == id) {
            n += 1;
        }
        n
    }

    /// Total abstract cost of all live instructions.
    pub fn static_cost(&self) -> u64 {
        let live = self.live_set();
        self.insts
            .iter()
            .enumerate()
            .filter(|(i, _)| live[*i])
            .map(|(_, inst)| inst.cost())
            .sum()
    }

    /// Liveness of each instruction (reachable from the return value).
    pub fn live_set(&self) -> Vec<bool> {
        let mut live = vec![false; self.insts.len()];
        let mut stack: Vec<ValueId> = Vec::new();
        if let MValue::Reg(r) = self.ret {
            stack.push(r);
        }
        while let Some(id) = stack.pop() {
            let Some(idx) = self.inst_index(id) else {
                continue;
            };
            if idx >= self.insts.len() || live[idx] {
                continue;
            }
            live[idx] = true;
            for op in self.insts[idx].operands() {
                if let MValue::Reg(r) = op {
                    stack.push(r);
                }
            }
        }
        live
    }

    /// Removes dead instructions, compacting value ids and restoring
    /// topological (definition-before-use) order — rewrites may leave
    /// forward references, which this normalizes away.
    pub fn dce(&mut self) {
        // Post-order DFS from the return value: operands first.
        let mut order: Vec<usize> = Vec::new();
        let mut state: Vec<u8> = vec![0; self.insts.len()]; // 0 new, 1 open, 2 done
        let mut stack: Vec<(ValueId, bool)> = Vec::new();
        if let MValue::Reg(r) = self.ret {
            stack.push((r, false));
        }
        while let Some((id, expanded)) = stack.pop() {
            let Some(idx) = self.inst_index(id) else {
                continue;
            };
            if idx >= self.insts.len() || state[idx] == 2 {
                continue;
            }
            if expanded {
                state[idx] = 2;
                order.push(idx);
                continue;
            }
            if state[idx] == 1 {
                continue; // already scheduled for post-visit
            }
            state[idx] = 1;
            stack.push((id, true));
            for op in self.insts[idx].operands() {
                if let MValue::Reg(r) = op {
                    stack.push((r, false));
                }
            }
        }
        let mut remap: Vec<Option<ValueId>> = vec![None; self.params.len() + self.insts.len()];
        for (p, slot) in remap.iter_mut().enumerate().take(self.params.len()) {
            *slot = Some(p as ValueId);
        }
        let mut new_insts = Vec::with_capacity(order.len());
        for idx in order {
            let mut ni = self.insts[idx].clone();
            ni.map_operands(|v| match v {
                MValue::Reg(r) => {
                    MValue::Reg(remap[r as usize].expect("operands precede users in post-order"))
                }
                other => other,
            });
            new_insts.push(ni);
            remap[self.params.len() + idx] =
                Some((self.params.len() + new_insts.len() - 1) as ValueId);
        }
        self.insts = new_insts;
        if let MValue::Reg(r) = self.ret {
            self.ret = MValue::Reg(remap[r as usize].expect("return value must be live"));
        }
    }

    /// Total number of instructions (including dead ones).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "define {}({} params) {{", self.name, self.params.len())?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "  %{} = {:?}", self.params.len() + i, inst)?;
        }
        writeln!(f, "  ret {:?}", self.ret)?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Function {
        let mut f = Function::new("t", vec![8, 8]);
        let x = f.param(0);
        let y = f.param(1);
        let a = f.push(MInst::Bin {
            op: BinOp::Add,
            flags: vec![],
            a: MValue::Reg(x),
            b: MValue::Reg(y),
        });
        let dead = f.push(MInst::Bin {
            op: BinOp::Mul,
            flags: vec![],
            a: MValue::Reg(x),
            b: MValue::Const(BvVal::new(8, 3)),
        });
        let _ = dead;
        let r = f.push(MInst::Bin {
            op: BinOp::Xor,
            flags: vec![],
            a: MValue::Reg(a),
            b: MValue::Const(BvVal::new(8, 0xFF)),
        });
        f.ret = MValue::Reg(r);
        f
    }

    #[test]
    fn widths_and_ids() {
        let f = sample();
        assert_eq!(f.width_of(0), 8);
        assert_eq!(f.width_of(2), 8); // add
        assert_eq!(f.inst_index(2), Some(0));
        assert_eq!(f.id_of_inst(0), 2);
    }

    #[test]
    fn use_counts() {
        let f = sample();
        assert_eq!(f.use_count(0), 2); // x used by add and dead mul
        assert_eq!(f.use_count(2), 1); // add used by xor
        assert_eq!(f.use_count(4), 1); // xor is returned
    }

    #[test]
    fn dce_removes_dead_mul() {
        let mut f = sample();
        assert_eq!(f.len(), 3);
        f.dce();
        assert_eq!(f.len(), 2);
        // Still returns the xor of the add.
        assert!(matches!(f.insts[1], MInst::Bin { op: BinOp::Xor, .. }));
        assert_eq!(f.ret, MValue::Reg(3));
    }

    #[test]
    fn static_cost_ignores_dead_code() {
        let f = sample();
        // live: add (1) + xor (1); the dead mul (3) is not counted.
        assert_eq!(f.static_cost(), 2);
    }

    #[test]
    fn icmp_result_width_is_one() {
        let mut f = Function::new("t", vec![8]);
        let c = f.push(MInst::ICmp {
            pred: ICmpPred::Eq,
            a: MValue::Reg(0),
            b: MValue::Const(BvVal::zero(8)),
        });
        assert_eq!(f.width_of(c), 1);
    }
}
