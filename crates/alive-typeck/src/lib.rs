//! Type inference and feasible-type enumeration for Alive transformations.
//!
//! Alive transformations are polymorphic over types (paper §2.2): variables
//! need not have fixed bitwidths, and the verifier must check every
//! concrete *type assignment* that satisfies the typing rules of Fig. 3.
//! The paper encodes typing constraints in SMT (QF_LIA) and enumerates
//! models; this crate reaches the same enumeration through a union-find
//! unification engine plus explicit bounded search over integer widths,
//! which is both faster and easier to bias toward the small widths used
//! for counterexamples (§3.1.4).
//!
//! # Examples
//!
//! ```
//! use alive_ir::parse_transform;
//! use alive_typeck::{enumerate_typings, TypeckConfig};
//!
//! let t = parse_transform("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x").unwrap();
//! let typings = enumerate_typings(&t, &TypeckConfig::default()).unwrap();
//! // One free integer class; the literal 1 in `C-1` excludes width 1.
//! assert_eq!(typings.len(), TypeckConfig::default().widths.len() - 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use alive_ir::ast::{CExpr, CExprArg, ConvOp, Inst, Operand, Pred, PredArg, Stmt, Type};
use alive_ir::Transform;
use std::collections::HashMap;
use std::fmt;

/// Identifies a typed entity inside a transformation.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Key {
    /// A register (shared between source and target).
    Reg(String),
    /// An abstract constant symbol (`C`, `C1`, ...).
    Sym(String),
    /// A literal/undef/constant-expression operand occurrence:
    /// (in_target, statement index, operand index).
    Operand(bool, usize, usize),
}

/// A concrete type produced by enumeration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConcreteType {
    /// Integer of known width.
    Int(u32),
    /// Pointer to a concrete type (pointer width comes from the config).
    Ptr(Box<ConcreteType>),
    /// Array.
    Array(u64, Box<ConcreteType>),
    /// Void.
    Void,
}

impl ConcreteType {
    /// Bitwidth of the value as stored in a register: integers have their
    /// width; pointers have the configured pointer width.
    ///
    /// # Panics
    ///
    /// Panics for array and void types, which never live in registers.
    pub fn register_width(&self, ptr_width: u32) -> u32 {
        match self {
            ConcreteType::Int(w) => *w,
            ConcreteType::Ptr(_) => ptr_width,
            ConcreteType::Array(..) | ConcreteType::Void => {
                panic!("no register width for {self:?}")
            }
        }
    }

    /// Is this an integer type?
    pub fn is_int(&self) -> bool {
        matches!(self, ConcreteType::Int(_))
    }

    /// Is this a pointer type?
    pub fn is_ptr(&self) -> bool {
        matches!(self, ConcreteType::Ptr(_))
    }

    /// Allocation size in bits: the width rounded up to a byte boundary
    /// (paper §3.3.1; e.g. i5 allocates 8 bits).
    pub fn alloc_size_bits(&self, ptr_width: u32) -> u64 {
        match self {
            ConcreteType::Int(w) => (*w as u64).div_ceil(8) * 8,
            ConcreteType::Ptr(_) => ptr_width as u64,
            ConcreteType::Array(n, t) => n * t.alloc_size_bits(ptr_width),
            ConcreteType::Void => 0,
        }
    }
}

impl fmt::Display for ConcreteType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcreteType::Int(w) => write!(f, "i{w}"),
            ConcreteType::Ptr(t) => write!(f, "{t}*"),
            ConcreteType::Array(n, t) => write!(f, "[{n} x {t}]"),
            ConcreteType::Void => write!(f, "void"),
        }
    }
}

/// One feasible assignment of concrete types to every key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeAssignment {
    map: HashMap<Key, ConcreteType>,
    /// Pointer width used by this assignment.
    pub ptr_width: u32,
}

impl TypeAssignment {
    /// The concrete type of a key.
    ///
    /// # Panics
    ///
    /// Panics if the key was not part of the transformation.
    pub fn type_of(&self, key: &Key) -> &ConcreteType {
        self.map
            .get(key)
            .unwrap_or_else(|| panic!("no type recorded for {key:?}"))
    }

    /// The concrete type of a key, if recorded.
    pub fn get(&self, key: &Key) -> Option<&ConcreteType> {
        self.map.get(key)
    }

    /// Convenience: type of a register by name.
    pub fn reg(&self, name: &str) -> &ConcreteType {
        self.type_of(&Key::Reg(name.to_string()))
    }

    /// Convenience: register bitwidth of a register by name.
    pub fn reg_width(&self, name: &str) -> u32 {
        self.reg(name).register_width(self.ptr_width)
    }

    /// Iterates over all (key, type) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &ConcreteType)> {
        self.map.iter()
    }

    /// A short human-readable summary (e.g. `%x:i8, C:i8`).
    pub fn summary(&self) -> String {
        let mut entries: Vec<String> = self
            .map
            .iter()
            .filter_map(|(k, t)| match k {
                Key::Reg(n) => Some(format!("%{n}:{t}")),
                Key::Sym(n) => Some(format!("{n}:{t}")),
                Key::Operand(..) => None,
            })
            .collect();
        entries.sort();
        entries.join(", ")
    }
}

/// Configuration for type enumeration.
#[derive(Clone, Debug)]
pub struct TypeckConfig {
    /// Candidate integer widths, in enumeration order. Small widths first
    /// biases counterexamples toward readable 4/8-bit values (§3.1.4).
    pub widths: Vec<u32>,
    /// Pointer width (bits).
    pub ptr_width: u32,
    /// Cap on the number of assignments returned.
    pub max_assignments: usize,
}

impl Default for TypeckConfig {
    fn default() -> TypeckConfig {
        TypeckConfig {
            widths: vec![4, 8, 1, 16, 32],
            ptr_width: 32,
            max_assignments: 256,
        }
    }
}

impl TypeckConfig {
    /// The paper's exhaustive setting: all widths 1..=64 (slow; the paper
    /// itself notes multi-hour verifications for mul/div at large widths).
    pub fn exhaustive() -> TypeckConfig {
        TypeckConfig {
            widths: (1..=64).collect(),
            ptr_width: 64,
            max_assignments: 1 << 20,
        }
    }

    /// A fast setting for benchmarks: widths 4 and 8 only.
    pub fn fast() -> TypeckConfig {
        TypeckConfig {
            widths: vec![4, 8],
            ptr_width: 32,
            max_assignments: 64,
        }
    }
}

/// Type errors (infeasible constraints).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError {
    /// Description of the conflict.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

fn terr(message: impl Into<String>) -> TypeError {
    TypeError {
        message: message.into(),
    }
}

// ---- unification engine ----

#[derive(Clone, Debug)]
enum Kind {
    /// Unconstrained (defaults to an integer at enumeration time).
    Any,
    /// Integer, width possibly unknown.
    Int,
    /// First-class (integer or pointer); refined on demand.
    FirstClass,
    /// Pointer to node.
    Ptr(usize),
    /// Array of node.
    Array(u64, usize),
    /// Void.
    Void,
}

#[derive(Clone, Debug)]
struct Node {
    parent: usize,
    rank: u32,
    kind: Kind,
    width: Option<u32>,
    /// Minimum width required (literal representability).
    min_width: u32,
}

#[derive(Debug, Default)]
struct Infer {
    nodes: Vec<Node>,
    /// Strict width orderings (a < b) from extend/trunc.
    lt_edges: Vec<(usize, usize)>,
    keys: HashMap<Key, usize>,
}

impl Infer {
    fn fresh(&mut self) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent: id,
            rank: 0,
            kind: Kind::Any,
            width: None,
            min_width: 1,
        });
        id
    }

    fn find(&mut self, mut a: usize) -> usize {
        while self.nodes[a].parent != a {
            let gp = self.nodes[self.nodes[a].parent].parent;
            self.nodes[a].parent = gp;
            a = gp;
        }
        a
    }

    fn node_for(&mut self, key: Key) -> usize {
        if let Some(&n) = self.keys.get(&key) {
            return n;
        }
        let n = self.fresh();
        self.keys.insert(key, n);
        n
    }

    fn set_int(&mut self, a: usize) -> Result<(), TypeError> {
        let r = self.find(a);
        match self.nodes[r].kind {
            Kind::Any | Kind::FirstClass => {
                self.nodes[r].kind = Kind::Int;
                Ok(())
            }
            Kind::Int => Ok(()),
            ref k => Err(terr(format!("expected integer, found {k:?}"))),
        }
    }

    fn set_first_class(&mut self, a: usize) -> Result<(), TypeError> {
        let r = self.find(a);
        match self.nodes[r].kind {
            Kind::Any => {
                self.nodes[r].kind = Kind::FirstClass;
                Ok(())
            }
            Kind::Int | Kind::FirstClass | Kind::Ptr(_) => Ok(()),
            ref k => Err(terr(format!("expected first-class type, found {k:?}"))),
        }
    }

    fn set_width(&mut self, a: usize, w: u32) -> Result<(), TypeError> {
        self.set_int(a)?;
        let r = self.find(a);
        match self.nodes[r].width {
            None => {
                self.nodes[r].width = Some(w);
                Ok(())
            }
            Some(old) if old == w => Ok(()),
            Some(old) => Err(terr(format!("width conflict: i{old} vs i{w}"))),
        }
    }

    fn set_min_width(&mut self, a: usize, w: u32) -> Result<(), TypeError> {
        self.set_int(a)?;
        let r = self.find(a);
        if self.nodes[r].min_width < w {
            self.nodes[r].min_width = w;
        }
        Ok(())
    }

    fn make_ptr(&mut self, a: usize) -> Result<usize, TypeError> {
        let r = self.find(a);
        match self.nodes[r].kind {
            Kind::Ptr(c) => Ok(c),
            Kind::Any | Kind::FirstClass => {
                let c = self.fresh();
                self.nodes[r].kind = Kind::Ptr(c);
                Ok(c)
            }
            ref k => Err(terr(format!("expected pointer, found {k:?}"))),
        }
    }

    fn unify(&mut self, a: usize, b: usize) -> Result<(), TypeError> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(());
        }
        let ka = self.nodes[ra].kind.clone();
        let kb = self.nodes[rb].kind.clone();
        let merged = match (ka, kb) {
            (Kind::Any, k) | (k, Kind::Any) => k,
            (Kind::Int, Kind::Int) => Kind::Int,
            (Kind::FirstClass, Kind::FirstClass) => Kind::FirstClass,
            (Kind::FirstClass, Kind::Int) | (Kind::Int, Kind::FirstClass) => Kind::Int,
            (Kind::FirstClass, Kind::Ptr(c)) | (Kind::Ptr(c), Kind::FirstClass) => Kind::Ptr(c),
            (Kind::Ptr(c1), Kind::Ptr(c2)) => {
                self.unify(c1, c2)?;
                Kind::Ptr(c1)
            }
            (Kind::Array(n1, c1), Kind::Array(n2, c2)) => {
                if n1 != n2 {
                    return Err(terr(format!("array size conflict: {n1} vs {n2}")));
                }
                self.unify(c1, c2)?;
                Kind::Array(n1, c1)
            }
            (Kind::Void, Kind::Void) => Kind::Void,
            (ka, kb) => return Err(terr(format!("cannot unify {ka:?} with {kb:?}"))),
        };
        let w = match (self.nodes[ra].width, self.nodes[rb].width) {
            (None, w) | (w, None) => w,
            (Some(w1), Some(w2)) if w1 == w2 => Some(w1),
            (Some(w1), Some(w2)) => return Err(terr(format!("width conflict: i{w1} vs i{w2}"))),
        };
        let min_w = self.nodes[ra].min_width.max(self.nodes[rb].min_width);
        // Recompute roots: recursive unification may have reshaped the forest.
        let (ra, rb) = (self.find(ra), self.find(rb));
        if ra == rb {
            return Ok(());
        }
        let (root, child) = if self.nodes[ra].rank >= self.nodes[rb].rank {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.nodes[child].parent = root;
        if self.nodes[ra].rank == self.nodes[rb].rank {
            self.nodes[root].rank += 1;
        }
        self.nodes[root].kind = merged;
        self.nodes[root].width = w;
        self.nodes[root].min_width = min_w;
        Ok(())
    }

    fn apply_annotation(&mut self, node: usize, ty: &Type) -> Result<(), TypeError> {
        match ty {
            Type::Int(w) => self.set_width(node, *w),
            Type::Void => {
                let r = self.find(node);
                match self.nodes[r].kind {
                    Kind::Any => {
                        self.nodes[r].kind = Kind::Void;
                        Ok(())
                    }
                    Kind::Void => Ok(()),
                    ref k => Err(terr(format!("expected void, found {k:?}"))),
                }
            }
            Type::Ptr(inner) => {
                let c = self.make_ptr(node)?;
                self.apply_annotation(c, inner)
            }
            Type::Array(n, inner) => {
                let r = self.find(node);
                let c = match self.nodes[r].kind {
                    Kind::Array(m, c) => {
                        if m != *n {
                            return Err(terr("array size conflict"));
                        }
                        c
                    }
                    Kind::Any => {
                        let c = self.fresh();
                        self.nodes[r].kind = Kind::Array(*n, c);
                        c
                    }
                    ref k => return Err(terr(format!("expected array, found {k:?}"))),
                };
                self.apply_annotation(c, inner)
            }
        }
    }
}

fn collect_template(
    inf: &mut Infer,
    stmts: &[Stmt],
    in_target: bool,
    config: &TypeckConfig,
) -> Result<(), TypeError> {
    for (si, stmt) in stmts.iter().enumerate() {
        let mut operand_nodes: Vec<usize> = Vec::new();
        for (oi, op) in stmt.inst.operands().iter().enumerate() {
            let node = match op {
                Operand::Reg(name, _) => inf.node_for(Key::Reg(name.clone())),
                _ => inf.node_for(Key::Operand(in_target, si, oi)),
            };
            if let Some(ty) = op.type_annotation() {
                inf.apply_annotation(node, ty)?;
            }
            if let Operand::Const(e, _) = op {
                constrain_cexpr(inf, e, node)?;
            }
            operand_nodes.push(node);
        }
        let result = stmt
            .name
            .as_ref()
            .map(|n| inf.node_for(Key::Reg(n.clone())));

        match &stmt.inst {
            Inst::BinOp { .. } => {
                let r = result.ok_or_else(|| terr("binop must define a register"))?;
                inf.set_int(operand_nodes[0])?;
                inf.unify(operand_nodes[0], operand_nodes[1])?;
                inf.unify(operand_nodes[0], r)?;
            }
            Inst::Conv { op, to, .. } => {
                let r = result.ok_or_else(|| terr("conversion must define a register"))?;
                if let Some(ty) = to {
                    inf.apply_annotation(r, ty)?;
                }
                let arg = operand_nodes[0];
                match op {
                    ConvOp::ZExt | ConvOp::SExt => {
                        inf.set_int(arg)?;
                        inf.set_int(r)?;
                        let (fa, fr) = (inf.find(arg), inf.find(r));
                        inf.lt_edges.push((fa, fr));
                    }
                    ConvOp::Trunc => {
                        inf.set_int(arg)?;
                        inf.set_int(r)?;
                        let (fa, fr) = (inf.find(arg), inf.find(r));
                        inf.lt_edges.push((fr, fa));
                    }
                    ConvOp::Bitcast => {
                        inf.set_first_class(arg)?;
                        inf.set_first_class(r)?;
                        inf.unify(arg, r)?;
                    }
                    ConvOp::IntToPtr => {
                        inf.set_int(arg)?;
                        inf.make_ptr(r)?;
                    }
                    ConvOp::PtrToInt => {
                        inf.make_ptr(arg)?;
                        inf.set_int(r)?;
                    }
                }
            }
            Inst::Select { .. } => {
                let r = result.ok_or_else(|| terr("select must define a register"))?;
                inf.set_width(operand_nodes[0], 1)?;
                inf.set_first_class(operand_nodes[1])?;
                inf.unify(operand_nodes[1], operand_nodes[2])?;
                inf.unify(operand_nodes[1], r)?;
            }
            Inst::ICmp { .. } => {
                let r = result.ok_or_else(|| terr("icmp must define a register"))?;
                inf.set_first_class(operand_nodes[0])?;
                inf.unify(operand_nodes[0], operand_nodes[1])?;
                inf.set_width(r, 1)?;
            }
            Inst::Alloca { ty, .. } => {
                let r = result.ok_or_else(|| terr("alloca must define a register"))?;
                // The element count is a machine-word constant, not a
                // polymorphic value; pin it to the pointer width.
                inf.set_width(operand_nodes[0], config.ptr_width)?;
                let elem = inf.make_ptr(r)?;
                inf.apply_annotation(elem, ty)?;
            }
            Inst::Load { .. } => {
                let r = result.ok_or_else(|| terr("load must define a register"))?;
                let elem = inf.make_ptr(operand_nodes[0])?;
                inf.set_first_class(r)?;
                inf.unify(elem, r)?;
            }
            Inst::Store { .. } => {
                inf.set_first_class(operand_nodes[0])?;
                let elem = inf.make_ptr(operand_nodes[1])?;
                inf.unify(elem, operand_nodes[0])?;
            }
            Inst::Gep { idxs, .. } => {
                let r = result.ok_or_else(|| terr("gep must define a register"))?;
                let elem = inf.make_ptr(operand_nodes[0])?;
                for i in 0..idxs.len() {
                    inf.set_int(operand_nodes[1 + i])?;
                }
                // Simplified rule: the result points at the same element
                // type as the base (array-style indexing).
                let relem = inf.make_ptr(r)?;
                inf.unify(elem, relem)?;
            }
            Inst::Copy { .. } => {
                let r = result.ok_or_else(|| terr("copy must define a register"))?;
                inf.unify(operand_nodes[0], r)?;
            }
            Inst::Unreachable => {}
        }
    }
    Ok(())
}

fn constrain_cexpr(inf: &mut Infer, e: &CExpr, ambient: usize) -> Result<(), TypeError> {
    match e {
        CExpr::Lit(n) => inf.set_min_width(ambient, min_width_for_literal(*n)),
        CExpr::Sym(s) => {
            let node = inf.node_for(Key::Sym(s.clone()));
            inf.unify(node, ambient)
        }
        CExpr::Unop(_, a) => constrain_cexpr(inf, a, ambient),
        CExpr::Binop(_, a, b) => {
            constrain_cexpr(inf, a, ambient)?;
            constrain_cexpr(inf, b, ambient)
        }
        CExpr::Fun(name, args) => match name.as_str() {
            // width(x) yields a constant of the ambient type whose value is
            // the bitwidth of x; its argument is unconstrained here.
            "width" => Ok(()),
            _ => {
                for a in args {
                    if let CExprArg::Expr(e) = a {
                        constrain_cexpr(inf, e, ambient)?;
                    }
                }
                Ok(())
            }
        },
    }
}

fn constrain_pred(inf: &mut Infer, p: &Pred) -> Result<(), TypeError> {
    match p {
        Pred::True => Ok(()),
        Pred::Not(a) => constrain_pred(inf, a),
        Pred::And(a, b) | Pred::Or(a, b) => {
            constrain_pred(inf, a)?;
            constrain_pred(inf, b)
        }
        Pred::Cmp(_, a, b) => {
            let node = inf.fresh();
            inf.set_int(node)?;
            constrain_cexpr(inf, a, node)?;
            constrain_cexpr(inf, b, node)
        }
        Pred::Fun(_, args) => {
            // All arguments of one predicate application share a type
            // (e.g. MaskedValueIsZero(%V, ~C1) needs %V and C1 same width).
            let node = inf.fresh();
            for a in args {
                match a {
                    PredArg::Reg(r) => {
                        let rn = inf.node_for(Key::Reg(r.clone()));
                        inf.unify(rn, node)?;
                    }
                    PredArg::Expr(e) => constrain_cexpr(inf, e, node)?,
                }
            }
            Ok(())
        }
    }
}

fn min_width_for_literal(n: i128) -> u32 {
    // Literals are signed integers: positive literals need a sign bit so
    // that e.g. `1` means +1 (never -1 at i1). This mirrors the paper's
    // reading of `add nsw %x, 1; icmp sgt -> true`, which is only correct
    // when the literal 1 is positive. Explicitly annotated widths are not
    // subject to this bound.
    if n == 0 || n == -1 {
        1
    } else if n > 0 {
        (128 - n.leading_zeros()) + 1
    } else {
        128 - (-(n + 1)).leading_zeros() + 1
    }
}

fn concretize(inf: &mut Infer, n: usize, choice: &HashMap<usize, u32>) -> Option<ConcreteType> {
    let r = inf.find(n);
    match inf.nodes[r].kind.clone() {
        Kind::Int | Kind::Any | Kind::FirstClass => {
            let w = inf.nodes[r].width.or_else(|| choice.get(&r).copied())?;
            Some(ConcreteType::Int(w))
        }
        Kind::Ptr(c) => Some(ConcreteType::Ptr(Box::new(concretize(inf, c, choice)?))),
        Kind::Array(sz, c) => Some(ConcreteType::Array(
            sz,
            Box::new(concretize(inf, c, choice)?),
        )),
        Kind::Void => Some(ConcreteType::Void),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    inf: &mut Infer,
    free: &[usize],
    idx: usize,
    config: &TypeckConfig,
    lt: &[(usize, usize)],
    choice: &mut HashMap<usize, u32>,
    keys: &[Key],
    out: &mut Vec<TypeAssignment>,
) {
    if out.len() >= config.max_assignments {
        return;
    }
    if idx == free.len() {
        for &(a, b) in lt {
            let (ra, rb) = (inf.find(a), inf.find(b));
            let wa = inf.nodes[ra].width.or_else(|| choice.get(&ra).copied());
            let wb = inf.nodes[rb].width.or_else(|| choice.get(&rb).copied());
            match (wa, wb) {
                (Some(wa), Some(wb)) if wa < wb => {}
                _ => return,
            }
        }
        let mut map = HashMap::new();
        for k in keys {
            let n = inf.keys[k];
            match concretize(inf, n, choice) {
                Some(ct) => {
                    map.insert(k.clone(), ct);
                }
                None => return,
            }
        }
        out.push(TypeAssignment {
            map,
            ptr_width: config.ptr_width,
        });
        return;
    }
    let r = free[idx];
    let min = inf.nodes[r].min_width;
    for &w in &config.widths {
        if w < min {
            continue;
        }
        choice.insert(r, w);
        dfs(inf, free, idx + 1, config, lt, choice, keys, out);
        if out.len() >= config.max_assignments {
            return;
        }
    }
    choice.remove(&r);
}

/// Enumerates all feasible type assignments for a transformation.
///
/// Assignments are produced in an order biased toward the widths listed
/// first in `config.widths`, mirroring the paper's small-width
/// counterexample bias.
///
/// # Errors
///
/// Returns [`TypeError`] if the typing constraints are unsatisfiable
/// within the configured width set.
pub fn enumerate_typings(
    t: &Transform,
    config: &TypeckConfig,
) -> Result<Vec<TypeAssignment>, TypeError> {
    let mut inf = Infer::default();
    collect_template(&mut inf, &t.source, false, config)?;
    collect_template(&mut inf, &t.target, true, config)?;
    constrain_pred(&mut inf, &t.pre)?;

    let keys: Vec<Key> = {
        let mut ks: Vec<Key> = inf.keys.keys().cloned().collect();
        ks.sort();
        ks
    };

    // Collect roots reachable from keys (following pointer/array children).
    let mut roots: Vec<usize> = Vec::new();
    for k in &keys {
        let n = inf.keys[k];
        let mut stack = vec![inf.find(n)];
        while let Some(r) = stack.pop() {
            if roots.contains(&r) {
                continue;
            }
            roots.push(r);
            match inf.nodes[r].kind.clone() {
                Kind::Ptr(c) | Kind::Array(_, c) => {
                    let rc = inf.find(c);
                    stack.push(rc);
                }
                _ => {}
            }
        }
    }
    let mut free: Vec<usize> = roots
        .iter()
        .copied()
        .filter(|&r| {
            matches!(inf.nodes[r].kind, Kind::Int | Kind::Any | Kind::FirstClass)
                && inf.nodes[r].width.is_none()
        })
        .collect();
    free.sort_unstable();
    free.dedup();

    let lt: Vec<(usize, usize)> = inf
        .lt_edges
        .clone()
        .into_iter()
        .map(|(a, b)| (inf.find(a), inf.find(b)))
        .collect();

    let mut out: Vec<TypeAssignment> = Vec::new();
    let mut choice: HashMap<usize, u32> = HashMap::new();
    let free_snapshot = free.clone();
    dfs(
        &mut inf,
        &free_snapshot,
        0,
        config,
        &lt,
        &mut choice,
        &keys,
        &mut out,
    );

    if out.is_empty() {
        return Err(terr(
            "no feasible type assignment within the configured width set",
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::parse_transform;

    fn typings(src: &str) -> Vec<TypeAssignment> {
        let t = parse_transform(src).unwrap();
        enumerate_typings(&t, &TypeckConfig::default()).unwrap()
    }

    #[test]
    fn single_free_class() {
        // The target's literal 1 (in C-1) excludes i1.
        let ts = typings("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        assert_eq!(ts.len(), TypeckConfig::default().widths.len() - 1);
        for t in &ts {
            assert_eq!(t.reg("1"), t.reg("2"));
            assert_eq!(t.reg("x"), t.type_of(&Key::Sym("C".into())));
        }
        assert_eq!(ts[0].reg_width("x"), 4);
    }

    #[test]
    fn explicit_annotation_pins_type() {
        let ts = typings("%1 = add nsw i32 %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].reg_width("x"), 32);
        assert_eq!(ts[0].reg_width("2"), 1);
    }

    #[test]
    fn icmp_result_is_i1() {
        let ts = typings("%c = icmp eq %a, %b\n=>\n%c = icmp ule %a, %b");
        for t in &ts {
            assert_eq!(t.reg_width("c"), 1);
            assert_eq!(t.reg("a"), t.reg("b"));
        }
    }

    #[test]
    fn zext_requires_strictly_larger_width() {
        let ts = typings("%r = zext %x\n=>\n%r = zext %x");
        for t in &ts {
            assert!(t.reg_width("x") < t.reg_width("r"));
        }
        // Widths {4,8,1,16,32}: 10 ordered pairs.
        assert_eq!(ts.len(), 10);
    }

    #[test]
    fn trunc_requires_strictly_smaller_width() {
        let ts = typings("%r = trunc i32 %x to i8\n=>\n%r = trunc i32 %x to i8");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].reg_width("x"), 32);
        assert_eq!(ts[0].reg_width("r"), 8);
    }

    #[test]
    fn infeasible_widths_error() {
        let t = parse_transform("%r = zext i8 %x to i4\n=>\n%r = zext i8 %x to i4").unwrap();
        assert!(enumerate_typings(&t, &TypeckConfig::default()).is_err());
    }

    #[test]
    fn select_condition_is_i1() {
        let ts = typings("%r = select %c, %a, %b\n=>\n%r = select %c, %b, %a");
        for t in &ts {
            assert_eq!(t.reg_width("c"), 1);
            assert_eq!(t.reg("a"), t.reg("b"));
            assert_eq!(t.reg("a"), t.reg("r"));
        }
    }

    #[test]
    fn literal_representability_bounds_width() {
        // 3333 needs at least 13 bits signed, so widths 4, 8 and 1 are excluded.
        let ts = typings("%1 = xor %x, -1\n%2 = add %1, 3333\n=>\n%2 = sub 3332, %x");
        for t in &ts {
            assert!(t.reg_width("x") >= 12, "got {}", t.reg_width("x"));
        }
        assert_eq!(ts.len(), 2); // 16 and 32
    }

    #[test]
    fn memory_types() {
        let ts = typings("%p = alloca i8, 1\n%v = load %p\n=>\n%v = 0");
        assert_eq!(ts.len(), 1);
        assert_eq!(
            ts[0].reg("p"),
            &ConcreteType::Ptr(Box::new(ConcreteType::Int(8)))
        );
        assert_eq!(ts[0].reg_width("v"), 8);
    }

    #[test]
    fn store_unifies_value_with_pointee() {
        let ts = typings("%x = add %a, 1\nstore %x, %p\n%r = load %p\n=>\n%r = add %a, 1");
        for t in &ts {
            match t.reg("p") {
                ConcreteType::Ptr(inner) => assert_eq!(&**inner, t.reg("x")),
                other => panic!("expected pointer, got {other:?}"),
            }
        }
    }

    #[test]
    fn precondition_unifies_symbols() {
        let ts = typings(
            "Pre: MaskedValueIsZero(%V, ~C1)\n%t0 = or %B, %V\n%R = and %t0, C1\n=>\n%R = and %t0, C1",
        );
        for t in &ts {
            assert_eq!(t.reg("V"), t.type_of(&Key::Sym("C1".into())));
        }
    }

    #[test]
    fn min_width_for_literals() {
        assert_eq!(min_width_for_literal(0), 1);
        assert_eq!(min_width_for_literal(-1), 1);
        assert_eq!(min_width_for_literal(1), 2);
        assert_eq!(min_width_for_literal(2), 3);
        assert_eq!(min_width_for_literal(255), 9);
        assert_eq!(min_width_for_literal(256), 10);
        assert_eq!(min_width_for_literal(-2), 2);
        assert_eq!(min_width_for_literal(-8), 4);
        assert_eq!(min_width_for_literal(-9), 5);
        assert_eq!(min_width_for_literal(3333), 13);
    }

    #[test]
    fn alloc_size_rounds_to_bytes() {
        assert_eq!(ConcreteType::Int(5).alloc_size_bits(32), 8);
        assert_eq!(ConcreteType::Int(8).alloc_size_bits(32), 8);
        assert_eq!(ConcreteType::Int(9).alloc_size_bits(32), 16);
        assert_eq!(
            ConcreteType::Array(3, Box::new(ConcreteType::Int(16))).alloc_size_bits(32),
            48
        );
    }

    #[test]
    fn summary_is_stable() {
        let ts = typings("%r = add i8 %x, C\n=>\n%r = add i8 %x, C");
        assert_eq!(ts.len(), 1);
        let s = ts[0].summary();
        assert!(s.contains("%x:i8"), "{s}");
        assert!(s.contains("C:i8"), "{s}");
    }

    #[test]
    fn two_independent_classes_enumerate_product() {
        // %a/%b in one class; %p/%q in another (unrelated instruction).
        let ts = typings(
            "%r = add %a, %b\n%s = xor %p, %q\n%t = icmp eq %r, %r2\n=>\n%t = icmp ne %r2, %r",
        );
        // Hmm: %s unused would fail validation but typeck doesn't validate.
        // Two free classes -> 25 assignments.
        assert_eq!(ts.len(), 25);
    }
}
