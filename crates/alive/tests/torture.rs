//! Crash-point torture: the SQLite-style sweep over the durable-I/O seam.
//!
//! Every fsync, create, rename, truncate, and directory sync in the
//! system is a numbered crash point (`ALIVE_CRASH_AT=N`, fault-injection
//! builds). These tests run a real serve workload and a real journal
//! workload through the real binaries, crashing the process at durable
//! operation 1, then 2, then 3, ... until a run completes with no crash
//! left to fire — so *every* reachable crash point in the workload is
//! exercised, not a sampled few. After each crash the harness asserts the
//! three durability promises:
//!
//! * **recovery succeeds** — a fresh daemon opens the store (evicting a
//!   header-torn file, truncating a torn tail), or `alive scrub` salvages
//!   it; a fresh `--resume` replays the journal;
//! * **no acknowledged verdict is lost** — every answer a client received
//!   before the crash is served warm (from the store) after recovery;
//! * **no wrong verdict is ever served** — every answer, before or after
//!   the crash, matches a clean one-shot in-process run of the identical
//!   config.
//!
//! Without `--features fault-injection` the crash hooks do not exist and
//! each sweep degenerates to a single clean run — still checked for
//! verdict consistency, but the point of this file is
//! `cargo test -p alive --features fault-injection --test torture`
//! (the CI `durability` job, which also runs the `--ignored` torn-write
//! variants).

#![cfg(unix)]

use alive::serve::client::{Client, ClientConfig};
use alive_suite::{full_corpus, SuiteEntry};
use alive_verifier::{verify_single, DriverConfig, Journal};
use std::collections::HashMap;
use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// `std::process::abort` raises SIGABRT; any other exit after a crash
/// point fired means the injection machinery misbehaved.
const SIGABRT: i32 = 6;

/// Sweep bound: the serve and journal workloads below perform ~10
/// durable operations each, so a sweep that reaches 64 without a clean
/// run means the op count exploded — fail loudly rather than loop.
const MAX_CRASH_POINT: u64 = 64;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("alive-torture-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Three verifiably-correct corpus entries: small enough that each sweep
/// iteration is cheap, enough inserts that the crash points cover header
/// creation, mid-workload appends, and their fsyncs.
fn workload() -> Vec<SuiteEntry> {
    full_corpus()
        .into_iter()
        .filter(|e| !e.expected_bug)
        .take(3)
        .collect()
}

/// The clean one-shot reference run: same transforms, same config, no
/// daemon, no crash. Every verdict the torture runs collect is checked
/// against this.
fn reference(entries: &[SuiteEntry]) -> HashMap<String, String> {
    let driver = DriverConfig {
        verify: alive::VerifyConfig::fast(),
        ..DriverConfig::default()
    };
    entries
        .iter()
        .map(|e| {
            let outcome = verify_single(&e.name, &e.transform, &driver);
            (e.name.clone(), outcome.kind.as_str().to_string())
        })
        .collect()
}

fn aborted(status: ExitStatus) -> bool {
    status.signal() == Some(SIGABRT)
}

/// A daemon that must not outlive a failed assertion.
struct Daemon {
    child: Child,
}

impl Daemon {
    /// Waits for the clean exit after a `shutdown` request.
    fn wait(&mut self) -> ExitStatus {
        self.child.wait().expect("daemon exit status")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// Spawns `alive serve` on `sock`/`store`, optionally with an armed
/// crash point, and polls until it either answers its socket or dies —
/// a crash during store creation kills the daemon before it ever binds,
/// and that exit must be observed, not waited on forever.
fn spawn_daemon(sock: &Path, store: &Path, crash: Option<&str>) -> Result<Daemon, ExitStatus> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_alive"));
    cmd.args(["serve", "--fast", "--request-timeout", "0", "--socket"])
        .arg(sock)
        .arg("--store")
        .arg(store)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = crash {
        cmd.env("ALIVE_CRASH_AT", spec);
    }
    let mut child = cmd.spawn().expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if std::os::unix::net::UnixStream::connect(sock).is_ok() {
            return Ok(Daemon { child });
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            return Err(status);
        }
        assert!(
            Instant::now() < deadline,
            "daemon neither became ready nor exited"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One client pass over the workload. Returns every *acknowledged*
/// answer `(name, verdict, cached)` and whether the pass completed; a
/// daemon that crashes mid-pass surfaces as a client error after bounded
/// retries, and everything acknowledged before that is the prefix the
/// durability promises protect.
fn run_workload(sock: &Path, entries: &[SuiteEntry]) -> (Vec<(String, String, bool)>, bool) {
    let mut client = Client::new(ClientConfig {
        socket: sock.to_path_buf(),
        max_retries: 3,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        io_timeout: Duration::from_secs(120),
        seed: 0x7047,
    });
    let mut acked = Vec::new();
    for e in entries {
        match client.verify(&e.transform.to_string()) {
            Ok(v) => {
                assert_eq!(v.name, e.name, "daemon echoed the wrong transform");
                acked.push((e.name.clone(), v.verdict, v.cached));
            }
            Err(_) => return (acked, false),
        }
    }
    (acked, true)
}

/// Every collected verdict must match the clean reference run — wrong
/// verdicts are the one unforgivable failure, crash or no crash.
fn check_verdicts(
    answers: &[(String, String, bool)],
    expected: &HashMap<String, String>,
    ctx: &str,
) {
    for (name, verdict, _) in answers {
        assert_eq!(
            verdict, &expected[name],
            "{ctx}: wrong verdict served for {name}"
        );
    }
}

/// Sweeps `ALIVE_CRASH_AT = 1{kind}, 2{kind}, ...` over the serve
/// workload until a run completes with no crash fired, asserting the
/// full recovery contract after every crash. Returns the first clean
/// crash point (one past the workload's durable-op count).
fn sweep_serve(name: &str, kind: &str) -> u64 {
    let entries = workload();
    let expected = reference(&entries);
    for n in 1..=MAX_CRASH_POINT {
        let spec = format!("{n}{kind}");
        let ctx = format!("{name} crash point {spec}");
        let dir = temp_dir(&format!("{name}-{n}"));
        let sock = dir.join("serve.sock");
        let store = dir.join("store.jsonl");

        // Phase 1: the doomed run. Either the crash fires (startup or
        // mid-workload) or the whole workload lands clean and the sweep
        // has exhausted every reachable crash point.
        let acked = match spawn_daemon(&sock, &store, Some(&spec)) {
            Err(status) => {
                // Crashed creating the store, before the socket bound.
                assert!(
                    aborted(status),
                    "{ctx}: startup death was not SIGABRT: {status:?}"
                );
                Vec::new()
            }
            Ok(mut daemon) => {
                let (acked, complete) = run_workload(&sock, &entries);
                check_verdicts(&acked, &expected, &ctx);
                if complete {
                    match daemon.child.try_wait().expect("try_wait") {
                        Some(status) => {
                            assert!(aborted(status), "{ctx}: {status:?}");
                        }
                        None => {
                            // Still alive with the workload done: ask it to
                            // stop. A clean exit means the crash point was
                            // never reached — the sweep is over.
                            let mut c = Client::new(ClientConfig {
                                socket: sock.clone(),
                                ..ClientConfig::default()
                            });
                            c.shutdown().expect("shutdown");
                            let status = daemon.wait();
                            if status.success() {
                                assert_eq!(acked.len(), entries.len());
                                return n;
                            }
                            assert!(aborted(status), "{ctx}: {status:?}");
                        }
                    }
                } else {
                    let status = daemon.wait();
                    assert!(
                        aborted(status),
                        "{ctx}: workload failed but daemon exit was {status:?}"
                    );
                }
                acked
            }
        };

        // Phase 2: recovery. A fresh daemon must open whatever the crash
        // left behind — no file, a header-torn file (evicted), a torn
        // tail (truncated) — or, failing that, `alive scrub` must
        // salvage it and the daemon after that must open.
        let mut daemon = match spawn_daemon(&sock, &store, None) {
            Ok(d) => d,
            Err(status) => {
                assert!(
                    !aborted(status),
                    "{ctx}: recovery daemon aborted with no crash armed"
                );
                let scrub = Command::new(env!("CARGO_BIN_EXE_alive"))
                    .arg("scrub")
                    .arg(&store)
                    .output()
                    .unwrap();
                assert!(
                    scrub.status.success(),
                    "{ctx}: neither open nor scrub recovered the store:\n{}",
                    String::from_utf8_lossy(&scrub.stderr)
                );
                match spawn_daemon(&sock, &store, None) {
                    Ok(d) => d,
                    Err(status) => panic!("{ctx}: daemon refused the scrubbed store: {status:?}"),
                }
            }
        };

        // Phase 3: the recovered daemon re-runs the whole workload. All
        // verdicts correct; everything acknowledged before the crash is
        // answered from the store, not re-verified — an ack means the
        // record was fsync'd before the response went out.
        let (recovered, complete) = run_workload(&sock, &entries);
        assert!(complete, "{ctx}: recovery workload did not complete");
        check_verdicts(&recovered, &expected, &ctx);
        let warm: HashMap<&str, bool> = recovered
            .iter()
            .map(|(name, _, cached)| (name.as_str(), *cached))
            .collect();
        for (name, _, _) in &acked {
            assert!(
                warm[name.as_str()],
                "{ctx}: acknowledged verdict for {name} was lost (re-verified cold after recovery)"
            );
        }
        let mut c = Client::new(ClientConfig {
            socket: sock.clone(),
            ..ClientConfig::default()
        });
        c.shutdown().expect("shutdown");
        let status = daemon.wait();
        assert!(status.success(), "{ctx}: recovery daemon exit {status:?}");
    }
    panic!("{name}: no clean run within {MAX_CRASH_POINT} crash points — the workload's durable-op count exploded");
}

/// Sweeps crash points over a `--journal` verify run; recovery is
/// `--resume` on the same journal (or a fresh `--journal` run when the
/// crash predates the file's existence). After recovery the journal must
/// hold a correct verdict for every transform.
fn sweep_journal(name: &str, kind: &str) -> u64 {
    let entries = workload();
    let expected = reference(&entries);
    let mut corpus = String::new();
    for e in &entries {
        corpus.push_str(&e.transform.to_string());
        corpus.push('\n');
    }
    for n in 1..=MAX_CRASH_POINT {
        let spec = format!("{n}{kind}");
        let ctx = format!("{name} crash point {spec}");
        let dir = temp_dir(&format!("{name}-{n}"));
        let opt = dir.join("corpus.opt");
        let journal = dir.join("run.journal.jsonl");
        std::fs::write(&opt, &corpus).unwrap();

        let doomed = Command::new(env!("CARGO_BIN_EXE_alive"))
            .args(["--fast", "--journal"])
            .arg(&journal)
            .arg(&opt)
            .env("ALIVE_CRASH_AT", &spec)
            .stdin(Stdio::null())
            .output()
            .unwrap();
        if doomed.status.success() {
            // No crash fired: the sweep has covered every durable op.
            check_journal(&journal, &entries, &expected, &ctx);
            return n;
        }
        assert!(
            aborted(doomed.status),
            "{ctx}: run failed without aborting: {:?}\n{}",
            doomed.status,
            String::from_utf8_lossy(&doomed.stderr)
        );

        // Recovery: resume from whatever the crash left. A journal that
        // never made it to disk (crash inside create) means nothing was
        // acknowledged — start over with a fresh journal.
        let resume = if journal.exists() {
            Command::new(env!("CARGO_BIN_EXE_alive"))
                .args(["--fast", "--resume"])
                .arg(&journal)
                .arg(&opt)
                .stdin(Stdio::null())
                .output()
                .unwrap()
        } else {
            Command::new(env!("CARGO_BIN_EXE_alive"))
                .args(["--fast", "--journal"])
                .arg(&journal)
                .arg(&opt)
                .stdin(Stdio::null())
                .output()
                .unwrap()
        };
        assert!(
            resume.status.success(),
            "{ctx}: recovery run failed:\n{}",
            String::from_utf8_lossy(&resume.stderr)
        );
        check_journal(&journal, &entries, &expected, &ctx);
    }
    panic!("{name}: no clean run within {MAX_CRASH_POINT} crash points — the workload's durable-op count exploded");
}

/// After recovery the journal must load cleanly and its last record per
/// transform must carry the reference verdict — a journaled (i.e.
/// acknowledged-to-the-operator) verdict that went missing or mutated is
/// a durability failure.
fn check_journal(
    path: &Path,
    entries: &[SuiteEntry],
    expected: &HashMap<String, String>,
    ctx: &str,
) {
    let loaded = Journal::load(path).unwrap_or_else(|e| panic!("{ctx}: journal unreadable: {e}"));
    let mut last: HashMap<String, String> = HashMap::new();
    for rec in &loaded.records {
        last.insert(rec.name.clone(), rec.verdict.as_str().to_string());
    }
    for e in entries {
        let got = last
            .get(&e.name)
            .unwrap_or_else(|| panic!("{ctx}: {} missing from the recovered journal", e.name));
        assert_eq!(
            got, &expected[&e.name],
            "{ctx}: journal verdict for {}",
            e.name
        );
    }
}

/// The minimum crash points a sweep must find when the hooks exist:
/// store/journal creation is 4 durable ops (create, header append,
/// sync, parent-dir sync) and each of the 3 records is 2 more — a sweep
/// that ends earlier silently stopped counting ops.
const MIN_OPS_WITH_HOOKS: u64 = 7;

fn assert_swept(clean_at: u64, what: &str) {
    if cfg!(feature = "fault-injection") {
        assert!(
            clean_at > MIN_OPS_WITH_HOOKS,
            "{what}: first clean run at crash point {clean_at} — the seam stopped counting durable ops"
        );
    } else {
        eprintln!("note: {what}: crash hooks absent (build without --features fault-injection); single clean run only");
    }
}

/// Abort at every durable op of a serve workload, one op per run.
#[test]
fn serve_workload_survives_every_crash_point() {
    let clean_at = sweep_serve("serve-abort", "");
    assert_swept(clean_at, "serve abort sweep");
}

/// Abort at every durable op of a `--journal` run; recover via `--resume`.
#[test]
fn journal_workload_survives_every_crash_point() {
    let clean_at = sweep_journal("journal-abort", "");
    assert_swept(clean_at, "journal abort sweep");
}

/// Torn-write variant: each crash point first lands *half* of the bytes
/// an append was writing, then aborts — the exact state `kill -9`
/// mid-`write` leaves. Run by the CI `durability` job.
#[test]
#[ignore = "full torn-write sweep; run by the CI durability job"]
fn serve_workload_survives_torn_writes_at_every_crash_point() {
    let clean_at = sweep_serve("serve-torn", ":torn");
    assert_swept(clean_at, "serve torn sweep");
}

/// Torn-write variant of the journal sweep. Run by the CI `durability` job.
#[test]
#[ignore = "full torn-write sweep; run by the CI durability job"]
fn journal_workload_survives_torn_writes_at_every_crash_point() {
    let clean_at = sweep_journal("journal-torn", ":torn");
    assert_swept(clean_at, "journal torn sweep");
}
