//! The serve chaos harness: a retrying client fleet runs the paper's
//! corpus against a real `alive serve` daemon that is SIGKILLed and
//! restarted mid-corpus. Every restart exercises the crash-only
//! machinery end to end — stale socket reclaim, stale lock reclaim, torn
//! store-tail truncation — and every verdict the fleet collects is
//! cross-checked against a one-shot in-process verification with the
//! identical config. Zero wrong verdicts, zero hangs.
//!
//! The non-ignored test runs a small corpus slice so `cargo test` stays
//! fast; the full 224-entry sweep (plus `ALIVE_FAULT` serve/store
//! faults, which need `--features fault-injection`) runs under
//! `-- --ignored` in the CI `serve-chaos` job.

#![cfg(unix)]

use alive::serve::client::{Client, ClientConfig};
use alive_suite::{full_corpus, SuiteEntry};
use alive_verifier::{verify_single, DriverConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("alive-chaos-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A daemon process under chaos: spawn, SIGKILL, respawn.
struct Daemon {
    child: Child,
    sock: PathBuf,
    store: PathBuf,
    fault: Option<String>,
}

impl Daemon {
    /// The request deadline is off: this harness asserts verdict
    /// consistency against an unlimited one-shot run, and a contended
    /// debug-build verification that blows a deadline would yield an
    /// honest `unknown` the cross-check counts as wrong. Deadline
    /// behavior has its own tests (`alive-serve/tests/robust.rs`).
    fn spawn(sock: &Path, store: &Path, fault: Option<&str>) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_alive"));
        cmd.args(["serve", "--fast", "--request-timeout", "0", "--socket"])
            .arg(sock)
            .arg("--store")
            .arg(store)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(plan) = fault {
            cmd.env("ALIVE_FAULT", plan);
        }
        let child = cmd.spawn().expect("daemon spawns");
        let daemon = Daemon {
            child,
            sock: sock.to_path_buf(),
            store: store.to_path_buf(),
            fault: fault.map(str::to_string),
        };
        daemon.wait_ready();
        daemon
    }

    /// Polls until the daemon answers its socket. A stale socket file
    /// from a killed predecessor refuses connections until the new
    /// incarnation reclaims and rebinds it, so "file exists" is not
    /// enough — only a successful connect is.
    fn wait_ready(&self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if std::os::unix::net::UnixStream::connect(&self.sock).is_ok() {
                return;
            }
            assert!(Instant::now() < deadline, "daemon never became ready");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// SIGKILL — no drain, no cleanup: the socket file, the lock file,
    /// and possibly a torn store tail are all left for the successor.
    fn kill9(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }

    fn respawn(&mut self) {
        self.kill9();
        *self = Daemon::spawn(
            &self.sock.clone(),
            &self.store.clone(),
            self.fault.as_deref(),
        );
    }
}

/// A failed assertion must not leak the daemon process.
impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// Runs `entries` through a fleet of 3 retrying clients while the main
/// thread SIGKILLs and restarts the daemon every `kill_every`, up to
/// `kills` times (bounded: kills that outpace the slowest verification
/// would livelock — the store snapshots progress, but only between
/// kills), then cross-checks every collected verdict in-process. Panics
/// on any wrong verdict; a hang fails via the clients' bounded retries.
fn run_chaos(
    name: &str,
    entries: Vec<SuiteEntry>,
    fault: Option<&str>,
    kill_every: Duration,
    kills: usize,
) {
    let dir = temp_dir(name);
    let sock = dir.join("serve.sock");
    let store = dir.join("store.jsonl");
    let mut daemon = Daemon::spawn(&sock, &store, fault);

    let verdicts: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|member| {
                let entries = &entries;
                let sock = sock.clone();
                scope.spawn(move || {
                    let mut client = Client::new(ClientConfig {
                        socket: sock,
                        max_retries: 120,
                        base_backoff: Duration::from_millis(5),
                        max_backoff: Duration::from_millis(250),
                        io_timeout: Duration::from_secs(120),
                        seed: 0xc4a0_5000 + member as u64,
                    });
                    let mut out = Vec::new();
                    for e in entries.iter().skip(member).step_by(3) {
                        let v = client
                            .verify(&e.transform.to_string())
                            .unwrap_or_else(|err| panic!("client {member} on {}: {err}", e.name));
                        assert_eq!(v.name, e.name, "daemon echoed the wrong transform");
                        out.push((e.name.clone(), v.verdict));
                    }
                    out
                })
            })
            .collect();

        // Chaos, from the main thread: kill -9 and restart while the
        // fleet works through its share.
        let mut next_kill = Instant::now() + kill_every;
        let mut killed = 0usize;
        while handles.iter().any(|h| !h.is_finished()) {
            std::thread::sleep(Duration::from_millis(10));
            if killed < kills && Instant::now() >= next_kill {
                daemon.respawn();
                killed += 1;
                next_kill = Instant::now() + kill_every;
            }
        }
        assert_eq!(
            killed, kills,
            "the fleet finished before all the chaos landed"
        );
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    daemon.kill9();
    assert_eq!(verdicts.len(), entries.len(), "every entry got a verdict");

    // The paranoid one-shot run: same transforms, same config, no
    // daemon, no cache, no chaos. Any disagreement is a wrong verdict.
    let driver = DriverConfig {
        verify: alive::VerifyConfig::fast(),
        ..DriverConfig::default()
    };
    let expected: HashMap<String, &'static str> = entries
        .iter()
        .map(|e| {
            let outcome = verify_single(&e.name, &e.transform, &driver);
            (e.name.clone(), outcome.kind.as_str())
        })
        .collect();
    let mut wrong = Vec::new();
    for (name, got) in &verdicts {
        let want = expected[name];
        if got != want {
            wrong.push(format!(
                "{name}: fleet said {got}, one-shot run says {want}"
            ));
        }
    }
    assert!(
        wrong.is_empty(),
        "wrong verdicts under chaos:\n{}",
        wrong.join("\n")
    );
}

/// A slice of the corpus under kill -9 chaos: fast enough for every
/// `cargo test` run. Mixes verifiably-correct entries with two of the
/// Fig. 8 bugs so both verdict polarities cross the wire mid-chaos.
#[test]
fn client_fleet_survives_daemon_kills_on_a_corpus_slice() {
    let all = full_corpus();
    let mut entries: Vec<SuiteEntry> = all
        .iter()
        .filter(|e| !e.expected_bug)
        .take(10)
        .cloned()
        .collect();
    entries.extend(all.iter().filter(|e| e.expected_bug).take(2).cloned());
    run_chaos("smoke", entries, None, Duration::from_millis(150), 2);
}

/// The full 224-entry corpus with serve/store faults injected into every
/// daemon incarnation (the ordinals re-fire after each restart). Run in
/// CI as `cargo test -p alive --features fault-injection --test chaos
/// -- --ignored`. Only verdict-preserving fault kinds are injected: a
/// lost append, a torn append, a torn response, a response write error —
/// never a corrupted verdict.
#[test]
#[ignore = "minutes-long full-corpus sweep; run by the serve-chaos CI job"]
fn full_corpus_with_faults_and_kills_yields_zero_wrong_verdicts() {
    let fault = if cfg!(feature = "fault-injection") {
        Some("store:io-error@3,store:torn@7,serve:torn@5,serve:io-error@9")
    } else {
        None
    };
    run_chaos("full", full_corpus(), fault, Duration::from_secs(2), 5);
}

/// Scrub round-trip against the real binaries: a daemon fills a store, a
/// byte flip corrupts a middle record, the next daemon refuses to open
/// it (pointing at `alive scrub`), scrub quarantines the bad line and
/// salvages the rest, and the daemon after that serves the salvaged
/// verdicts warm.
#[test]
fn scrub_cli_salvages_a_corrupted_store_for_the_next_daemon() {
    let dir = temp_dir("scrub-cli");
    let sock = dir.join("serve.sock");
    let store = dir.join("store.jsonl");
    let entries: Vec<SuiteEntry> = full_corpus()
        .into_iter()
        .filter(|e| !e.expected_bug)
        .take(4)
        .collect();

    // Fill the store through a real daemon, then stop it cleanly.
    let mut daemon = Daemon::spawn(&sock, &store, None);
    let mut client = Client::new(ClientConfig {
        socket: sock.clone(),
        ..ClientConfig::default()
    });
    for e in &entries {
        let v = client.verify(&e.transform.to_string()).unwrap();
        assert_eq!(v.name, e.name);
    }
    client.shutdown().unwrap();
    daemon.child.wait().unwrap();

    // Flip one byte inside the second record (line 3: header, then one
    // line per verdict): its CRC seal no longer matches.
    let mut bytes = std::fs::read(&store).unwrap();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, b)| **b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let target = line_starts[2] + 10;
    bytes[target] ^= 0x01;
    std::fs::write(&store, &bytes).unwrap();

    // A daemon refuses the mid-file damage and names the salvage tool.
    let refused = Command::new(env!("CARGO_BIN_EXE_alive"))
        .args(["serve", "--fast", "--stdio", "--store"])
        .arg(&store)
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert!(
        !refused.status.success(),
        "daemon must refuse a corrupt store"
    );
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(
        stderr.contains("alive scrub"),
        "stderr points at scrub:\n{stderr}"
    );

    // Scrub: quarantine the bad line, rewrite the good ones.
    let scrubbed = Command::new(env!("CARGO_BIN_EXE_alive"))
        .arg("scrub")
        .arg(&store)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&scrubbed.stdout);
    assert!(scrubbed.status.success(), "scrub failed:\n{stdout}");
    assert!(stdout.contains("3 salvaged"), "{stdout}");
    assert!(stdout.contains("1 quarantined"), "{stdout}");
    let quarantine = dir.join("store.jsonl.quarantine");
    assert!(quarantine.exists(), "corrupt line preserved, not discarded");

    // The next daemon loads the salvaged store and serves it warm; the
    // quarantined verdict is re-verified, not resurrected.
    let mut daemon = Daemon::spawn(&sock, &store, None);
    let mut client = Client::new(ClientConfig {
        socket: sock,
        ..ClientConfig::default()
    });
    let mut cached = 0;
    for e in &entries {
        let v = client.verify(&e.transform.to_string()).unwrap();
        assert_eq!(v.verdict, "valid", "{}", e.name);
        cached += v.cached as usize;
    }
    assert_eq!(cached, 3, "exactly the salvaged records answer warm");
    client.shutdown().unwrap();
    daemon.child.wait().unwrap();
}
