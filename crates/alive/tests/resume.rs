//! The crash-safety acceptance test: a parallel corpus run is SIGKILLed
//! mid-flight, then rerun with `--resume`. The merged result must carry
//! the same verdicts as an uninterrupted run, and the transforms already
//! journaled before the kill must not be verified a second time.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

fn alive_bin() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_alive"));
    cmd.env_remove("ALIVE_FAULT");
    cmd
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alive-resume-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A corpus of textually distinct transforms (one journal key each):
/// (x ^ -1) + k ==> (k-1) - x is valid for every k; every seventh entry
/// uses k instead of k-1 and is invalid, so verdict fidelity is visible.
fn corpus(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        let k = i + 1;
        let target = if i % 7 == 3 { k } else { k - 1 };
        s.push_str(&format!(
            "Name: t{i}\n%1 = xor %x, -1\n%2 = add %1, {k}\n=>\n%2 = sub {target}, %x\n\n"
        ));
    }
    s
}

/// Extracts the per-transform `(name, verdict)` sequence from a v2 report.
fn verdicts(json: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let t = line.trim_start();
        if !t.starts_with("{\"name\": \"") {
            continue;
        }
        let name = t["{\"name\": \"".len()..].split('"').next().unwrap();
        let verdict = t
            .split("\"verdict\": \"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap();
        out.push((name.to_string(), verdict.to_string()));
    }
    out
}

#[cfg(unix)]
#[test]
fn sigkill_mid_corpus_then_resume_completes_without_reverifying() {
    let dir = temp_dir("kill9");
    let f = dir.join("corpus.opt");
    const N: usize = 40;
    std::fs::write(&f, corpus(N)).unwrap();

    // Reference: an uninterrupted run of the same corpus.
    let reference = dir.join("reference.json");
    let out = alive_bin()
        .args([
            "--fast",
            "--keep-going",
            "--jobs",
            "4",
            "--report",
            reference.to_str().unwrap(),
            f.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let reference = verdicts(&std::fs::read_to_string(&reference).unwrap());
    assert_eq!(reference.len(), N);
    assert!(reference.iter().any(|(_, v)| v == "invalid"));

    // Journaled run, SIGKILLed once a few records are on disk.
    let journal = dir.join("run.jsonl");
    let mut child = alive_bin()
        .args([
            "--fast",
            "--keep-going",
            "--jobs",
            "4",
            "--journal",
            journal.to_str().unwrap(),
            f.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        // Header + at least three records, but don't wait for the finish.
        if lines >= 4 {
            break;
        }
        if child.try_wait().unwrap().is_some() || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill(); // SIGKILL — no cleanup, no final fsync
    let _ = child.wait();

    let journaled = std::fs::read_to_string(&journal).unwrap();
    let records_before = journaled.lines().count().saturating_sub(1);
    assert!(records_before >= 1, "kill landed before any record");

    // Resume: reuse the journal, verify only what is missing.
    let merged = dir.join("merged.json");
    let out = alive_bin()
        .args([
            "--fast",
            "--keep-going",
            "--jobs",
            "4",
            "--resume",
            journal.to_str().unwrap(),
            "--report",
            merged.to_str().unwrap(),
            f.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resume: "), "{stdout}");

    let merged_json = std::fs::read_to_string(&merged).unwrap();
    assert_eq!(
        verdicts(&merged_json),
        reference,
        "merged verdicts must match the uninterrupted run"
    );

    // Every reusable journaled verdict was replayed, not re-verified. A
    // record for a transform the killed run completed may itself have been
    // torn (discarded on load); the count of resumed entries must equal
    // what the resume run actually reused.
    let resumed_count = merged_json.matches("\"resumed\": true").count();
    let reused_stdout: usize = stdout
        .split("resume: ")
        .nth(1)
        .unwrap()
        .split(" verdict(s) reused")
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(resumed_count, reused_stdout, "{stdout}");
    assert!(
        reused_stdout >= records_before.saturating_sub(1),
        "at most the torn tail record may be lost: reused {reused_stdout}, \
         journaled {records_before}\n{stdout}"
    );

    // The journal now covers the whole corpus: a second resume verifies
    // nothing at all.
    let out = alive_bin()
        .args([
            "--fast",
            "--keep-going",
            "--resume",
            journal.to_str().unwrap(),
            f.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("resume: {N} verdict(s) reused, 0 requeued")),
        "{stdout}"
    );
}
