//! Black-box tests of the `alive` binary: argument handling, exit codes,
//! the `--proof` certificate pipeline, the JSON run report, and the
//! robustness flags (`--timeout`, `--budget`, `--retries`, `--keep-going`).

use std::path::PathBuf;
use std::process::Command;

fn alive_bin() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_alive"));
    // Keep fault-injection builds hermetic even if the harness env leaks.
    cmd.env_remove("ALIVE_FAULT");
    cmd
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alive-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const GOOD: &str = "Name: not-add\n%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x\n";
const BAD: &str = "Name: wrong\n%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x\n";
/// Valid and cheap: no solver-bound work, so it verifies under any budget.
const EASY: &str = "Name: double-to-shl\n%r = add %x, %x\n=>\n%r = shl %x, 1\n";

/// Runs the binary and returns (exit code, stdout, stderr).
fn run(args: &[&str]) -> (i32, String, String) {
    let out = alive_bin().args(args).output().expect("spawn alive");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn valid_file_exits_zero() {
    let dir = temp_dir("ok");
    let f = dir.join("good.opt");
    std::fs::write(&f, GOOD).unwrap();
    let out = alive_bin().arg("--fast").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn refinement_failure_exits_one() {
    let dir = temp_dir("bad");
    let f = dir.join("bad.opt");
    std::fs::write(&f, BAD).unwrap();
    let out = alive_bin().arg("--fast").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = alive_bin().arg("--definitely-not-a-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(64), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option"), "{err}");
}

#[test]
fn proof_flag_requires_argument() {
    let out = alive_bin().arg("--proof").output().unwrap();
    assert_eq!(out.status.code(), Some(64), "{out:?}");
}

#[test]
fn missing_input_is_a_usage_error() {
    let out = alive_bin().arg("--fast").output().unwrap();
    assert_eq!(out.status.code(), Some(64), "{out:?}");
}

#[test]
fn proof_flag_writes_checkable_certificates() {
    let dir = temp_dir("proof");
    let f = dir.join("good.opt");
    std::fs::write(&f, GOOD).unwrap();
    let proofs = dir.join("proofs");
    let out = alive_bin()
        .arg("--fast")
        .arg("--proof")
        .arg(&proofs)
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("certificates written and re-checked"),
        "{stdout}"
    );

    let mut certs = Vec::new();
    for entry in std::fs::read_dir(&proofs).unwrap() {
        let path = entry.unwrap().path();
        assert_eq!(path.extension().and_then(|e| e.to_str()), Some("cert"));
        certs.push(path);
    }
    // fast profile: 2 widths x 3 conditions.
    assert_eq!(certs.len(), 6, "{certs:?}");
    for path in certs {
        let text = std::fs::read_to_string(&path).unwrap();
        let cert = alive::Certificate::parse(&text).unwrap();
        cert.check().unwrap_or_else(|e| {
            panic!("{}: {e}", path.display());
        });
        assert_eq!(cert.meta.transform, "not-add");
    }
}

#[test]
fn colliding_certificate_slugs_do_not_overwrite_each_other() {
    // "A:B" and "A_B" both slug to "A_B"; the second must get a suffix.
    let dir = temp_dir("slugs");
    let f = dir.join("twins.opt");
    std::fs::write(
        &f,
        format!(
            "{}\n{}",
            EASY.replace("double-to-shl", "A:B"),
            EASY.replace("double-to-shl", "A_B")
        ),
    )
    .unwrap();
    let proofs = dir.join("proofs");
    let (code, stdout, _) = run(&[
        "--fast",
        "--proof",
        proofs.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
    let mut stems: Vec<String> = std::fs::read_dir(&proofs)
        .unwrap()
        .map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.split('.').next().unwrap().to_string()
        })
        .collect();
    stems.sort();
    stems.dedup();
    assert_eq!(
        stems,
        ["A_B", "A_B__2"],
        "one transform's certificates overwrote the other's"
    );
}

#[test]
fn contradictory_width_flags_are_rejected_in_either_order() {
    for args in [["--fast", "--exhaustive"], ["--exhaustive", "--fast"]] {
        let (code, _, stderr) = run(&[args[0], args[1], "x.opt"]);
        assert_eq!(code, 64, "{stderr}");
        assert!(stderr.contains("contradict"), "{stderr}");
    }
}

#[test]
fn malformed_numeric_flags_are_usage_errors() {
    let (code, _, _) = run(&["--timeout", "never", "x.opt"]);
    assert_eq!(code, 64);
    let (code, _, _) = run(&["--timeout", "-1", "x.opt"]);
    assert_eq!(code, 64);
    let (code, _, _) = run(&["--budget"]);
    assert_eq!(code, 64);
    let (code, _, _) = run(&["--retries", "many", "x.opt"]);
    assert_eq!(code, 64);
}

#[test]
fn supervision_flags_are_validated() {
    // --jobs wants a positive count.
    let (code, _, stderr) = run(&["--jobs", "0", "x.opt"]);
    assert_eq!(code, 64, "{stderr}");
    let (code, _, _) = run(&["--jobs", "many", "x.opt"]);
    assert_eq!(code, 64);
    let (code, _, _) = run(&["--jobs"]);
    assert_eq!(code, 64);
    // --grace wants a non-negative duration.
    let (code, _, _) = run(&["--grace", "-1", "x.opt"]);
    assert_eq!(code, 64);
    // --journal / --resume want a path.
    let (code, _, _) = run(&["--journal"]);
    assert_eq!(code, 64);
    let (code, _, _) = run(&["--resume"]);
    assert_eq!(code, 64);
    // --resume already names the journal.
    let (code, _, stderr) = run(&["--resume", "a.jsonl", "--journal", "b.jsonl", "x.opt"]);
    assert_eq!(code, 64, "{stderr}");
    assert!(stderr.contains("--resume already names"), "{stderr}");
    // Certificates require live verification.
    let (code, _, stderr) = run(&["--resume", "a.jsonl", "--proof", "certs", "x.opt"]);
    assert_eq!(code, 64, "{stderr}");
    assert!(stderr.contains("--proof"), "{stderr}");
    // Resuming from a journal that does not exist is a hard error, not a
    // silent fresh start.
    let dir = temp_dir("no-journal");
    let f = dir.join("good.opt");
    std::fs::write(&f, EASY).unwrap();
    let ghost = dir.join("ghost.jsonl");
    let (code, _, stderr) = run(&["--resume", ghost.to_str().unwrap(), f.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("cannot read journal"), "{stderr}");
}

#[test]
fn parallel_jobs_match_sequential_results() {
    let dir = temp_dir("jobs");
    let f = dir.join("mix.opt");
    let mut corpus = format!("{BAD}\n");
    for i in 0..6 {
        corpus.push_str(&EASY.replace("double-to-shl", &format!("easy-{i}")));
        corpus.push('\n');
    }
    std::fs::write(&f, corpus).unwrap();
    let (code1, stdout1, _) = run(&["--fast", "--keep-going", f.to_str().unwrap()]);
    let (code4, stdout4, _) = run(&["--fast", "--keep-going", "--jobs", "4", f.to_str().unwrap()]);
    assert_eq!(code1, 1, "{stdout1}");
    assert_eq!(code4, 1, "{stdout4}");
    assert!(stdout1.contains("6 valid, 1 invalid"), "{stdout1}");
    assert!(stdout4.contains("6 valid, 1 invalid"), "{stdout4}");
}

#[test]
fn journal_then_resume_reuses_every_verdict() {
    let dir = temp_dir("journal-resume");
    let f = dir.join("mix.opt");
    let mut corpus = format!("{BAD}\n{GOOD}\n");
    for i in 0..3 {
        corpus.push_str(&EASY.replace("double-to-shl", &format!("easy-{i}")));
        corpus.push('\n');
    }
    std::fs::write(&f, corpus).unwrap();
    let journal = dir.join("run.jsonl");
    let (code, stdout, _) = run(&[
        "--fast",
        "--keep-going",
        "--jobs",
        "2",
        "--journal",
        journal.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("4 valid, 1 invalid"), "{stdout}");
    let journal_after_run = std::fs::read_to_string(&journal).unwrap();

    // Resume over a complete journal re-verifies nothing and reaches the
    // same verdicts, flagged as resumed.
    let report = dir.join("report.json");
    let (code, stdout, _) = run(&[
        "--fast",
        "--keep-going",
        "--resume",
        journal.to_str().unwrap(),
        "--report",
        report.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("resume: 5 verdict(s) reused"), "{stdout}");
    assert!(stdout.contains("[resumed from journal]"), "{stdout}");
    assert!(stdout.contains("4 valid, 1 invalid"), "{stdout}");
    let json = std::fs::read_to_string(&report).unwrap();
    assert_eq!(json.matches("\"resumed\": true").count(), 5, "{json}");
    // Nothing was re-verified, so nothing new was journaled.
    assert_eq!(
        std::fs::read_to_string(&journal).unwrap(),
        journal_after_run,
        "resume must not re-append reused verdicts"
    );
}

#[test]
fn missing_file_exits_one() {
    let dir = temp_dir("missing");
    let ghost = dir.join("ghost.opt");
    let (code, _, stderr) = run(&[ghost.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("ghost.opt"), "{stderr}");
}

#[test]
fn without_keep_going_the_first_failure_skips_the_rest() {
    let dir = temp_dir("failfast");
    let f = dir.join("mix.opt");
    std::fs::write(&f, format!("{BAD}\n{EASY}")).unwrap();
    let (code, stdout, _) = run(&["--fast", f.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("1 skipped"), "{stdout}");

    let (code, stdout, _) = run(&["--fast", "--keep-going", f.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("1 valid, 1 invalid"), "{stdout}");
    assert!(!stdout.contains("skipped"), "{stdout}");
}

#[test]
fn expired_timeout_is_inconclusive_exit_two() {
    let dir = temp_dir("timeout");
    let f = dir.join("slow.opt");
    std::fs::write(&f, GOOD).unwrap();
    let (code, stdout, _) = run(&["--fast", "--timeout", "0", f.to_str().unwrap()]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("deadline"), "{stdout}");
}

#[test]
fn tiny_budget_is_inconclusive_and_retries_escalate_out_of_it() {
    let dir = temp_dir("budget");
    let f = dir.join("slow.opt");
    std::fs::write(&f, GOOD).unwrap();
    let (code, stdout, _) = run(&[
        "--fast",
        "--budget",
        "2",
        "--retries",
        "0",
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("conflict budget exhausted"), "{stdout}");

    // With escalating retries (2 → 16 → 128 → 1024 conflicts) the same
    // query completes.
    let (code, stdout, _) = run(&[
        "--fast",
        "--budget",
        "2",
        "--retries",
        "3",
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn report_has_the_v3_schema_and_per_transform_entries() {
    let dir = temp_dir("report");
    let f = dir.join("mix.opt");
    std::fs::write(&f, format!("{EASY}\n{BAD}")).unwrap();
    let report = dir.join("report.json");
    let (code, _, _) = run(&[
        "--fast",
        "--keep-going",
        "--report",
        report.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 1);
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"schema\": \"alive-report/v3\""), "{json}");
    for field in [
        "\"valid\": 1",
        "\"invalid\": 1",
        "\"unknown\": 0",
        "\"hung\": 0",
        "\"cancelled\": false",
        "\"name\": \"double-to-shl\"",
        "\"name\": \"wrong\"",
        "\"verdict\": \"valid\"",
        "\"verdict\": \"invalid\"",
        "\"wall_ms\"",
        "\"conflicts\"",
        "\"propagations\"",
        "\"decisions\"",
        "\"restarts\"",
        "\"ef_rounds\"",
        "\"phases\": {\"typeck_us\": ",
        "\"retries\"",
        "\"worker\"",
        "\"resumed\": false",
        "\"attempts\": [",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    // Well-formed at the bracket level (the report is hand-serialized).
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "{json}"
    );
    assert_eq!(
        json.matches('[').count(),
        json.matches(']').count(),
        "{json}"
    );
}

#[test]
fn trace_and_journal_must_be_distinct_files() {
    let (code, _, stderr) = run(&["--trace", "same.jsonl", "--journal", "same.jsonl", "x.opt"]);
    assert_eq!(code, 64, "{stderr}");
    assert!(stderr.contains("same file"), "{stderr}");
    let (code, _, stderr) = run(&["--trace", "same.jsonl", "--resume", "same.jsonl", "x.opt"]);
    assert_eq!(code, 64, "{stderr}");
    assert!(stderr.contains("same file"), "{stderr}");
    // Distinct paths are fine (the run itself fails later on the missing
    // input, not on flag validation).
    let dir = temp_dir("trace-distinct");
    let trace = dir.join("a.jsonl");
    let journal = dir.join("b.jsonl");
    let (code, _, stderr) = run(&[
        "--trace",
        trace.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "x.opt",
    ]);
    assert_ne!(code, 64, "{stderr}");
}

#[test]
fn trace_flag_requires_argument() {
    let (code, _, _) = run(&["--trace"]);
    assert_eq!(code, 64);
}

/// Golden-file check of the trace pipeline: a corpus run with `--trace`
/// yields a strictly-parseable `alive-trace/v1` file whose spans nest
/// correctly per worker, and whose per-phase self-times account for the
/// traced wall span (the `alive stats` percentages are trustworthy).
#[test]
fn trace_file_has_correctly_nesting_spans_and_consistent_phase_times() {
    use alive::trace::{read_trace, TraceStats};

    let dir = temp_dir("trace-golden");
    let f = dir.join("ten.opt");
    let mut corpus = format!("{GOOD}\n");
    for i in 0..9 {
        corpus.push_str(&EASY.replace("double-to-shl", &format!("easy-{i}")));
        corpus.push('\n');
    }
    std::fs::write(&f, corpus).unwrap();
    let trace = dir.join("run-trace.jsonl");
    let (code, stdout, _) = run(&[
        "--fast",
        "--keep-going",
        "--jobs",
        "2",
        "--trace",
        trace.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");

    // Strict read: every line CRC-sealed and schema-valid.
    let events = read_trace(&trace).unwrap();
    assert!(!events.is_empty());
    // Replay validates nesting (every End matches the innermost Start of
    // its thread); a violation is an Err here.
    let stats = TraceStats::from_events(&events).unwrap();
    // No detached workers in a healthy run: every span closed.
    assert_eq!(stats.open_spans, 0);
    // One pool.task span per transform, each attributed by name.
    assert_eq!(stats.tasks.len(), 10, "{:?}", stats.tasks);
    assert!(stats.tasks.iter().any(|(n, _)| n == "not-add"));
    // The span taxonomy of a corpus run is present.
    for phase in ["parse", "typeck", "typing", "encode", "blast", "sat.solve"] {
        assert!(stats.phases.contains_key(phase), "missing {phase} span");
    }
    // Re-run sequentially: with one worker the per-phase self-times must
    // partition the traced interval — their sum accounts for (almost all
    // of) the first-to-last-event wall span. Scheduling gaps between tasks
    // are the only slack, so 5% is generous. (With --jobs 2 the sum is
    // legitimately ~2x wall, so the partition check needs --jobs 1.)
    let seq = dir.join("seq-trace.jsonl");
    let (code, stdout, _) = run(&[
        "--fast",
        "--keep-going",
        "--jobs",
        "1",
        "--trace",
        seq.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}");
    let stats = TraceStats::from_events(&read_trace(&seq).unwrap()).unwrap();
    let self_sum = stats.total_self_us();
    assert!(self_sum <= stats.wall_us + 1);
    assert!(
        self_sum * 100 >= stats.wall_us * 95,
        "phase self-times ({self_sum}us) cover under 95% of the traced wall span ({}us)",
        stats.wall_us
    );
}

#[test]
fn stats_subcommand_renders_breakdown_and_folded_stacks() {
    let dir = temp_dir("stats-cmd");
    let f = dir.join("good.opt");
    std::fs::write(&f, GOOD).unwrap();
    let trace = dir.join("trace.jsonl");
    let (code, _, _) = run(&[
        "--fast",
        "--trace",
        trace.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);

    let (code, stdout, _) = run(&["stats", trace.to_str().unwrap(), "--top", "3"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("phase"), "{stdout}");
    assert!(stdout.contains("sat.solve"), "{stdout}");
    assert!(stdout.contains("slowest transforms"), "{stdout}");
    assert!(stdout.contains("not-add"), "{stdout}");

    // Folded output: `stack;frames self_us` lines, flamegraph.pl's input.
    let (code, stdout, _) = run(&["stats", trace.to_str().unwrap(), "--folded"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("pool.task;typing"), "{stdout}");
    for line in stdout.lines() {
        let (stack, value) = line.rsplit_once(' ').expect(line);
        assert!(!stack.is_empty(), "{line}");
        value.parse::<u64>().expect(line);
    }

    // A corrupted trace is refused loudly, not averaged over.
    let mangled = dir.join("mangled.jsonl");
    let mut text = std::fs::read_to_string(&trace).unwrap();
    let mid = text.len() / 2;
    text.replace_range(mid..mid + 1, "~");
    std::fs::write(&mangled, text).unwrap();
    let (code, _, stderr) = run(&["stats", mangled.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");

    let (code, _, _) = run(&["stats"]);
    assert_eq!(code, 64);
}

#[cfg(unix)]
#[test]
fn sigint_cancels_cooperatively_and_still_writes_the_report() {
    let dir = temp_dir("sigint");
    // Enough solver-bound work (widths 1..=64 per copy) that the run is
    // still going when the signal lands.
    let mut corpus = String::new();
    for i in 0..50 {
        corpus.push_str(&GOOD.replace("not-add", &format!("not-add-{i}")));
        corpus.push('\n');
    }
    let f = dir.join("big.opt");
    std::fs::write(&f, corpus).unwrap();
    let report = dir.join("report.json");
    let mut child = alive_bin()
        .args([
            "--exhaustive",
            "--keep-going",
            "--report",
            report.to_str().unwrap(),
            f.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status();
    let status = child.wait().unwrap();
    let code = status.code().unwrap_or(-1);
    if code == 130 {
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("\"cancelled\": true"), "{json}");
    } else {
        // The run may have finished before the signal landed on a fast
        // machine; then it must have completed normally.
        assert_eq!(code, 0, "unexpected exit code {code}");
    }
}

/// Satellite 2: an empty trace file must degrade to an empty (but
/// rendered) report plus a stderr warning, not an error.
#[test]
fn stats_on_empty_trace_degrades_gracefully() {
    let dir = temp_dir("stats-empty");
    let f = dir.join("empty.jsonl");
    std::fs::write(&f, "").unwrap();
    let (code, stdout, stderr) = run(&["stats", f.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("empty"), "{stderr}");
}

/// Satellite 2: a torn tail (the traced process died mid-write) must
/// degrade to the readable prefix plus a warning.
#[test]
fn stats_on_torn_trace_uses_the_readable_prefix() {
    let dir = temp_dir("stats-torn");
    let f = dir.join("good.opt");
    std::fs::write(&f, EASY).unwrap();
    let trace = dir.join("trace.jsonl");
    let out = alive_bin()
        .args([
            "--fast",
            "--trace",
            trace.to_str().unwrap(),
            f.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // Tear the last line in half, as if the process was killed mid-write.
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.len() > 16, "trace unexpectedly tiny: {text}");
    std::fs::write(&trace, &text.as_bytes()[..text.len() - 9]).unwrap();
    let (code, stdout, stderr) = run(&["stats", trace.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("warning"), "{stderr}");
    assert!(!stdout.is_empty(), "no report rendered");
}

/// The fuzz subcommand: a small fixed-seed run must be clean, and the
/// digest must not depend on the worker count.
#[test]
fn fuzz_smoke_run_is_clean_and_deterministic() {
    let digest_of = |stdout: &str| {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix("digest: "))
            .map(|rest| rest.split_whitespace().next().unwrap().to_string())
            .unwrap_or_else(|| panic!("no digest line in:\n{stdout}"))
    };
    let args = ["fuzz", "--seed", "7", "--cases", "40", "--max-width", "4"];
    let (c1, o1, e1) = run(&args);
    assert_eq!(c1, 0, "stdout:\n{o1}\nstderr:\n{e1}");
    let (c2, o2, _) = run(&[
        "fuzz",
        "--seed",
        "7",
        "--cases",
        "40",
        "--max-width",
        "4",
        "--jobs",
        "2",
    ]);
    assert_eq!(c2, 0, "{o2}");
    assert_eq!(digest_of(&o1), digest_of(&o2));
}

#[test]
fn fuzz_rejects_bad_arguments() {
    for args in [
        &["fuzz", "--cases"][..],
        &["fuzz", "--max-width", "0"][..],
        &["fuzz", "--jobs", "0"][..],
        &["fuzz", "stray-positional"][..],
    ] {
        let (code, _, stderr) = run(args);
        assert_eq!(code, 64, "args {args:?}: {stderr}");
    }
}

#[test]
fn fuzz_replay_of_a_missing_corpus_is_an_error() {
    let dir = temp_dir("replay-missing");
    let missing = dir.join("no-such-corpus");
    let (code, _, stderr) = run(&["fuzz", "--replay", missing.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("does not exist"), "{stderr}");
    assert!(!missing.exists(), "--replay must not create the directory");
}

/// `--paranoid` re-checks verdicts with the differential oracle; on the
/// known-good and known-bad examples it must agree with normal mode.
#[test]
fn paranoid_mode_agrees_on_valid_and_invalid() {
    let dir = temp_dir("paranoid");
    let good = dir.join("good.opt");
    std::fs::write(&good, GOOD).unwrap();
    let (code, stdout, _) = run(&["--fast", "--paranoid", good.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("paranoid: agreed"), "{stdout}");
    assert!(!stdout.contains("DISAGREEMENT"), "{stdout}");

    let bad = dir.join("bad.opt");
    std::fs::write(&bad, BAD).unwrap();
    let (code, stdout, _) = run(&["--fast", "--paranoid", bad.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(!stdout.contains("DISAGREEMENT"), "{stdout}");
}

#[test]
fn paranoid_with_resume_is_rejected() {
    let (code, _, stderr) = run(&["--paranoid", "--resume", "journal.jsonl", "x.opt"]);
    assert_eq!(code, 64, "{stderr}");
    assert!(stderr.contains("--paranoid"), "{stderr}");
}

/// `alive hash`: alpha renaming and commuted commutative operands print
/// one hash; a genuinely different transform prints another.
#[test]
fn hash_collapses_alpha_and_commuted_variants() {
    let dir = temp_dir("hash");
    let f = dir.join("variants.opt");
    std::fs::write(
        &f,
        "Name: orig\n%r = add %x, %y\n=>\n%r = shl %x, 1\n\
         Name: variant\n%s = add %w, %u\n=>\n%s = shl %u, 1\n\
         Name: different\n%r = add %x, %y\n=>\n%r = shl %x, 2\n",
    )
    .unwrap();
    let (code, stdout, stderr) = run(&["hash", f.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    let hashes: Vec<(&str, &str)> = stdout
        .lines()
        .map(|l| l.split_once("  ").expect(l))
        .collect();
    assert_eq!(hashes.len(), 3, "{stdout}");
    for (h, _) in &hashes {
        assert_eq!(h.len(), 16, "{h}");
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()), "{h}");
    }
    assert_eq!(hashes[0].0, hashes[1].0, "variants must collide:\n{stdout}");
    assert_ne!(
        hashes[0].0, hashes[2].0,
        "distinct transforms must not collide:\n{stdout}"
    );

    let (code, _, _) = run(&["hash"]);
    assert_eq!(code, 64);
    let ghost = dir.join("ghost.opt");
    let (code, _, stderr) = run(&["hash", ghost.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
}

/// Starts `alive serve --stdio`, feeds it `requests`, returns stdout.
fn serve_stdio(store: &std::path::Path, requests: &str) -> String {
    use std::io::Write as _;
    let mut child = alive_bin()
        .args([
            "serve",
            "--stdio",
            "--fast",
            "--store",
            store.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(requests.as_bytes())
        .unwrap();
    drop(child.stdin.take());
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The serve daemon over stdio: a fresh store verifies, a second daemon
/// sharing the store answers the same (alpha-renamed) transform from
/// cache without re-verifying.
#[test]
fn serve_stdio_caches_across_daemon_restarts() {
    let dir = temp_dir("serve-stdio");
    let store = dir.join("store.jsonl");
    let first = serve_stdio(
        &store,
        "{\"op\":\"verify\",\"id\":\"a\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}\n\
         {\"op\":\"shutdown\",\"id\":\"q\"}\n",
    );
    let verdict = first.lines().next().expect(&first);
    assert!(verdict.contains("\"verdict\":\"valid\""), "{first}");
    assert!(verdict.contains("\"cached\":false"), "{first}");
    assert!(first.contains("\"shutdown\":true"), "{first}");

    // Alpha-renamed resubmission to a new daemon over the same store.
    let second = serve_stdio(
        &store,
        "{\"op\":\"verify\",\"id\":\"b\",\"text\":\"%q = add %z, 0\\n=>\\n%q = %z\"}\n\
         {\"op\":\"stats\",\"id\":\"s\"}\n\
         {\"op\":\"shutdown\",\"id\":\"q\"}\n",
    );
    let verdict = second.lines().next().expect(&second);
    assert!(verdict.contains("\"verdict\":\"valid\""), "{second}");
    assert!(verdict.contains("\"cached\":true"), "{second}");
    let stats = second
        .lines()
        .find(|l| l.contains("\"stats\":true"))
        .expect(&second);
    assert!(stats.contains("\"hits\":1"), "{stats}");
    assert!(stats.contains("\"misses\":0"), "{stats}");
}

/// `alive compact` round-trip: a daemon fills a store, dead records are
/// manufactured by duplicating the sealed verdict line (a superseding
/// re-insertion under last-record-wins replay), compaction rewrites the
/// file live-only, and the next daemon serves the verdict warm from the
/// compacted store — nothing acknowledged was lost to the rewrite.
#[test]
fn compact_cli_drops_dead_records_and_keeps_the_store_warm() {
    let dir = temp_dir("compact-cli");
    let store = dir.join("store.jsonl");
    let request = "{\"op\":\"verify\",\"id\":\"a\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}\n\
         {\"op\":\"shutdown\",\"id\":\"q\"}\n";
    let first = serve_stdio(&store, request);
    assert!(first.contains("\"verdict\":\"valid\""), "{first}");

    // Header + one record; append two byte-identical copies of the
    // record. Replay sees 3 records, the last wins, 2 are dead.
    let text = std::fs::read_to_string(&store).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    let record = lines[1];
    std::fs::write(&store, format!("{text}{record}\n{record}\n")).unwrap();
    let bloated = std::fs::metadata(&store).unwrap().len();

    let (code, stdout, stderr) = run(&["compact", store.to_str().unwrap()]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("3 record(s) replayed"), "{stdout}");
    assert!(
        stdout.contains("kept 1 live record(s), dropped 2 superseded"),
        "{stdout}"
    );
    assert!(
        std::fs::metadata(&store).unwrap().len() < bloated,
        "compaction must shrink a store with dead records"
    );

    // A second pass finds nothing dead and leaves the file untouched.
    let before = std::fs::read(&store).unwrap();
    let (code, stdout, _) = run(&["compact", store.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("nothing dead"), "{stdout}");
    assert_eq!(std::fs::read(&store).unwrap(), before);

    // The compacted store still answers warm (alpha-renamed resubmission).
    let second = serve_stdio(
        &store,
        "{\"op\":\"verify\",\"id\":\"b\",\"text\":\"%q = add %z, 0\\n=>\\n%q = %z\"}\n\
         {\"op\":\"shutdown\",\"id\":\"q\"}\n",
    );
    let verdict = second.lines().next().expect(&second);
    assert!(verdict.contains("\"verdict\":\"valid\""), "{second}");
    assert!(verdict.contains("\"cached\":true"), "{second}");
}

/// `alive compact` argument and error handling: no path, a stray flag,
/// and a missing store are all failures, not silent no-ops.
#[test]
fn compact_rejects_bad_arguments_and_missing_stores() {
    for args in [&["compact"][..], &["compact", "a.jsonl", "b.jsonl"][..]] {
        let (code, _, stderr) = run(args);
        assert_eq!(code, 64, "args {args:?}: {stderr}");
    }
    let (code, _, stderr) = run(&["compact", "/nonexistent/store.jsonl"]);
    assert_ne!(code, 0, "{stderr}");
}

#[test]
fn serve_rejects_bad_arguments() {
    for args in [
        &["serve", "--store"][..],
        &["serve", "--epoch", "soon"][..],
        &["serve", "--workers"][..],
        &["serve", "--fast", "--exhaustive"][..],
        &["serve", "--stdio", "--socket", "/tmp/x.sock"][..],
        &["serve", "stray-positional"][..],
    ] {
        let (code, _, stderr) = run(args);
        assert_eq!(code, 64, "args {args:?}: {stderr}");
    }
}

/// `--dedupe`: canonically identical transforms are verified once; each
/// duplicate reports the representative's verdict.
#[test]
fn dedupe_collapses_identical_transforms() {
    let dir = temp_dir("dedupe");
    let f = dir.join("dups.opt");
    std::fs::write(
        &f,
        format!(
            "{EASY}\nName: alpha-twin\n%s = add %w, %w\n=>\n%s = shl %w, 1\n\
             Name: lone\n%r = add %x, 0\n=>\n%r = %x\n"
        ),
    )
    .unwrap();
    let (code, stdout, _) = run(&["--fast", "--dedupe", f.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(
        stdout.contains("dedupe: 3 transform(s) collapse to 2 canonical form(s)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("[deduped: canonically identical to double-to-shl]"),
        "{stdout}"
    );
    assert!(stdout.contains("Name: alpha-twin"), "{stdout}");
    assert!(stdout.contains("Name: lone"), "{stdout}");
    // Only the two representatives were verified and counted.
    assert!(stdout.contains("2 valid, 0 invalid"), "{stdout}");
    assert!(
        stdout.contains("dedupe: 1 duplicate(s) answered"),
        "{stdout}"
    );
}

/// Satellite 2: a `--resume` under different verifier settings must name
/// the fields that differ, not just refuse with a bare warning.
#[test]
fn resume_fingerprint_mismatch_names_the_changed_fields() {
    let dir = temp_dir("resume-mismatch");
    let f = dir.join("easy.opt");
    std::fs::write(&f, EASY).unwrap();
    let journal = dir.join("run.jsonl");
    let (code, _, _) = run(&[
        "--fast",
        "--journal",
        journal.to_str().unwrap(),
        f.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    // Resume under the default (non-fast) widths: nothing is reused, and
    // the warning says exactly which settings moved.
    let (code, stdout, stderr) = run(&["--resume", journal.to_str().unwrap(), f.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("different verifier settings"), "{stderr}");
    assert!(
        stderr.contains("widths: this run"),
        "mismatch report must name the changed field:\n{stderr}"
    );
    assert!(stdout.contains("resume: 0 verdict(s) reused"), "{stdout}");
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;

    #[test]
    fn bad_fault_spec_is_a_usage_error() {
        let dir = temp_dir("badspec");
        let f = dir.join("good.opt");
        std::fs::write(&f, EASY).unwrap();
        let out = alive_bin()
            .env("ALIVE_FAULT", "sat:explode@1")
            .args(["--fast", f.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(64));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("ALIVE_FAULT"), "{stderr}");
    }

    #[test]
    fn injected_panic_is_survived_and_reported() {
        let dir = temp_dir("panic");
        let f = dir.join("pair.opt");
        std::fs::write(&f, format!("{GOOD}\n{EASY}")).unwrap();
        let report = dir.join("report.json");
        let out = alive_bin()
            .env("ALIVE_FAULT", "sat:panic@1")
            .args([
                "--fast",
                "--keep-going",
                "--retries",
                "0",
                "--report",
                report.to_str().unwrap(),
                f.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("internal error"), "{stdout}");
        assert!(stdout.contains("1 valid, 0 invalid, 1 unknown"), "{stdout}");
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("internal error"), "{json}");
        assert!(json.contains("\"verdict\": \"valid\""), "{json}");
    }

    /// Satellite 4: when the watchdog detaches a worker stuck on a
    /// `hang-hard` fault (ignores budget AND cancellation), the trace must
    /// carry a `pool.detach` mark naming the hung worker and recording the
    /// task's elapsed time. The detached thread leaks and may still be
    /// mid-write when the process exits, so we grep the raw text instead
    /// of using the strict reader (a torn tail is legal here).
    #[test]
    fn watchdog_detach_is_recorded_in_the_trace() {
        let dir = temp_dir("detach-trace");
        let f = dir.join("corpus.opt");
        let mut corpus = format!("{GOOD}\n");
        for i in 0..4 {
            corpus.push_str(&EASY.replace("double-to-shl", &format!("easy-{i}")));
            corpus.push('\n');
        }
        std::fs::write(&f, corpus).unwrap();
        let trace = dir.join("trace.jsonl");
        let out = alive_bin()
            .env("ALIVE_FAULT", "sat:hang-hard@3")
            .args([
                "--fast",
                "--keep-going",
                "--jobs",
                "2",
                "--retries",
                "0",
                "--timeout",
                "1",
                "--grace",
                "1",
                "--trace",
                trace.to_str().unwrap(),
                f.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("hung"), "{stdout}");

        let text = std::fs::read_to_string(&trace).unwrap();
        let detach = text
            .lines()
            .find(|l| l.contains("\"name\":\"pool.detach\""))
            .unwrap_or_else(|| panic!("no pool.detach mark in trace:\n{text}"));
        assert!(detach.contains("\"ev\":\"mark\""), "{detach}");
        // The arg names the detached worker: "worker-<id> <transform>".
        assert!(detach.contains("\"arg\":\"worker-"), "{detach}");
        // The value is the task's elapsed time at detach: at least the
        // 1s timeout plus the 1s grace period, in microseconds.
        let value: u64 = detach
            .split("\"value\":")
            .nth(1)
            .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|digits| digits.parse().ok())
            .unwrap_or_else(|| panic!("unparseable value in: {detach}"));
        assert!(
            value >= 1_900_000,
            "elapsed {value}us is below timeout+grace"
        );
    }

    #[test]
    fn injected_hang_is_cut_down_by_the_timeout() {
        let dir = temp_dir("hang");
        let f = dir.join("pair.opt");
        std::fs::write(&f, format!("{GOOD}\n{EASY}")).unwrap();
        let out = alive_bin()
            .env("ALIVE_FAULT", "sat:hang@1")
            .args([
                "--fast",
                "--keep-going",
                "--retries",
                "0",
                "--timeout",
                "1",
                f.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("deadline"), "{stdout}");
        assert!(stdout.contains("1 valid, 0 invalid, 1 unknown"), "{stdout}");
    }

    /// Acceptance: an injected solver panic must be caught by the fuzzer,
    /// shrunk by the minimizer to at most 3 instructions, and persisted
    /// to the corpus under a stable `panic-*` signature.
    #[test]
    fn fuzz_shrinks_an_injected_panic_into_the_corpus() {
        let run_with_fault = |tag: &str| -> (String, String) {
            let dir = temp_dir(tag);
            let corpus = dir.join("corpus");
            let out = alive_bin()
                .env("ALIVE_FAULT", "sat:panic@1")
                .args([
                    "fuzz",
                    "--seed",
                    "3",
                    "--cases",
                    "6",
                    "--max-width",
                    "4",
                    "--corpus",
                    corpus.to_str().unwrap(),
                ])
                .output()
                .unwrap();
            assert_eq!(out.status.code(), Some(1), "{out:?}");
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            assert!(stdout.contains("FAILURE panic-"), "{stdout}");
            let mut entries: Vec<String> = std::fs::read_dir(&corpus)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            entries.sort();
            assert_eq!(entries.len(), 1, "{entries:?}");
            assert!(entries[0].starts_with("panic-"), "{entries:?}");
            let text = std::fs::read_to_string(corpus.join(&entries[0])).unwrap();
            (entries[0].clone(), text)
        };
        let (name_a, text) = run_with_fault("fuzz-fault-a");
        let t = alive::parse_transform(&text).unwrap_or_else(|e| panic!("{e}:\n{text}"));
        let insts = t.source.len() + t.target.len();
        assert!(
            insts <= 3,
            "reproducer not minimized ({insts} instructions):\n{text}"
        );
        // Stable signature: the same seed reproduces the same filename.
        let (name_b, _) = run_with_fault("fuzz-fault-b");
        assert_eq!(name_a, name_b);
    }
}
