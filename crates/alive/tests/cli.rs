//! Black-box tests of the `alive` binary: argument handling, exit codes,
//! and the `--proof` certificate pipeline.

use std::path::PathBuf;
use std::process::Command;

fn alive_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alive"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alive-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const GOOD: &str = "Name: not-add\n%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x\n";
const BAD: &str = "Name: wrong\n%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x\n";

#[test]
fn valid_file_exits_zero() {
    let dir = temp_dir("ok");
    let f = dir.join("good.opt");
    std::fs::write(&f, GOOD).unwrap();
    let out = alive_bin().arg("--fast").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn refinement_failure_exits_one() {
    let dir = temp_dir("bad");
    let f = dir.join("bad.opt");
    std::fs::write(&f, BAD).unwrap();
    let out = alive_bin().arg("--fast").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = alive_bin().arg("--definitely-not-a-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(64), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option"), "{err}");
}

#[test]
fn proof_flag_requires_argument() {
    let out = alive_bin().arg("--proof").output().unwrap();
    assert_eq!(out.status.code(), Some(64), "{out:?}");
}

#[test]
fn missing_input_is_a_usage_error() {
    let out = alive_bin().arg("--fast").output().unwrap();
    assert_eq!(out.status.code(), Some(64), "{out:?}");
}

#[test]
fn proof_flag_writes_checkable_certificates() {
    let dir = temp_dir("proof");
    let f = dir.join("good.opt");
    std::fs::write(&f, GOOD).unwrap();
    let proofs = dir.join("proofs");
    let out = alive_bin()
        .arg("--fast")
        .arg("--proof")
        .arg(&proofs)
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("certificates written and re-checked"),
        "{stdout}"
    );

    let mut certs = Vec::new();
    for entry in std::fs::read_dir(&proofs).unwrap() {
        let path = entry.unwrap().path();
        assert_eq!(path.extension().and_then(|e| e.to_str()), Some("cert"));
        certs.push(path);
    }
    // fast profile: 2 widths x 3 conditions.
    assert_eq!(certs.len(), 6, "{certs:?}");
    for path in certs {
        let text = std::fs::read_to_string(&path).unwrap();
        let cert = alive::Certificate::parse(&text).unwrap();
        cert.check().unwrap_or_else(|e| {
            panic!("{}: {e}", path.display());
        });
        assert_eq!(cert.meta.transform, "not-add");
    }
}
