//! The `alive` command-line tool: verify the transformations in `.opt`
//! files, like the original `alive.py`.
//!
//! ```text
//! usage: alive [OPTIONS] <file.opt>...
//!   --fast          verify at widths {4,8} only
//!   --exhaustive    verify at widths 1..=64 (slow, like the paper)
//!   --cpp           print generated C++ for verified transformations
//!   --infer         run nsw/nuw/exact attribute inference
//! ```

use alive::{generate_cpp, infer_attributes, parse_transforms, verify, Verdict, VerifyConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut config = VerifyConfig::default();
    let mut emit_cpp = false;
    let mut infer = false;
    for a in &args {
        match a.as_str() {
            "--fast" => config = VerifyConfig::fast(),
            "--exhaustive" => {
                config.typeck = alive::TypeckConfig::exhaustive();
            }
            "--cpp" => emit_cpp = true,
            "--infer" => infer = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: alive [--fast|--exhaustive] [--cpp] [--infer] <file.opt>..."
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("error: no input files (try --help)");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        let transforms = match parse_transforms(&text) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        for (i, t) in transforms.iter().enumerate() {
            let name = t
                .name
                .clone()
                .unwrap_or_else(|| format!("{path}#{}", i + 1));
            println!("----------------------------------------");
            println!("Name: {name}");
            match verify(t, &config) {
                Ok(Verdict::Valid { typings_checked }) => {
                    println!("Optimization is correct! ({typings_checked} type assignments)");
                    if infer {
                        match infer_attributes(t, &config) {
                            Ok(r) => {
                                if r.pre_weakened || r.post_strengthened {
                                    println!("Optimal attributes:\n{}", r.inferred);
                                }
                            }
                            Err(e) => println!("(attribute inference: {e})"),
                        }
                    }
                    if emit_cpp {
                        match generate_cpp(t) {
                            Ok(cpp) => println!("{cpp}"),
                            Err(e) => println!("(codegen: {e})"),
                        }
                    }
                }
                Ok(Verdict::Invalid(cex)) => {
                    println!("{cex}");
                    failures += 1;
                }
                Ok(Verdict::Unknown { reason }) => {
                    println!("Verification inconclusive: {reason}");
                    failures += 1;
                }
                Err(e) => {
                    println!("error: {e}");
                    failures += 1;
                }
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
