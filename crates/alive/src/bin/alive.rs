//! The `alive` command-line tool: verify the transformations in `.opt`
//! files, like the original `alive.py`.
//!
//! ```text
//! usage: alive [OPTIONS] <file.opt>...
//!        alive stats <trace.jsonl> [--top <n>] [--folded] [--request <rid>]
//!        alive fuzz [--seed <n>] [--cases <n>] [--max-width <bits>]
//!                   [--max-insts <n>] [--jobs <n>] [--timeout <secs>]
//!                   [--budget <conflicts>] [--corpus <dir>] [--no-minimize]
//!                   [--trace <file>] [--replay <dir>]
//!        alive serve [--store <file>] [--stdio | --socket <path>]
//!                    [--epoch <n>] [--workers <n>] [--fast|--exhaustive]
//!                    [--timeout <secs>] [--budget <conflicts>]
//!                    [--retries <n>] [--cert-dir <dir>] [--trace <file>]
//!                    [--metrics] [--slow-ms <ms>] [--max-connections <n>]
//!                    [--queue-depth <n>] [--request-timeout <secs>]
//!                    [--idle-timeout <secs>] [--drain-timeout <secs>]
//!        alive client --socket <path> [--max-retries <n>] [--seed <n>]
//!                     [--trace-requests] <file.opt>...
//!        alive top --socket <path> [--interval <secs>] [--count <n>]
//!        alive slowlog <store.slowlog> [--top <n>]
//!        alive scrub <store.jsonl>
//!        alive compact <store.jsonl>
//!        alive hash <file.opt>...
//!   --fast            verify at widths {4,8} only
//!   --exhaustive      verify at widths 1..=64 (slow, like the paper)
//!   --cpp             print generated C++ for verified transformations
//!   --infer           run nsw/nuw/exact attribute inference
//!   --proof <dir>     write refinement certificates to <dir> and re-check
//!                     each one with the independent proof checker
//!   --timeout <secs>  wall-clock limit per verification attempt
//!   --budget <n>      SAT conflict budget (retries escalate it)
//!   --retries <n>     escalating retries for budget-exhausted transforms
//!   --keep-going      continue past invalid transforms and errors
//!   --report <file>   write a JSON run report (schema alive-report/v3)
//!   --jobs <n>        verify transforms across <n> supervised workers
//!   --grace <secs>    watchdog grace before an unresponsive worker is
//!                     detached and its transform recorded as hung
//!   --journal <file>  append every completed outcome to a crash-safe
//!                     write-ahead journal (fsync'd before it is counted)
//!   --resume <file>   reuse verdicts from a previous run's journal, requeue
//!                     hung/unknown entries under an escalated budget, and
//!                     append new outcomes to the same file
//!   --trace <file>    stream structured trace events (spans, counters,
//!                     histogram samples) to <file> as CRC-sealed JSONL
//!                     (schema alive-trace/v1)
//!   --metrics         print an end-of-run metrics summary table
//!   --paranoid        re-check every verdict with the differential
//!                     oracle: certificates re-verified independently,
//!                     small-width verdicts brute-forced through the
//!                     concrete interpreter; any disagreement exits 1
//!   --dedupe          collapse transforms that share a canonical form
//!                     (alpha-renaming, commutative operand order) before
//!                     verification; each duplicate reports its
//!                     representative's verdict
//! ```
//!
//! `alive serve` runs verification as a long-running service: requests
//! arrive as line-delimited JSON (stdin/stdout with `--stdio`, a unix
//! socket with `--socket`), every transform is canonicalized, and a
//! persistent content-addressed verdict store answers repeats without
//! touching the solver. The daemon is crash-only: connection and queue
//! limits shed overload with structured `busy` refusals, a lock file
//! enforces one writer per store, SIGINT/SIGTERM drain in-flight work
//! before exiting, and idle connections are closed. See docs/SERVING.md
//! for the protocol and docs/ROBUSTNESS.md for the failure modes.
//!
//! `alive client` submits `.opt` files to a running daemon over its unix
//! socket, absorbing `busy` refusals and daemon restarts with jittered
//! exponential backoff. Exit code `69` means the daemon stayed
//! unavailable through every retry.
//!
//! `alive scrub` salvages a corrupted verdict store offline: every line
//! is CRC-checked independently, corrupt lines are quarantined (not
//! discarded) to `<store>.quarantine`, and the intact records are
//! rewritten as a fresh sealed store.
//!
//! `alive compact` rewrites a verdict store offline keeping only the live
//! (last-wins) record per canonical form — superseded re-verifications
//! stop costing replay time and disk forever. The rewrite is atomic
//! (tmp + fsync + rename + directory fsync) and preserves the header's
//! config fingerprint and epoch byte for byte; the daemon also compacts
//! automatically at open when at least half the replayed records are
//! dead.
//!
//! `alive top` polls a running daemon's `stats` wire op and refreshes a
//! single-screen operator view: request counters, poll-to-poll rates,
//! overload counters, and windowed latency percentiles per series.
//!
//! `alive slowlog` reads the daemon's slow-query log (`--slow-ms`) and
//! ranks the worst verifications per canonical hash.
//!
//! `alive hash` prints each transform's canonical content hash (16 hex
//! digits) — the identity the serve cache and `--dedupe` key on.
//!
//! `alive stats` replays a `--trace` file offline: per-phase self-time
//! breakdown, slowest transforms, counter totals, and (with `--folded`)
//! flamegraph-style folded stacks consumable by `flamegraph.pl`.
//!
//! `alive fuzz` generates seeded random transforms, verifies them through
//! the supervised pool, audits every verdict with the paranoid oracle,
//! shrinks failures with the delta-debugging minimizer, and persists
//! reproducers to a crash corpus (`--corpus`); `--replay <dir>` re-runs a
//! checked-in corpus as a regression suite instead.
//!
//! `--fast` and `--exhaustive` contradict each other and are rejected,
//! whatever their order. Without `--keep-going`, the first invalid
//! transform (or hard error) stops dispatch; the remainder is reported as
//! skipped. Ctrl-C (SIGINT) cancels cooperatively: in-flight solvers wind
//! down at their next budget poll, the pool drains, the partial report is
//! still written, and the exit code is 130. A **second** Ctrl-C while that
//! drain is in progress force-exits 130 immediately — a hung query cannot
//! make Ctrl-C appear dead.
//!
//! Exit codes: `0` all transformations verified, `1` at least one
//! refinement failure (or parse/IO error), `2` inconclusive only
//! (budget exhausted / unknown / hung), `64` usage error, `69` server
//! unavailable (`alive client` only), `130` interrupted.

use alive::fuzz::{paranoid_audit, replay_corpus, run_fuzz, FuzzConfig, OracleConfig};
use alive::ir::{canonical_hash, canonical_text};
use alive::serve::{serve_stdio, ServeConfig, ServeLimits, Server};
use alive::trace::{
    read_trace_lenient, JsonlSink, MetricsSink, TeeSink, TraceSink, TraceStats, Tracer,
};
use alive::{
    generate_cpp, infer_attributes, parse_transforms, Certificate, Transform, VerifyConfig,
};
use alive_verifier::{
    compact_store, config_description, config_fingerprint, fingerprint_diff, plan_resume,
    run_supervised, scrub_store, transform_key, DriverConfig, Journal, OutcomeKind, PoolConfig,
    RunReport, StoreOpen, TaskSpec, TransformOutcome,
};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: alive [--fast|--exhaustive] [--cpp] [--infer] [--proof <dir>] \
     [--timeout <secs>] [--budget <conflicts>] [--retries <n>] [--keep-going] \
     [--report <file.json>] [--jobs <n>] [--grace <secs>] \
     [--journal <file>] [--resume <file>] [--trace <file>] [--metrics] \
     [--paranoid] [--dedupe] <file.opt>...\n\
       alive stats <trace.jsonl> [--top <n>] [--folded] [--request <rid>]\n\
       alive fuzz [--seed <n>] [--cases <n>] [--max-width <bits>] [--max-insts <n>] \
     [--jobs <n>] [--timeout <secs>] [--budget <conflicts>] [--corpus <dir>] \
     [--no-minimize] [--trace <file>] [--replay <dir>]\n\
       alive serve [--store <file>] [--stdio | --socket <path>] [--epoch <n>] \
     [--workers <n>] [--fast|--exhaustive] [--timeout <secs>] [--budget <conflicts>] \
     [--retries <n>] [--cert-dir <dir>] [--trace <file>] [--metrics] [--slow-ms <ms>] \
     [--max-connections <n>] [--queue-depth <n>] [--request-timeout <secs>] \
     [--idle-timeout <secs>] [--drain-timeout <secs>]\n\
       alive client --socket <path> [--max-retries <n>] [--seed <n>] \
     [--trace-requests] <file.opt>...\n\
       alive top --socket <path> [--interval <secs>] [--count <n>]\n\
       alive slowlog <store.slowlog> [--top <n>]\n\
       alive scrub <store.jsonl>\n\
       alive compact <store.jsonl>\n\
       alive hash <file.opt>...";

/// Width-coverage mode; `--fast` and `--exhaustive` are order-independent
/// and mutually exclusive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WidthMode {
    Default,
    Fast,
    Exhaustive,
}

/// Counts SIGINTs; bridged to the driver's `CancelToken` by a watcher
/// thread (a signal handler must only touch async-signal-safe state, so it
/// cannot call into the token's `Arc` machinery directly). The first
/// signal cancels cooperatively; the second force-exits.
static SIGINT_COUNT: AtomicU32 = AtomicU32::new(0);

extern "C" fn on_sigint(_signum: i32) {
    SIGINT_COUNT.fetch_add(1, Ordering::SeqCst);
}

/// Installs the SIGINT handler via the C runtime (no libc crate needed —
/// `signal` is always available from the platform's C library).
fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// Installs the same counting handler for SIGINT *and* SIGTERM. The serve
/// daemon treats both as "drain and exit": process supervisors send
/// SIGTERM, terminals send SIGINT, and both deserve the graceful path.
fn install_stop_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_sigint);
        signal(SIGTERM, on_sigint);
    }
}

struct Options {
    files: Vec<String>,
    mode: WidthMode,
    emit_cpp: bool,
    infer: bool,
    proof_dir: Option<String>,
    timeout: Option<Duration>,
    budget: Option<u64>,
    retries: u32,
    keep_going: bool,
    report_path: Option<String>,
    jobs: usize,
    grace: Duration,
    journal_path: Option<String>,
    resume_path: Option<String>,
    trace_path: Option<String>,
    metrics: bool,
    paranoid: bool,
    dedupe: bool,
}

enum ParsedArgs {
    Run(Box<Options>),
    Exit(ExitCode),
}

fn usage_error(msg: &str) -> ParsedArgs {
    eprintln!("error: {msg}\n{USAGE}");
    ParsedArgs::Exit(ExitCode::from(64))
}

fn parse_args(args: &[String]) -> ParsedArgs {
    let mut opts = Options {
        files: Vec::new(),
        mode: WidthMode::Default,
        emit_cpp: false,
        infer: false,
        proof_dir: None,
        timeout: None,
        budget: None,
        retries: 1,
        keep_going: false,
        report_path: None,
        jobs: 1,
        grace: Duration::from_secs(2),
        journal_path: None,
        resume_path: None,
        trace_path: None,
        metrics: false,
        paranoid: false,
        dedupe: false,
    };
    let mut fast = false;
    let mut exhaustive = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--exhaustive" => exhaustive = true,
            "--cpp" => opts.emit_cpp = true,
            "--infer" => opts.infer = true,
            "--keep-going" => opts.keep_going = true,
            "--proof" => match it.next() {
                Some(dir) => opts.proof_dir = Some(dir.clone()),
                None => return usage_error("--proof requires a directory argument"),
            },
            "--report" => match it.next() {
                Some(f) => opts.report_path = Some(f.clone()),
                None => return usage_error("--report requires a file argument"),
            },
            "--journal" => match it.next() {
                Some(f) => opts.journal_path = Some(f.clone()),
                None => return usage_error("--journal requires a file argument"),
            },
            "--resume" => match it.next() {
                Some(f) => opts.resume_path = Some(f.clone()),
                None => return usage_error("--resume requires a journal file argument"),
            },
            "--trace" => match it.next() {
                Some(f) => opts.trace_path = Some(f.clone()),
                None => return usage_error("--trace requires a file argument"),
            },
            "--metrics" => opts.metrics = true,
            "--paranoid" => opts.paranoid = true,
            "--dedupe" => opts.dedupe = true,
            "--timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {
                    opts.timeout = Some(Duration::from_secs_f64(secs));
                }
                _ => return usage_error("--timeout requires a non-negative number of seconds"),
            },
            "--grace" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {
                    opts.grace = Duration::from_secs_f64(secs);
                }
                _ => return usage_error("--grace requires a non-negative number of seconds"),
            },
            "--budget" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => opts.budget = Some(n),
                None => return usage_error("--budget requires a conflict count"),
            },
            "--retries" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => opts.retries = n,
                None => return usage_error("--retries requires a count"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.jobs = n,
                _ => return usage_error("--jobs requires a worker count of at least 1"),
            },
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ParsedArgs::Exit(ExitCode::SUCCESS);
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"));
            }
            other => opts.files.push(other.to_string()),
        }
    }
    if fast && exhaustive {
        return usage_error("--fast and --exhaustive contradict each other; pick one");
    }
    opts.mode = match (fast, exhaustive) {
        (true, _) => WidthMode::Fast,
        (_, true) => WidthMode::Exhaustive,
        _ => WidthMode::Default,
    };
    if opts.resume_path.is_some() && opts.journal_path.is_some() {
        return usage_error("--resume already names the journal; drop --journal");
    }
    if opts.resume_path.is_some() && opts.proof_dir.is_some() {
        return usage_error(
            "--proof needs live verification; certificates are not journaled — \
             re-run without --resume to produce them",
        );
    }
    if opts.resume_path.is_some() && opts.paranoid {
        return usage_error(
            "--paranoid audits live verdicts; journal-replayed verdicts carry no \
             certificates — re-run without --resume to audit them",
        );
    }
    if let Some(trace) = &opts.trace_path {
        // The trace and the journal are both append-streamed JSONL files;
        // pointing them at one path would interleave the two schemas and
        // corrupt both. Catch it before either file is touched.
        if Some(trace) == opts.journal_path.as_ref() || Some(trace) == opts.resume_path.as_ref() {
            return usage_error(&format!(
                "--trace and --journal/--resume point at the same file ({trace}); \
                 the trace would corrupt the journal — use distinct paths"
            ));
        }
    }
    if opts.files.is_empty() {
        return usage_error("no input files (try --help)");
    }
    ParsedArgs::Run(Box::new(opts))
}

/// Installs the fault plan named by `ALIVE_FAULT` and the crash plan
/// named by `ALIVE_CRASH_AT` (fault-injection builds only). Returns
/// `false` when either spec fails to parse — the library layer ignores a
/// malformed spec, so binaries validate it here where exit 64 is
/// possible.
#[cfg(feature = "fault-injection")]
fn install_fault_plan_from_env() -> bool {
    let fault_ok = match std::env::var("ALIVE_FAULT") {
        Ok(spec) if !spec.is_empty() => match alive::sat::fault::FailurePlan::parse(&spec) {
            Ok(plan) => {
                alive::sat::fault::install(Some(plan));
                true
            }
            Err(e) => {
                eprintln!("error: bad ALIVE_FAULT spec: {e}");
                false
            }
        },
        _ => true,
    };
    let crash_ok = match std::env::var("ALIVE_CRASH_AT") {
        Ok(spec) if !spec.is_empty() => {
            match alive_verifier::durable::crash::CrashPlan::parse(&spec) {
                Ok(plan) => {
                    alive_verifier::durable::crash::install(Some(plan));
                    true
                }
                Err(e) => {
                    eprintln!("error: bad ALIVE_CRASH_AT spec: {e}");
                    false
                }
            }
        }
        _ => true,
    };
    fault_ok && crash_ok
}

/// Budget escalation factor applied to journal entries requeued by
/// `--resume` (they already exhausted the configured budget once).
const RESUME_ESCALATION: u32 = 8;

/// The `alive stats <trace.jsonl>` subcommand: replay a trace offline and
/// print the per-phase breakdown (or folded stacks for flamegraph.pl).
///
/// The trace is loaded leniently: an empty file, a missing header, or a
/// torn tail (the traced process was killed mid-write) degrades to the
/// readable prefix plus a stderr warning rather than an error — the
/// percentages are then explicitly marked as partial by that warning. CI
/// schema validation keeps using the strict reader.
fn run_stats(args: &[String]) -> ExitCode {
    const STATS_USAGE: &str =
        "usage: alive stats <trace.jsonl> [--top <n>] [--folded] [--request <rid>]";
    let mut file: Option<String> = None;
    let mut top = 10usize;
    let mut folded = false;
    let mut request: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => top = n,
                _ => {
                    eprintln!("error: --top requires a count of at least 1\n{STATS_USAGE}");
                    return ExitCode::from(64);
                }
            },
            "--folded" => folded = true,
            "--request" => match it.next() {
                Some(rid) => request = Some(rid.clone()),
                None => {
                    eprintln!("error: --request requires a request id\n{STATS_USAGE}");
                    return ExitCode::from(64);
                }
            },
            "-h" | "--help" => {
                eprintln!("{STATS_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option '{other}'\n{STATS_USAGE}");
                return ExitCode::from(64);
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    eprintln!("error: exactly one trace file expected\n{STATS_USAGE}");
                    return ExitCode::from(64);
                }
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: no trace file given\n{STATS_USAGE}");
        return ExitCode::from(64);
    };
    let events = match read_trace_lenient(Path::new(&file)) {
        Ok(loaded) => {
            if let Some(w) = &loaded.warning {
                eprintln!("warning: {file}: {w}");
            }
            loaded.events
        }
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // --request carves out one request's span subtree (a serve.request
    // span tagged with the id) before aggregating, so the phase table
    // is that request's own breakdown.
    let stats = match &request {
        Some(rid) => match TraceStats::for_request(&events, rid) {
            Ok(Some(s)) => {
                eprintln!("request {rid}:");
                s
            }
            Ok(None) => {
                eprintln!("error: {file}: no serve.request span with id '{rid}'");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {file}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match TraceStats::from_events(&events) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {file}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if folded {
        print!("{}", stats.folded_output());
    } else {
        print!("{}", stats.render(top));
    }
    ExitCode::SUCCESS
}

/// The `alive fuzz` subcommand: generate seeded random transforms, verify
/// them, audit every verdict with the paranoid oracle, shrink failures,
/// and persist reproducers. `--replay <dir>` re-runs a checked-in corpus
/// as a regression suite instead of generating fresh cases.
fn run_fuzz_cmd(args: &[String]) -> ExitCode {
    const FUZZ_USAGE: &str = "usage: alive fuzz [--seed <n>] [--cases <n>] \
         [--max-width <bits>] [--max-insts <n>] [--jobs <n>] [--timeout <secs>] \
         [--budget <conflicts>] [--corpus <dir>] [--no-minimize] [--trace <file>] \
         [--replay <dir>]";
    let fuzz_usage_error = |msg: &str| -> ExitCode {
        eprintln!("error: {msg}\n{FUZZ_USAGE}");
        ExitCode::from(64)
    };
    let mut cfg = FuzzConfig {
        cases: 500,
        ..FuzzConfig::default()
    };
    let mut replay: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => cfg.seed = n,
                None => return fuzz_usage_error("--seed requires an integer"),
            },
            "--cases" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => cfg.cases = n,
                None => return fuzz_usage_error("--cases requires a count"),
            },
            "--max-width" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if (1..=64).contains(&n) => cfg.gen.max_width = n,
                _ => return fuzz_usage_error("--max-width requires a bitwidth in 1..=64"),
            },
            "--max-insts" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.gen.max_insts = n,
                _ => return fuzz_usage_error("--max-insts requires a count of at least 1"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.jobs = n,
                _ => return fuzz_usage_error("--jobs requires a worker count of at least 1"),
            },
            "--timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {
                    cfg.timeout = Some(Duration::from_secs_f64(secs));
                }
                _ => {
                    return fuzz_usage_error("--timeout requires a non-negative number of seconds")
                }
            },
            "--budget" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => cfg.conflict_budget = Some(n),
                None => return fuzz_usage_error("--budget requires a conflict count"),
            },
            "--corpus" => match it.next() {
                Some(d) => cfg.corpus_dir = Some(d.into()),
                None => return fuzz_usage_error("--corpus requires a directory argument"),
            },
            "--replay" => match it.next() {
                Some(d) => replay = Some(d.clone()),
                None => return fuzz_usage_error("--replay requires a corpus directory argument"),
            },
            "--no-minimize" => cfg.minimize = false,
            "--trace" => match it.next() {
                Some(f) => trace_path = Some(f.clone()),
                None => return fuzz_usage_error("--trace requires a file argument"),
            },
            "-h" | "--help" => {
                eprintln!("{FUZZ_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fuzz_usage_error(&format!("unexpected argument '{other}'")),
        }
    }
    #[cfg(feature = "fault-injection")]
    if !install_fault_plan_from_env() {
        return ExitCode::from(64);
    }
    let mut jsonl_sink: Option<Arc<JsonlSink>> = None;
    let tracer = match &trace_path {
        Some(path) => match JsonlSink::create(Path::new(path)) {
            Ok(s) => {
                let s = Arc::new(s);
                jsonl_sink = Some(Arc::clone(&s));
                Tracer::new(Box::new(s))
            }
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Tracer::disabled(),
    };
    let report = if let Some(dir) = &replay {
        match replay_corpus(Path::new(dir), &cfg, &tracer) {
            Ok(r) => {
                println!("replay: {} reproducer(s) from {dir}", r.cases);
                r
            }
            Err(e) => {
                eprintln!("error: {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "fuzz: seed {}, {} cases, widths 1..={}, jobs {}",
            cfg.seed, cfg.cases, cfg.gen.max_width, cfg.jobs
        );
        run_fuzz(&cfg, &tracer)
    };
    for f in &report.failures {
        println!("----------------------------------------");
        println!(
            "FAILURE {} (case {}): {}",
            f.signature.slug(),
            f.index,
            f.detail
        );
        let repro = f.minimized.as_ref().unwrap_or(&f.transform);
        let text = repro.to_string();
        print!("{text}");
        if !text.ends_with('\n') {
            println!();
        }
        if f.shrink_steps > 0 {
            println!("(minimized in {} accepted shrink steps)", f.shrink_steps);
        }
        if let Some(p) = &f.saved {
            println!("reproducer saved: {}", p.display());
        }
    }
    println!("----------------------------------------");
    println!(
        "{} case(s): {} valid, {} invalid, {} unknown, {} errors, {} failure signature(s)",
        report.cases,
        report.valid,
        report.invalid,
        report.unknown,
        report.errors,
        report.failures.len(),
    );
    println!(
        "paranoid: {} concrete point(s) checked, {} audit(s) skipped",
        report.points_checked, report.audits_skipped
    );
    println!(
        "digest: {:016x} ({:.1}s)",
        report.digest,
        report.wall.as_secs_f64()
    );
    tracer.flush();
    if let Some(sink) = &jsonl_sink {
        if sink.had_error() {
            eprintln!("warning: trace writes failed; the trace file is incomplete");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::from(report.exit_code())
}

/// The `alive hash` subcommand: print each transform's canonical content
/// hash — the identity the serve cache and `--dedupe` key on. Alpha
/// renamings and commuted commutative operands print the same hash.
fn run_hash(args: &[String]) -> ExitCode {
    const HASH_USAGE: &str = "usage: alive hash <file.opt>...";
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "-h" | "--help" => {
                eprintln!("{HASH_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option '{other}'\n{HASH_USAGE}");
                return ExitCode::from(64);
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("error: no input files\n{HASH_USAGE}");
        return ExitCode::from(64);
    }
    let mut failures = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        match parse_transforms(&text) {
            Ok(ts) => {
                for (i, t) in ts.into_iter().enumerate() {
                    let name = t
                        .name
                        .clone()
                        .unwrap_or_else(|| format!("{path}#{}", i + 1));
                    println!("{:016x}  {name}", canonical_hash(&t));
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `alive serve` subcommand: a verification daemon with a persistent
/// content-addressed verdict cache. All diagnostics go to stderr — in
/// `--stdio` mode stdout is the protocol channel.
fn run_serve(args: &[String]) -> ExitCode {
    const SERVE_USAGE: &str = "usage: alive serve [--store <file>] [--stdio | --socket <path>] \
         [--epoch <n>] [--workers <n>] [--fast|--exhaustive] [--timeout <secs>] \
         [--budget <conflicts>] [--retries <n>] [--cert-dir <dir>] [--trace <file>] \
         [--metrics] [--slow-ms <ms>] [--max-connections <n>] [--queue-depth <n>] \
         [--request-timeout <secs>] [--idle-timeout <secs>] [--drain-timeout <secs>]";
    let serve_usage_error = |msg: &str| -> ExitCode {
        eprintln!("error: {msg}\n{SERVE_USAGE}");
        ExitCode::from(64)
    };
    let mut store = "alive-store.jsonl".to_string();
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut epoch = 0u64;
    let mut workers = 0usize;
    let mut fast = false;
    let mut exhaustive = false;
    let mut timeout: Option<Duration> = None;
    let mut budget: Option<u64> = None;
    let mut retries = 1u32;
    let mut cert_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    let mut slow_ms: Option<u64> = None;
    let mut limits = ServeLimits::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => match it.next() {
                Some(f) => store = f.clone(),
                None => return serve_usage_error("--store requires a file argument"),
            },
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => return serve_usage_error("--socket requires a path argument"),
            },
            "--stdio" => stdio = true,
            "--epoch" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => epoch = n,
                None => return serve_usage_error("--epoch requires an integer"),
            },
            "--workers" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => workers = n,
                None => return serve_usage_error("--workers requires a count"),
            },
            "--fast" => fast = true,
            "--exhaustive" => exhaustive = true,
            "--timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {
                    timeout = Some(Duration::from_secs_f64(secs));
                }
                _ => {
                    return serve_usage_error("--timeout requires a non-negative number of seconds")
                }
            },
            "--budget" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => budget = Some(n),
                None => return serve_usage_error("--budget requires a conflict count"),
            },
            "--retries" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => retries = n,
                None => return serve_usage_error("--retries requires a count"),
            },
            "--cert-dir" => match it.next() {
                Some(d) => cert_dir = Some(d.clone()),
                None => return serve_usage_error("--cert-dir requires a directory argument"),
            },
            "--trace" => match it.next() {
                Some(f) => trace_path = Some(f.clone()),
                None => return serve_usage_error("--trace requires a file argument"),
            },
            "--metrics" => metrics = true,
            "--slow-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => slow_ms = Some(n),
                None => {
                    return serve_usage_error(
                        "--slow-ms requires a millisecond threshold (0 logs every miss)",
                    )
                }
            },
            "--max-connections" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => limits.max_connections = n,
                None => return serve_usage_error("--max-connections requires a count (0 = off)"),
            },
            "--queue-depth" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => limits.queue_depth = n,
                None => return serve_usage_error("--queue-depth requires a count (0 = off)"),
            },
            "--request-timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {
                    limits.request_timeout = if secs == 0.0 {
                        None
                    } else {
                        Some(Duration::from_secs_f64(secs))
                    };
                }
                _ => {
                    return serve_usage_error(
                        "--request-timeout requires a non-negative number of seconds (0 = off)",
                    )
                }
            },
            "--idle-timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {
                    limits.idle_timeout = Duration::from_secs_f64(secs);
                }
                _ => {
                    return serve_usage_error(
                        "--idle-timeout requires a non-negative number of seconds (0 = off)",
                    )
                }
            },
            "--drain-timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {
                    limits.drain_timeout = Duration::from_secs_f64(secs);
                }
                _ => {
                    return serve_usage_error(
                        "--drain-timeout requires a non-negative number of seconds",
                    )
                }
            },
            "-h" | "--help" => {
                eprintln!("{SERVE_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return serve_usage_error(&format!("unexpected argument '{other}'")),
        }
    }
    if fast && exhaustive {
        return serve_usage_error("--fast and --exhaustive contradict each other; pick one");
    }
    if stdio && socket.is_some() {
        return serve_usage_error("--stdio and --socket are alternative transports; pick one");
    }
    if !stdio && socket.is_none() {
        stdio = true; // the portable default
    }

    // The daemon honours ALIVE_FAULT too: `store:*` and `serve:*` sites
    // live on this side of the wire.
    #[cfg(feature = "fault-injection")]
    if !install_fault_plan_from_env() {
        return ExitCode::from(64);
    }

    // Tracer: JSONL stream, in-process metrics, both, or disabled.
    let mut jsonl_sink: Option<Arc<JsonlSink>> = None;
    let mut metrics_sink: Option<Arc<MetricsSink>> = None;
    let tracer = {
        let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
        if let Some(path) = &trace_path {
            match JsonlSink::create(Path::new(path)) {
                Ok(s) => {
                    let s = Arc::new(s);
                    jsonl_sink = Some(Arc::clone(&s));
                    sinks.push(Box::new(s));
                }
                Err(e) => {
                    eprintln!("error: cannot create trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if metrics {
            let s = Arc::new(MetricsSink::new());
            metrics_sink = Some(Arc::clone(&s));
            sinks.push(Box::new(s));
        }
        match sinks.len() {
            0 => Tracer::disabled(),
            1 => Tracer::new(sinks.pop().expect("one sink")),
            _ => Tracer::new(Box::new(TeeSink::new(sinks))),
        }
    };

    let verify_config = if fast {
        VerifyConfig::fast()
    } else if exhaustive {
        VerifyConfig {
            typeck: alive::TypeckConfig::exhaustive(),
            ..VerifyConfig::default()
        }
    } else {
        VerifyConfig::default()
    };
    let mut traced_verify = verify_config;
    traced_verify.ef.tracer = tracer.clone();
    let config = ServeConfig {
        driver: DriverConfig {
            verify: traced_verify,
            timeout,
            conflict_budget: budget,
            max_retries: retries,
            with_certificates: cert_dir.is_some(),
            ..DriverConfig::default()
        },
        store_path: store.clone().into(),
        epoch,
        workers,
        cert_dir: cert_dir.map(Into::into),
        tracer: tracer.clone(),
        limits,
        slow_ms,
    };
    let (server, how) = match Server::open(config) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: cannot open verdict store {store}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match how {
        StoreOpen::Created => eprintln!("serve: fresh store {store} (epoch {epoch})"),
        StoreOpen::Loaded { records, discarded } => {
            eprintln!("serve: loaded {records} cached verdict(s) from {store}");
            if discarded > 0 {
                eprintln!("serve: discarded {discarded} torn/corrupt store line(s)");
            }
        }
        StoreOpen::Evicted {
            prior_config,
            prior_epoch,
        } => eprintln!(
            "serve: evicted stale store (was config {prior_config:016x}, epoch \
             {prior_epoch}); rotated to {store}.evicted.{prior_epoch}"
        ),
    }
    if let Some(c) = server.compaction() {
        eprintln!(
            "serve: compacted store: {} record(s) replayed, {} live, {} dead \
             dropped ({} -> {} bytes)",
            c.replayed, c.live, c.dropped, c.bytes_before, c.bytes_after
        );
    }

    {
        let l = server.limits();
        let fmt_count = |n: usize| -> String {
            if n == 0 {
                "unlimited".to_string()
            } else {
                n.to_string()
            }
        };
        let fmt_secs = |d: Duration| -> String {
            if d.is_zero() {
                "off".to_string()
            } else {
                format!("{}s", d.as_secs_f64())
            }
        };
        eprintln!(
            "serve: limits: {} connection(s), queue depth {}, request timeout {}, \
             idle timeout {}, drain timeout {}",
            fmt_count(l.max_connections),
            fmt_count(l.queue_depth),
            l.request_timeout.map_or("off".to_string(), fmt_secs),
            fmt_secs(l.idle_timeout),
            fmt_secs(l.drain_timeout),
        );
        let tel = server.telemetry();
        eprintln!(
            "serve: telemetry: {}s sliding window; slow-query log {}",
            tel.window_ms / 1_000,
            match slow_ms {
                Some(ms) => format!("{store}.slowlog (threshold {ms} ms)"),
                None => "off".to_string(),
            }
        );
    }

    // First SIGINT/SIGTERM begins the drain: stop accepting, finish (or
    // cancel) in-flight work, close the socket. A second signal while the
    // drain runs force-exits — a hung solver cannot wedge shutdown.
    install_stop_handlers();
    {
        let watched = server.clone();
        std::thread::spawn(move || {
            let mut draining = false;
            loop {
                let n = SIGINT_COUNT.load(Ordering::SeqCst);
                if n >= 2 {
                    eprintln!("second signal: exiting immediately");
                    std::process::exit(130);
                }
                if n >= 1 && !draining {
                    eprintln!("signal: draining connections (again to force exit)");
                    watched.begin_stop();
                    draining = true;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
    }

    let served = if stdio {
        serve_stdio(&server)
    } else {
        #[cfg(unix)]
        {
            let path = socket.expect("socket transport implies a path");
            eprintln!("serve: listening on {path}");
            alive::serve::serve_unix(&server, Path::new(&path))
        }
        #[cfg(not(unix))]
        {
            eprintln!("error: --socket requires a unix platform; use --stdio");
            return ExitCode::from(64);
        }
    };
    let s = server.stats();
    eprintln!(
        "serve: {} hit(s), {} miss(es), {} join(s), {} error(s), {} stored",
        s.hits, s.misses, s.joins, s.errors, s.stored
    );
    eprintln!(
        "serve: {} busy refusal(s), {} shed connection(s), {} idle close(s); \
         up {:.1}s",
        s.busy,
        s.shed,
        s.idle_closed,
        s.uptime_ms as f64 / 1000.0
    );
    {
        let tel = server.telemetry();
        let fmt = |series: &alive::trace::SeriesSnapshot| -> String {
            if series.count == 0 {
                "none".to_string()
            } else {
                format!(
                    "p50 {}µs p90 {}µs p99 {}µs max {}µs (n={})",
                    series.p50_us, series.p90_us, series.p99_us, series.max_us, series.count
                )
            }
        };
        eprintln!("serve: hit latency: {}", fmt(&tel.hit));
        eprintln!("serve: miss latency: {}", fmt(&tel.miss));
        if tel.join.count > 0 {
            eprintln!("serve: join latency: {}", fmt(&tel.join));
        }
    }
    tracer.flush();
    if let Some(sink) = &metrics_sink {
        eprint!("{}", sink.render());
    }
    let mut failed = false;
    if let Some(sink) = &jsonl_sink {
        if sink.had_error() {
            eprintln!("warning: trace writes failed; the trace file is incomplete");
            failed = true;
        }
    }
    if let Err(e) = served {
        eprintln!("error: serve transport failed: {e}");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `alive scrub` subcommand: offline salvage of a corrupted verdict
/// store. Corrupt lines are quarantined, never discarded; the intact
/// records are rewritten as a fresh sealed store the daemon will load.
fn run_scrub(args: &[String]) -> ExitCode {
    const SCRUB_USAGE: &str = "usage: alive scrub <store.jsonl>";
    let mut stores = Vec::new();
    for a in args {
        match a.as_str() {
            "-h" | "--help" => {
                eprintln!("{SCRUB_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option '{other}'\n{SCRUB_USAGE}");
                return ExitCode::from(64);
            }
            other => stores.push(other.to_string()),
        }
    }
    if stores.len() != 1 {
        eprintln!("error: scrub takes exactly one store file\n{SCRUB_USAGE}");
        return ExitCode::from(64);
    }
    let path = &stores[0];
    match scrub_store(Path::new(path)) {
        Ok(report) => {
            println!(
                "scrub: {path}: {} record line(s) examined (config {:016x}, epoch {})",
                report.examined, report.fingerprint, report.epoch
            );
            println!(
                "scrub: {} salvaged ({} distinct transform(s)), {} quarantined",
                report.salvaged, report.distinct, report.quarantined
            );
            match report.quarantine {
                Some(q) => println!("scrub: corrupt lines preserved in {}", q.display()),
                None => println!("scrub: store was already clean; left untouched"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot scrub {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `alive compact` subcommand: offline rewrite of a verdict store
/// keeping only the live record per canonical form. Refuses a store held
/// by a live daemon (the daemon compacts its own store at open).
fn run_compact(args: &[String]) -> ExitCode {
    const COMPACT_USAGE: &str = "usage: alive compact <store.jsonl>";
    let mut stores = Vec::new();
    for a in args {
        match a.as_str() {
            "-h" | "--help" => {
                eprintln!("{COMPACT_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option '{other}'\n{COMPACT_USAGE}");
                return ExitCode::from(64);
            }
            other => stores.push(other.to_string()),
        }
    }
    if stores.len() != 1 {
        eprintln!("error: compact takes exactly one store file\n{COMPACT_USAGE}");
        return ExitCode::from(64);
    }
    let path = &stores[0];
    match compact_store(Path::new(path)) {
        Ok(report) => {
            println!(
                "compact: {path}: {} record(s) replayed (config {:016x}, epoch {})",
                report.replayed, report.fingerprint, report.epoch
            );
            if report.dropped == 0 {
                println!("compact: nothing dead; store left untouched");
            } else {
                println!(
                    "compact: kept {} live record(s), dropped {} superseded \
                     ({} -> {} bytes)",
                    report.live, report.dropped, report.bytes_before, report.bytes_after
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot compact {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `alive client` subcommand: submit `.opt` files to a running serve
/// daemon over its unix socket, retrying through `busy` refusals and
/// daemon restarts with jittered exponential backoff.
///
/// Exit codes follow the verify path (`0` valid, `1` invalid/error, `2`
/// inconclusive) plus `69` when the daemon stayed unavailable through
/// every retry.
#[cfg(unix)]
fn run_client(args: &[String]) -> ExitCode {
    use alive::serve::client::{Client, ClientConfig, ClientError};
    const CLIENT_USAGE: &str = "usage: alive client --socket <path> [--max-retries <n>] \
         [--seed <n>] [--trace-requests] <file.opt>...";
    let client_usage_error = |msg: &str| -> ExitCode {
        eprintln!("error: {msg}\n{CLIENT_USAGE}");
        ExitCode::from(64)
    };
    let mut config = ClientConfig::default();
    let mut socket: Option<String> = None;
    let mut trace_requests = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => return client_usage_error("--socket requires a path argument"),
            },
            "--trace-requests" => trace_requests = true,
            "--max-retries" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => config.max_retries = n,
                None => return client_usage_error("--max-retries requires a count"),
            },
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config.seed = n,
                None => return client_usage_error("--seed requires an integer"),
            },
            "-h" | "--help" => {
                eprintln!("{CLIENT_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return client_usage_error(&format!("unknown option '{other}'"))
            }
            other => files.push(other.to_string()),
        }
    }
    let Some(socket) = socket else {
        return client_usage_error("--socket is required");
    };
    if files.is_empty() {
        return client_usage_error("no input files");
    }
    config.socket = socket.into();
    let mut client = Client::new(config);
    let mut invalid = 0usize;
    let mut inconclusive = 0usize;
    let mut errors = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                errors += 1;
                continue;
            }
        };
        match client.batch(&text) {
            Ok(verdicts) => {
                for v in verdicts {
                    println!(
                        "{}  {}  {}{}{}",
                        v.hash,
                        v.verdict,
                        v.name,
                        if v.cached { " [cached]" } else { "" },
                        if v.coalesced { " [coalesced]" } else { "" },
                    );
                    if trace_requests {
                        // Server-side timing block, keyed by the request
                        // id traceable in the daemon's --trace file.
                        println!(
                            "    rid {}: wall {}µs = canon {}µs + lookup {}µs + queue {}µs \
                             + verify {}µs",
                            v.rid, v.wall_us, v.canon_us, v.lookup_us, v.queue_us, v.verify_us
                        );
                    }
                    if !v.reason.is_empty() && v.verdict != "valid" {
                        for line in v.reason.lines() {
                            println!("    {line}");
                        }
                    }
                    match v.verdict.as_str() {
                        "valid" => {}
                        "invalid" => invalid += 1,
                        "unknown" | "hung" => inconclusive += 1,
                        _ => errors += 1,
                    }
                }
            }
            Err(ClientError::Request(m)) => {
                eprintln!("{path}: {m}");
                errors += 1;
            }
            Err(ClientError::Unavailable(m)) => {
                eprintln!(
                    "error: {m} ({} retry(ies), {} busy refusal(s))",
                    client.retries(),
                    client.busy_seen()
                );
                return ExitCode::from(69);
            }
        }
    }
    eprintln!(
        "client: {} attempt(s), {} retry(ies), {} busy refusal(s), {} ms backing off",
        client.attempts(),
        client.retries(),
        client.busy_seen(),
        client.backoff_total_ms()
    );
    if invalid > 0 || errors > 0 {
        ExitCode::FAILURE
    } else if inconclusive > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(not(unix))]
fn run_client(_args: &[String]) -> ExitCode {
    eprintln!("error: alive client needs unix sockets; use `alive serve --stdio` instead");
    ExitCode::from(64)
}

/// The `alive slowlog` subcommand: read a daemon's slow-query log and
/// rank the worst offenders (per canonical hash, slowest verification
/// first). Torn tail records are skipped with a warning, not fatal —
/// the log is appended by a live daemon.
fn run_slowlog(args: &[String]) -> ExitCode {
    const SLOWLOG_USAGE: &str = "usage: alive slowlog <store.slowlog> [--top <n>]";
    let mut file: Option<String> = None;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => top = n,
                _ => {
                    eprintln!("error: --top requires a count of at least 1\n{SLOWLOG_USAGE}");
                    return ExitCode::from(64);
                }
            },
            "-h" | "--help" => {
                eprintln!("{SLOWLOG_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option '{other}'\n{SLOWLOG_USAGE}");
                return ExitCode::from(64);
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    eprintln!("error: exactly one slowlog file expected\n{SLOWLOG_USAGE}");
                    return ExitCode::from(64);
                }
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: no slowlog file given\n{SLOWLOG_USAGE}");
        return ExitCode::from(64);
    };
    let (records, skipped) = match alive::serve::slowlog::read_slowlog(Path::new(&file)) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if skipped > 0 {
        eprintln!("warning: {file}: {skipped} torn/corrupt record(s) skipped");
    }
    if records.is_empty() {
        println!("slowlog: no records");
        return ExitCode::SUCCESS;
    }
    let offenders = alive::serve::slowlog::rank(&records);
    println!(
        "{} slow verification(s) across {} distinct transform(s)",
        records.len(),
        offenders.len()
    );
    println!(
        "{:<16}  {:>5}  {:>8}  {:>9}  {:>9}  {:<8}  name",
        "hash", "count", "max ms", "total ms", "conflicts", "verdict"
    );
    for o in offenders.iter().take(top) {
        println!(
            "{:<16}  {:>5}  {:>8}  {:>9}  {:>9}  {:<8}  {}",
            o.hash, o.count, o.max_ms, o.total_ms, o.conflicts, o.verdict, o.name
        );
    }
    if offenders.len() > top {
        println!("... and {} more (raise --top)", offenders.len() - top);
    }
    ExitCode::SUCCESS
}

/// The `alive top` subcommand: a live operator view over a daemon's
/// `stats` wire op — lifetime counters, windowed rates, and latency
/// percentiles, refreshed in place until interrupted.
#[cfg(unix)]
fn run_top(args: &[String]) -> ExitCode {
    use alive::serve::client::{Client, ClientConfig};
    use std::io::IsTerminal;
    const TOP_USAGE: &str = "usage: alive top --socket <path> [--interval <secs>] [--count <n>]";
    let top_usage_error = |msg: &str| -> ExitCode {
        eprintln!("error: {msg}\n{TOP_USAGE}");
        ExitCode::from(64)
    };
    let mut socket: Option<String> = None;
    let mut interval = Duration::from_secs(2);
    let mut count = 0u64; // 0 = until interrupted
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => return top_usage_error("--socket requires a path argument"),
            },
            "--interval" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs.is_finite() && secs > 0.0 => {
                    interval = Duration::from_secs_f64(secs);
                }
                _ => return top_usage_error("--interval requires a positive number of seconds"),
            },
            "--count" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => count = n,
                None => return top_usage_error("--count requires an integer (0 = forever)"),
            },
            "-h" | "--help" => {
                eprintln!("{TOP_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return top_usage_error(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(socket) = socket else {
        return top_usage_error("--socket is required");
    };
    let mut client = Client::new(ClientConfig {
        socket: socket.clone().into(),
        max_retries: 2,
        ..ClientConfig::default()
    });
    let live_screen = std::io::stdout().is_terminal() && count != 1;
    let mut prev: Option<(u64, std::time::Instant)> = None;
    let mut polls = 0u64;
    loop {
        let s = match client.stats() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(69);
            }
        };
        let now = std::time::Instant::now();
        let total = s.hits + s.misses + s.joins;
        // Poll-to-poll request rate; the first screen has no baseline.
        let rate = prev
            .map(|(before, t)| {
                total.saturating_sub(before) as f64 / now.duration_since(t).as_secs_f64().max(1e-9)
            })
            .unwrap_or(0.0);
        prev = Some((total, now));
        if live_screen {
            // Clear and home: a single-screen refresh, not a scroll.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "alive top — {socket} — proto {} — up {:.1}s",
            s.proto,
            s.uptime_ms as f64 / 1000.0
        );
        println!(
            "requests: {} hit(s), {} miss(es), {} join(s)  ({rate:.1}/s since last poll)",
            s.hits, s.misses, s.joins
        );
        println!(
            "overload: {} busy, {} shed, {} idle-closed, {} error(s); {} in flight, \
             {} connection(s)",
            s.busy, s.shed, s.idle_closed, s.errors, s.inflight, s.connections
        );
        println!("store:    {} record(s)", s.stored);
        match &s.telemetry {
            Some(t) => {
                println!("latency µs (lifetime; window {}s):", t.window_ms / 1_000);
                println!(
                    "  {:<11} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>10}",
                    "series", "count", "p50", "p90", "p99", "max", "in win", "win rate/s"
                );
                for (name, l) in [
                    ("hit", &t.hit),
                    ("miss", &t.miss),
                    ("join", &t.join),
                    ("queue_wait", &t.queue_wait),
                    ("canon", &t.canon),
                    ("append", &t.append),
                ] {
                    println!(
                        "  {:<11} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}.{:03}",
                        name,
                        l.count,
                        l.p50_us,
                        l.p90_us,
                        l.p99_us,
                        l.max_us,
                        l.window,
                        l.rate_x1000 / 1000,
                        l.rate_x1000 % 1000
                    );
                }
            }
            None => println!("latency: daemon predates proto 2; no telemetry block"),
        }
        polls += 1;
        if count != 0 && polls >= count {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

#[cfg(not(unix))]
fn run_top(_args: &[String]) -> ExitCode {
    eprintln!("error: alive top needs unix sockets");
    ExitCode::from(64)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stats") {
        return run_stats(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return run_fuzz_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("hash") {
        return run_hash(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("scrub") {
        return run_scrub(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("compact") {
        return run_compact(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("client") {
        return run_client(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return run_top(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("slowlog") {
        return run_slowlog(&args[1..]);
    }
    let opts = match parse_args(&args) {
        ParsedArgs::Run(o) => o,
        ParsedArgs::Exit(code) => return code,
    };

    #[cfg(feature = "fault-injection")]
    if !install_fault_plan_from_env() {
        return ExitCode::from(64);
    }

    if let Some(dir) = &opts.proof_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create proof directory {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Assemble the tracer: a JSONL stream (--trace), an in-process metrics
    // aggregator (--metrics), both behind one tee, or the disabled tracer
    // whose per-site cost is a single branch.
    let mut jsonl_sink: Option<Arc<JsonlSink>> = None;
    let mut metrics_sink: Option<Arc<MetricsSink>> = None;
    let tracer = {
        let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
        if let Some(path) = &opts.trace_path {
            match JsonlSink::create(Path::new(path)) {
                Ok(s) => {
                    let s = Arc::new(s);
                    jsonl_sink = Some(Arc::clone(&s));
                    sinks.push(Box::new(s));
                }
                Err(e) => {
                    eprintln!("error: cannot create trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if opts.metrics {
            let s = Arc::new(MetricsSink::new());
            metrics_sink = Some(Arc::clone(&s));
            sinks.push(Box::new(s));
        }
        match sinks.len() {
            0 => Tracer::disabled(),
            1 => Tracer::new(sinks.pop().expect("one sink")),
            _ => Tracer::new(Box::new(TeeSink::new(sinks))),
        }
    };

    // Parse every file up front so the driver sees one flat corpus.
    let mut transforms: Vec<(String, Transform)> = Vec::new();
    let mut parse_failures = 0usize;
    for path in &opts.files {
        let _parse_span = tracer.span_with("parse", || path.clone());
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                parse_failures += 1;
                continue;
            }
        };
        match parse_transforms(&text) {
            Ok(ts) => {
                for (i, t) in ts.into_iter().enumerate() {
                    let name = t
                        .name
                        .clone()
                        .unwrap_or_else(|| format!("{path}#{}", i + 1));
                    transforms.push((name, t));
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                parse_failures += 1;
            }
        }
    }

    // --dedupe: collapse transforms sharing a canonical form (alpha
    // renaming, commutative operand order). One representative is
    // verified; each duplicate reports the representative's verdict.
    let mut dup_names: Vec<Vec<String>> = Vec::new();
    let mut duplicates = 0usize;
    if opts.dedupe {
        let mut rep_of: HashMap<String, usize> = HashMap::new();
        let mut kept: Vec<(String, Transform)> = Vec::new();
        for (name, t) in transforms.drain(..) {
            match rep_of.entry(canonical_text(&t)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    dup_names[*e.get()].push(name);
                    duplicates += 1;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(kept.len());
                    kept.push((name, t));
                    dup_names.push(Vec::new());
                }
            }
        }
        transforms = kept;
        println!(
            "dedupe: {} transform(s) collapse to {} canonical form(s)",
            transforms.len() + duplicates,
            transforms.len(),
        );
    }

    // Covers config assembly, corpus fingerprinting, and journal/resume
    // planning — closed before the driver starts so its spans don't nest.
    let setup_span = tracer.span("setup");
    let verify_config = match opts.mode {
        WidthMode::Fast => VerifyConfig::fast(),
        WidthMode::Exhaustive => VerifyConfig {
            typeck: alive::TypeckConfig::exhaustive(),
            ..VerifyConfig::default()
        },
        WidthMode::Default => VerifyConfig::default(),
    };
    // The tracer rides inside the CEGIS config: one installation reaches
    // the driver phases, the bit-blaster, and the SAT solver cores.
    let mut traced_verify = verify_config.clone();
    traced_verify.ef.tracer = tracer.clone();
    let driver = DriverConfig {
        verify: traced_verify,
        timeout: opts.timeout,
        conflict_budget: opts.budget,
        keep_going: opts.keep_going,
        max_retries: opts.retries,
        with_certificates: opts.proof_dir.is_some() || opts.paranoid,
        ..DriverConfig::default()
    };
    let pool = PoolConfig {
        jobs: opts.jobs,
        grace: opts.grace,
    };

    // Journal keys tie each verdict to the transform text *and* the
    // verifier settings, so a journal never short-circuits a different
    // corpus or config.
    let fingerprint = config_fingerprint(&verify_config);
    let keys: Vec<String> = transforms
        .iter()
        .map(|(_, t)| transform_key(t, fingerprint))
        .collect();

    // Partition the corpus: replayed verdicts, requeued stragglers, fresh
    // work — and open the write-ahead journal.
    let mut preset: Vec<(usize, TransformOutcome)> = Vec::new();
    let mut tasks: Vec<TaskSpec> = Vec::new();
    let mut journal: Option<Journal> = None;
    if let Some(path) = &opts.resume_path {
        let loaded = match Journal::load(Path::new(path)) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot read journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if loaded.discarded > 0 {
            eprintln!(
                "warning: {path}: discarded {} torn/corrupt journal line(s)",
                loaded.discarded
            );
        }
        if let Some(fp) = loaded.fingerprint {
            if fp != fingerprint {
                eprintln!(
                    "warning: {path}: journal was written under different verifier \
                     settings; no verdicts will be reused"
                );
                match &loaded.description {
                    Some(recorded) => {
                        let current = config_description(&verify_config);
                        for (field, cur, rec) in fingerprint_diff(&current, recorded) {
                            eprintln!("  {field}: this run {cur}, journal {rec}");
                        }
                    }
                    None => eprintln!(
                        "  (journal header predates recorded settings; cannot say \
                         which fields differ)"
                    ),
                }
            }
        }
        let plan = plan_resume(&loaded.records, &keys);
        println!(
            "resume: {} verdict(s) reused, {} requeued at budget x{}, {} fresh",
            plan.reuse.len(),
            plan.requeue.len(),
            RESUME_ESCALATION,
            plan.fresh.len(),
        );
        for (i, rec) in plan.reuse {
            preset.push((i, rec.to_outcome()));
        }
        for (i, rec) in plan.requeue {
            tasks.push(TaskSpec {
                index: i,
                scale: RESUME_ESCALATION,
                prior: rec.to_outcome().attempts,
            });
        }
        for i in plan.fresh {
            tasks.push(TaskSpec::fresh(i));
        }
        tasks.sort_by_key(|t| t.index);
        match Journal::open_append(Path::new(path)) {
            Ok(j) => journal = Some(j),
            Err(e) => {
                eprintln!("error: cannot append to journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        tasks = (0..transforms.len()).map(TaskSpec::fresh).collect();
        if let Some(path) = &opts.journal_path {
            match Journal::create_described(
                Path::new(path),
                fingerprint,
                Some(&config_description(&verify_config)),
            ) {
                Ok(j) => journal = Some(j),
                Err(e) => {
                    eprintln!("error: cannot create journal {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Ctrl-C → cooperative cancellation: the watcher thread raises the
    // token, every solver winds down at its next budget poll, the pool
    // drains, and the partial report still gets written. A second Ctrl-C
    // while draining force-exits immediately.
    install_sigint_handler();
    {
        let token = driver.cancel.clone();
        std::thread::spawn(move || {
            let mut cancelled = false;
            loop {
                let n = SIGINT_COUNT.load(Ordering::SeqCst);
                if n >= 2 {
                    eprintln!("second interrupt: exiting immediately");
                    std::process::exit(130);
                }
                if n >= 1 && !cancelled {
                    token.cancel();
                    cancelled = true;
                    eprintln!("interrupt: draining workers (Ctrl-C again to force exit)");
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
    }

    let mut aux_failures = 0usize;
    let mut paranoid_disagreements = 0usize;
    let paranoid_cfg = OracleConfig::default();
    let mut used_slugs: HashMap<String, usize> = HashMap::new();
    drop(setup_span);
    let report = run_supervised(
        &transforms,
        tasks,
        preset,
        &driver,
        &pool,
        journal.as_mut().map(|j| (j, keys.as_slice())),
        |i, outcome| {
            println!("----------------------------------------");
            println!("Name: {}", outcome.name);
            match outcome.kind {
                OutcomeKind::Valid => {
                    println!(
                        "{}{}",
                        outcome.detail,
                        if outcome.resumed {
                            " [resumed from journal]"
                        } else {
                            ""
                        }
                    );
                    if let Some(dir) = &opts.proof_dir {
                        match persist_certificates(
                            dir,
                            &outcome.name,
                            &outcome.certificates,
                            &mut used_slugs,
                        ) {
                            Ok(n) => println!("{n} certificates written and re-checked"),
                            Err(e) => {
                                println!("certificate error: {e}");
                                aux_failures += 1;
                            }
                        }
                    }
                    let t = &transforms[i].1;
                    if opts.infer {
                        match infer_attributes(t, &verify_config) {
                            Ok(r) => {
                                if r.pre_weakened || r.post_strengthened {
                                    println!("Optimal attributes:\n{}", r.inferred);
                                }
                            }
                            Err(e) => println!("(attribute inference: {e})"),
                        }
                    }
                    if opts.emit_cpp {
                        match generate_cpp(t) {
                            Ok(cpp) => println!("{cpp}"),
                            Err(e) => println!("(codegen: {e})"),
                        }
                    }
                }
                OutcomeKind::Invalid => println!("{}", outcome.detail),
                OutcomeKind::Unknown => {
                    println!("Verification inconclusive: {}", outcome.detail)
                }
                OutcomeKind::Error => println!("error: {}", outcome.detail),
                OutcomeKind::Hung => println!("Hung: {}", outcome.detail),
            }
            if opts.paranoid {
                let audit = paranoid_audit(
                    &transforms[i].1,
                    outcome.kind,
                    &outcome.certificates,
                    &verify_config,
                    &paranoid_cfg,
                );
                if audit.is_clean() {
                    if audit.points_checked > 0 {
                        println!(
                            "paranoid: agreed ({} concrete point(s) over {} typing(s))",
                            audit.points_checked, audit.typings_checked
                        );
                    }
                } else {
                    for d in &audit.disagreements {
                        println!("paranoid: DISAGREEMENT: {d}");
                    }
                    paranoid_disagreements += audit.disagreements.len();
                }
            }
            // --dedupe: every duplicate reports its representative's
            // verdict (they are the same transform up to renaming).
            for dup in dup_names.get(i).map_or(&[][..], Vec::as_slice) {
                println!("----------------------------------------");
                println!("Name: {dup}");
                let verdict = match outcome.kind {
                    OutcomeKind::Valid | OutcomeKind::Invalid => outcome.detail.clone(),
                    OutcomeKind::Unknown => {
                        format!("Verification inconclusive: {}", outcome.detail)
                    }
                    OutcomeKind::Error => format!("error: {}", outcome.detail),
                    OutcomeKind::Hung => format!("Hung: {}", outcome.detail),
                };
                println!(
                    "{verdict} [deduped: canonically identical to {}]",
                    outcome.name
                );
            }
        },
    );

    println!("----------------------------------------");
    println!(
        "{} valid, {} invalid, {} unknown, {} errors{}{}{}",
        report.count(OutcomeKind::Valid),
        report.count(OutcomeKind::Invalid),
        report.count(OutcomeKind::Unknown),
        report.count(OutcomeKind::Error),
        match report.count(OutcomeKind::Hung) {
            0 => String::new(),
            n => format!(", {n} hung"),
        },
        if report.skipped > 0 {
            format!(", {} skipped", report.skipped)
        } else {
            String::new()
        },
        if report.cancelled {
            " (interrupted)"
        } else {
            ""
        },
    );
    if duplicates > 0 {
        println!(
            "dedupe: {duplicates} duplicate(s) answered by their canonical \
             representative's verdict"
        );
    }
    if paranoid_disagreements > 0 {
        eprintln!(
            "error: paranoid mode found {paranoid_disagreements} disagreement(s) \
             between the verifier and the differential oracle"
        );
        aux_failures += 1;
    }
    if report.journal_errors > 0 {
        eprintln!(
            "warning: {} journal append(s) failed; --resume would re-verify them",
            report.journal_errors
        );
        aux_failures += 1;
    }

    // Flush explicitly: a worker the watchdog detached still holds a clone
    // of the sink, so the Drop-based flush may never run in this process.
    tracer.flush();
    if let Some(sink) = &jsonl_sink {
        if sink.had_error() {
            eprintln!(
                "warning: trace writes failed; {} is incomplete",
                opts.trace_path.as_deref().unwrap_or("the trace file"),
            );
            aux_failures += 1;
        }
    }
    if let Some(sink) = &metrics_sink {
        println!();
        print!("{}", sink.render());
    }

    if let Some(path) = &opts.report_path {
        if let Err(e) = write_report(path, &report) {
            eprintln!("error: cannot write report {path}: {e}");
            aux_failures += 1;
        }
    }

    let mut code = report.exit_code();
    if code != 130 && (parse_failures > 0 || aux_failures > 0) {
        code = 1;
    }
    ExitCode::from(code as u8)
}

fn write_report(path: &str, report: &RunReport) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}

/// Writes each certificate to `<dir>/<slug>.<k>.cert`, then reads every
/// file back and runs the independent checker on the parsed result, so
/// what lands on disk — not the in-memory copy — is what gets trusted.
///
/// Distinct transform names can collapse to one slug (`A:B` and `A_B` both
/// become `A_B`); `used_slugs` disambiguates repeats with a numeric suffix
/// so no transform's certificates overwrite another's.
fn persist_certificates(
    dir: &str,
    transform_name: &str,
    certs: &[Certificate],
    used_slugs: &mut HashMap<String, usize>,
) -> Result<usize, String> {
    let base: String = transform_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let n = used_slugs.entry(base.clone()).or_insert(0);
    *n += 1;
    let slug = if *n == 1 {
        base
    } else {
        format!("{base}__{n}")
    };
    for (k, cert) in certs.iter().enumerate() {
        let file = Path::new(dir).join(format!("{slug}.{k}.cert"));
        std::fs::write(&file, cert.to_text()).map_err(|e| format!("{}: {e}", file.display()))?;
        let text =
            std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        let parsed =
            Certificate::parse(&text).map_err(|e| format!("{}: parse: {e}", file.display()))?;
        parsed
            .check()
            .map_err(|e| format!("{}: check: {e}", file.display()))?;
    }
    Ok(certs.len())
}
