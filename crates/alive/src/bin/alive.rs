//! The `alive` command-line tool: verify the transformations in `.opt`
//! files, like the original `alive.py`.
//!
//! ```text
//! usage: alive [OPTIONS] <file.opt>...
//!   --fast          verify at widths {4,8} only
//!   --exhaustive    verify at widths 1..=64 (slow, like the paper)
//!   --cpp           print generated C++ for verified transformations
//!   --infer         run nsw/nuw/exact attribute inference
//!   --proof <dir>   write refinement certificates to <dir> and re-check
//!                   each one with the independent proof checker
//! ```
//!
//! Exit codes: `0` all transformations verified, `1` at least one
//! refinement failure (or parse/IO error), `2` inconclusive only
//! (budget exhausted / unknown), `64` usage error.

use alive::{
    generate_cpp, infer_attributes, parse_transforms, verify, verify_with_certificates,
    Certificate, Verdict, VerifyConfig,
};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str =
    "usage: alive [--fast|--exhaustive] [--cpp] [--infer] [--proof <dir>] <file.opt>...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut config = VerifyConfig::default();
    let mut emit_cpp = false;
    let mut infer = false;
    let mut proof_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => config = VerifyConfig::fast(),
            "--exhaustive" => {
                config.typeck = alive::TypeckConfig::exhaustive();
            }
            "--cpp" => emit_cpp = true,
            "--infer" => infer = true,
            "--proof" => match it.next() {
                Some(dir) => proof_dir = Some(dir.clone()),
                None => {
                    eprintln!("error: --proof requires a directory argument\n{USAGE}");
                    return ExitCode::from(64);
                }
            },
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option '{other}'\n{USAGE}");
                return ExitCode::from(64);
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("error: no input files (try --help)\n{USAGE}");
        return ExitCode::from(64);
    }
    if let Some(dir) = &proof_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create proof directory {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut failures = 0usize;
    let mut unknowns = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        let transforms = match parse_transforms(&text) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        for (i, t) in transforms.iter().enumerate() {
            let name = t
                .name
                .clone()
                .unwrap_or_else(|| format!("{path}#{}", i + 1));
            println!("----------------------------------------");
            println!("Name: {name}");
            let (verdict, certificates) = if proof_dir.is_some() {
                match verify_with_certificates(t, &config) {
                    Ok((v, _, certs)) => (Ok(v), certs),
                    Err(e) => (Err(e), Vec::new()),
                }
            } else {
                (verify(t, &config), Vec::new())
            };
            match verdict {
                Ok(Verdict::Valid { typings_checked }) => {
                    println!("Optimization is correct! ({typings_checked} type assignments)");
                    if let Some(dir) = &proof_dir {
                        match persist_certificates(dir, &name, &certificates) {
                            Ok(n) => println!("{n} certificates written and re-checked"),
                            Err(e) => {
                                println!("certificate error: {e}");
                                failures += 1;
                            }
                        }
                    }
                    if infer {
                        match infer_attributes(t, &config) {
                            Ok(r) => {
                                if r.pre_weakened || r.post_strengthened {
                                    println!("Optimal attributes:\n{}", r.inferred);
                                }
                            }
                            Err(e) => println!("(attribute inference: {e})"),
                        }
                    }
                    if emit_cpp {
                        match generate_cpp(t) {
                            Ok(cpp) => println!("{cpp}"),
                            Err(e) => println!("(codegen: {e})"),
                        }
                    }
                }
                Ok(Verdict::Invalid(cex)) => {
                    println!("{cex}");
                    failures += 1;
                }
                Ok(Verdict::Unknown { reason }) => {
                    println!("Verification inconclusive: {reason}");
                    unknowns += 1;
                }
                Err(e) => {
                    println!("error: {e}");
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        ExitCode::from(1)
    } else if unknowns > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes each certificate to `<dir>/<name>.<k>.cert`, then reads every
/// file back and runs the independent checker on the parsed result, so
/// what lands on disk — not the in-memory copy — is what gets trusted.
fn persist_certificates(
    dir: &str,
    transform_name: &str,
    certs: &[Certificate],
) -> Result<usize, String> {
    let slug: String = transform_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    for (k, cert) in certs.iter().enumerate() {
        let file = Path::new(dir).join(format!("{slug}.{k}.cert"));
        std::fs::write(&file, cert.to_text()).map_err(|e| format!("{}: {e}", file.display()))?;
        let text =
            std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        let parsed =
            Certificate::parse(&text).map_err(|e| format!("{}: parse: {e}", file.display()))?;
        parsed
            .check()
            .map_err(|e| format!("{}: check: {e}", file.display()))?;
    }
    Ok(certs.len())
}
