//! `alive` — a Rust reproduction of *Provably Correct Peephole
//! Optimizations with Alive* (Lopes, Menendez, Nagarakatte, Regehr;
//! PLDI 2015).
//!
//! Alive is a domain-specific language for LLVM peephole optimizations.
//! A transformation is written as `source => target` with an optional
//! precondition; the toolchain then
//!
//! 1. parses and validates it ([`parse_transform`], [`ir`]),
//! 2. enumerates every feasible type assignment ([`typeck`]),
//! 3. encodes both templates into SMT bitvector formulas covering LLVM's
//!    three kinds of undefined behavior ([`vcgen`]),
//! 4. proves refinement or produces a counterexample ([`verify`]) using a
//!    from-scratch SMT stack ([`smt`], [`sat`]),
//! 5. infers optimal `nsw`/`nuw`/`exact` attributes ([`infer_attributes`]),
//! 6. emits InstCombine-style C++ ([`generate_cpp`]), and
//! 7. can apply verified optimizations to a miniature LLVM-like IR
//!    ([`opt`], [`verified_peephole`]).
//!
//! # Quick start
//!
//! ```
//! use alive::{parse_transform, verify, VerifyConfig};
//!
//! // The paper's introductory example: (x ^ -1) + C  ==>  (C-1) - x
//! let t = parse_transform(r"
//! %1 = xor %x, -1
//! %2 = add %1, C
//! =>
//! %2 = sub C-1, %x
//! ").unwrap();
//!
//! let verdict = verify(&t, &VerifyConfig::fast()).unwrap();
//! assert!(verdict.is_valid());
//! ```
//!
//! Incorrect optimizations produce counterexamples in the style of the
//! paper's Fig. 5:
//!
//! ```
//! use alive::{parse_transform, verify, Verdict, VerifyConfig};
//!
//! let wrong = parse_transform(r"
//! %1 = xor %x, -1
//! %2 = add %1, C
//! =>
//! %2 = sub C, %x
//! ").unwrap();
//! match verify(&wrong, &VerifyConfig::fast()).unwrap() {
//!     Verdict::Invalid(cex) => println!("{cex}"),
//!     other => panic!("expected a counterexample, got {other}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// C++ code generation.
pub use alive_codegen as codegen;
/// Grammar-aware fuzzing and the paranoid differential oracle.
pub use alive_fuzz as fuzz;
/// The Alive DSL front end.
pub use alive_ir as ir;
/// The mini-LLVM substrate (pass, interpreter, workloads).
pub use alive_opt as opt;
/// Independent proof checking (refinement certificates).
pub use alive_proof as proof;
/// The SAT solver substrate.
pub use alive_sat as sat;
/// Verification as a service: daemon, protocol, verdict cache.
pub use alive_serve as serve;
/// The SMT (bitvector) layer.
pub use alive_smt as smt;
/// The InstCombine corpus.
pub use alive_suite as suite;
/// Structured tracing, metrics, and per-phase profiling.
pub use alive_trace as trace;
/// Type inference and feasible-type enumeration.
pub use alive_typeck as typeck;
/// Verification-condition generation.
pub use alive_vcgen as vcgen;
/// The refinement verifier.
pub use alive_verifier as verifier;

pub use alive_codegen::generate_cpp;
pub use alive_ir::{parse_transform, parse_transforms, validate, Transform};
pub use alive_opt::{Peephole, WorkloadConfig};
pub use alive_proof::{Certificate, CheckError};
pub use alive_typeck::TypeckConfig;
pub use alive_verifier::{
    infer_attributes, verify, verify_with_certificates, Counterexample, FailureKind, Verdict,
    VerifyConfig,
};

/// Parses and verifies every transformation in `src`, returning
/// `(name, verdict)` pairs.
///
/// # Errors
///
/// Returns the first parse or verification error.
///
/// # Examples
///
/// ```
/// let results = alive::check_text(r"
/// Name: good
/// %r = add %x, 0
/// =>
/// %r = %x
/// Name: bad
/// %r = add %x, 0
/// =>
/// %r = add %x, 1
/// ", &alive::VerifyConfig::fast()).unwrap();
/// assert!(results[0].1.is_valid());
/// assert!(results[1].1.is_invalid());
/// ```
pub fn check_text(
    src: &str,
    config: &VerifyConfig,
) -> Result<Vec<(String, Verdict)>, Box<dyn std::error::Error>> {
    let transforms = parse_transforms(src)?;
    let mut out = Vec::with_capacity(transforms.len());
    for (i, t) in transforms.into_iter().enumerate() {
        let name = t.name.clone().unwrap_or_else(|| format!("opt{i}"));
        let verdict = verify(&t, config)?;
        out.push((name, verdict));
    }
    Ok(out)
}

/// Builds a peephole optimizer from the given transformations, verifying
/// each first and keeping only the proven-correct ones (the end-to-end
/// guarantee the paper's pipeline provides: only verified rewrites reach
/// the compiler).
///
/// Returns the optimizer and the names that were rejected.
pub fn verified_peephole(
    entries: impl IntoIterator<Item = (String, Transform)>,
    config: &VerifyConfig,
) -> (Peephole, Vec<String>) {
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for (name, t) in entries {
        match verify(&t, config) {
            Ok(v) if v.is_valid() => accepted.push((name, t)),
            _ => rejected.push(name),
        }
    }
    (Peephole::new(accepted), rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_pipeline() {
        let t = parse_transform("Pre: isPowerOf2(C)\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)")
            .unwrap();
        // Verify.
        let v = verify(&t, &VerifyConfig::fast()).unwrap();
        assert!(v.is_valid(), "{v}");
        // Generate C++.
        let cpp = generate_cpp(&t).unwrap();
        assert!(cpp.contains("m_Mul"));
        // Apply to IR.
        let (pass, rejected) =
            verified_peephole([("mul-pow2".to_string(), t)], &VerifyConfig::fast());
        assert!(rejected.is_empty());
        assert_eq!(pass.len(), 1);
    }

    #[test]
    fn verified_peephole_rejects_bugs() {
        let bug = alive_suite::by_name("PR21255").unwrap();
        let good = alive_suite::by_name("PR21255-fixed").unwrap();
        let (pass, rejected) = verified_peephole(
            [
                ("bug".to_string(), bug.transform),
                ("good".to_string(), good.transform),
            ],
            &VerifyConfig::fast(),
        );
        assert_eq!(rejected, vec!["bug".to_string()]);
        assert_eq!(pass.len(), 1);
    }
}
