//! Well-formedness checks for Alive transformations (paper §2.1,
//! "Scoping").
//!
//! * SSA: every register is defined at most once per template, and uses
//!   appear after definitions.
//! * The source and target share a common root: the target must (re)define
//!   the root of the source DAG.
//! * Every temporary defined in the source must be used by a later source
//!   instruction or be overwritten in the target.
//! * Every value defined in the target must be used by a later target
//!   instruction or overwrite a source value.
//! * Targets may not introduce fresh input variables.

use crate::ast::{Inst, Operand, Transform};
use std::collections::HashSet;
use std::fmt;

/// A well-formedness violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidateError {
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid transformation: {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

fn err(message: impl Into<String>) -> ValidateError {
    ValidateError {
        message: message.into(),
    }
}

/// Checks all well-formedness rules.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate(t: &Transform) -> Result<(), ValidateError> {
    if t.source.is_empty() {
        return Err(err("source template is empty"));
    }
    if t.target.is_empty() {
        return Err(err("target template is empty"));
    }

    // SSA within each template.
    check_ssa(&t.source, "source")?;
    check_ssa(&t.target, "target")?;

    let src_defs: Vec<&str> = t.source_defs();
    if src_defs.is_empty() {
        return Err(err("source template defines no values"));
    }
    let root = t.root();

    let tgt_defs: Vec<&str> = t.target_defs();
    if !tgt_defs.contains(&root) {
        return Err(err(format!(
            "target does not define the root value %{root}"
        )));
    }

    // Uses must be defined: in the target, a register must be an input, a
    // source def, or an earlier target def.
    let inputs: HashSet<&str> = t.inputs().into_iter().collect();
    let src_def_set: HashSet<&str> = src_defs.iter().copied().collect();
    let mut seen: HashSet<&str> = HashSet::new();
    for s in &t.target {
        for r in s.inst.used_regs() {
            let known = inputs.contains(r) || src_def_set.contains(r) || seen.contains(r);
            if !known {
                return Err(err(format!(
                    "target uses %{r} which is neither an input nor previously defined"
                )));
            }
        }
        if let Some(n) = &s.name {
            seen.insert(n);
        }
    }

    // Every source temporary must be used later in the source or be
    // overwritten by the target (dead source values indicate a template
    // error).
    for (i, s) in t.source.iter().enumerate() {
        let Some(name) = &s.name else { continue };
        if name == root {
            continue;
        }
        let used_later = t.source[i + 1..]
            .iter()
            .any(|later| later.inst.used_regs().contains(&name.as_str()));
        let overwritten = tgt_defs.contains(&name.as_str());
        if !used_later && !overwritten {
            return Err(err(format!(
                "source temporary %{name} is never used nor overwritten in the target"
            )));
        }
    }

    // Every target instruction must feed a later target instruction or
    // overwrite a source value.
    for (i, s) in t.target.iter().enumerate() {
        let Some(name) = &s.name else { continue };
        let used_later = t.target[i + 1..]
            .iter()
            .any(|later| later.inst.used_regs().contains(&name.as_str()));
        let overwrites = src_def_set.contains(name.as_str());
        if !used_later && !overwrites {
            return Err(err(format!(
                "target value %{name} is never used and does not overwrite a source value"
            )));
        }
    }

    // select condition cannot be a non-boolean literal-typed operand;
    // and alloca count must be constant.
    for s in t.source.iter().chain(&t.target) {
        if let Inst::Alloca { count, .. } = &s.inst {
            if !matches!(count, Operand::Const(_, _)) {
                return Err(err("alloca element count must be a constant"));
            }
        }
    }
    Ok(())
}

fn check_ssa(stmts: &[crate::ast::Stmt], which: &str) -> Result<(), ValidateError> {
    let mut defined: HashSet<&str> = HashSet::new();
    for s in stmts {
        if let Some(n) = &s.name {
            if !defined.insert(n) {
                return Err(err(format!("{which} template defines %{n} more than once")));
            }
        }
    }
    // Forward references within the source template are not allowed.
    if which == "source" {
        let mut seen: HashSet<&str> = HashSet::new();
        let all: HashSet<&str> = stmts.iter().filter_map(|s| s.name.as_deref()).collect();
        for s in stmts {
            for r in s.inst.used_regs() {
                if all.contains(r) && !seen.contains(r) {
                    return Err(err(format!("source uses %{r} before its definition")));
                }
            }
            if let Some(n) = &s.name {
                seen.insert(n);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_transform;

    fn ok(src: &str) {
        let t = parse_transform(src).unwrap();
        validate(&t).unwrap();
    }

    fn bad(src: &str, needle: &str) {
        let t = parse_transform(src).unwrap();
        let e = validate(&t).unwrap_err();
        assert!(
            e.message.contains(needle),
            "expected error about `{needle}`, got: {}",
            e.message
        );
    }

    #[test]
    fn accepts_paper_examples() {
        ok("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        ok("Pre: C2 == 0 && MaskedValueIsZero(%V, ~C1)\n%t0 = or %B, %V\n%t1 = and %t0, C1\n%t2 = and %B, C2\n%R = or %t1, %t2\n=>\n%R = and %t0, (C1 | C2)");
        ok("%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3");
    }

    #[test]
    fn rejects_missing_root_in_target() {
        bad(
            "%a = add %x, 1\n=>\n%b = add %x, 2",
            "does not define the root",
        );
    }

    #[test]
    fn rejects_double_definition() {
        bad(
            "%a = add %x, 1\n%a = add %x, 2\n=>\n%a = %x",
            "more than once",
        );
    }

    #[test]
    fn rejects_dead_source_temporary() {
        bad(
            "%t = add %x, 1\n%r = add %x, 2\n=>\n%r = %x",
            "never used nor overwritten",
        );
    }

    #[test]
    fn accepts_source_temporary_overwritten_in_target() {
        ok("%t = shl %P, %A\n%r = udiv %X, %t\n=>\n%t = shl %P, %A\n%r = udiv %X, %t");
    }

    #[test]
    fn rejects_dead_target_value() {
        bad(
            "%r = add %x, 1\n=>\n%dead = add %x, 2\n%r = add %x, 1",
            "never used and does not overwrite",
        );
    }

    #[test]
    fn rejects_unknown_target_register() {
        bad(
            "%r = add %x, 1\n=>\n%r = add %ghost, 1",
            "neither an input nor previously defined",
        );
    }

    #[test]
    fn rejects_use_before_def_in_source() {
        bad(
            "%r = add %t, 1\n%t = add %x, 1\n=>\n%r = %x\n",
            "before its definition",
        );
    }
}
