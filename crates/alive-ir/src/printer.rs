//! Pretty-printing of Alive transformations back to DSL syntax.
//!
//! The printer and parser round-trip: `parse(print(t)) == t` (validated by
//! property tests over the corpus).

use crate::ast::*;
use std::fmt;

impl fmt::Display for CUnop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CUnop::Neg => "-",
            CUnop::Not => "~",
        })
    }
}

impl CBinop {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CBinop::Add => "+",
            CBinop::Sub => "-",
            CBinop::Mul => "*",
            CBinop::SDiv => "/",
            CBinop::UDiv => "/u",
            CBinop::SRem => "%",
            CBinop::URem => "%u",
            CBinop::Shl => "<<",
            CBinop::LShr => ">>",
            CBinop::AShr => ">>a",
            CBinop::And => "&",
            CBinop::Or => "|",
            CBinop::Xor => "^",
        }
    }

    fn precedence(self) -> u8 {
        match self {
            CBinop::Or => 1,
            CBinop::Xor => 2,
            CBinop::And => 3,
            CBinop::Shl | CBinop::LShr | CBinop::AShr => 4,
            CBinop::Add | CBinop::Sub => 5,
            CBinop::Mul | CBinop::SDiv | CBinop::UDiv | CBinop::SRem | CBinop::URem => 6,
        }
    }
}

impl CExpr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            CExpr::Lit(n) => write!(f, "{n}"),
            CExpr::Sym(s) => write!(f, "{s}"),
            CExpr::Unop(op, a) => {
                write!(f, "{op}")?;
                a.fmt_prec(f, 7)
            }
            CExpr::Binop(op, a, b) => {
                let prec = op.precedence();
                let need = prec < parent;
                if need {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand binds tighter to preserve left associativity.
                b.fmt_prec(f, prec + 1)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            CExpr::Fun(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match a {
                        CExprArg::Reg(r) => write!(f, "%{r}")?,
                        CExprArg::Expr(e) => e.fmt_prec(f, 0)?,
                    }
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for CExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl fmt::Display for PredCmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PredCmpOp::Eq => "==",
            PredCmpOp::Ne => "!=",
            PredCmpOp::Slt => "<",
            PredCmpOp::Sle => "<=",
            PredCmpOp::Sgt => ">",
            PredCmpOp::Sge => ">=",
            PredCmpOp::Ult => "u<",
            PredCmpOp::Ule => "u<=",
            PredCmpOp::Ugt => "u>",
            PredCmpOp::Uge => "u>=",
        })
    }
}

impl Pred {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Not(p) => {
                write!(f, "!")?;
                p.fmt_prec(f, 3)
            }
            Pred::And(a, b) => {
                let need = 2 < parent;
                if need {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, 2)?;
                write!(f, " && ")?;
                b.fmt_prec(f, 3)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Pred::Or(a, b) => {
                let need = 1 < parent;
                if need {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, 1)?;
                write!(f, " || ")?;
                b.fmt_prec(f, 2)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Pred::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Pred::Fun(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match a {
                        PredArg::Reg(r) => write!(f, "%{r}")?,
                        PredArg::Expr(e) => write!(f, "{e}")?,
                    }
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(n, t) => {
                if let Some(t) = t {
                    write!(f, "{t} ")?;
                }
                write!(f, "%{n}")
            }
            Operand::Const(e, t) => {
                if let Some(t) = t {
                    write!(f, "{t} ")?;
                }
                write!(f, "{e}")
            }
            Operand::Undef(t) => {
                if let Some(t) = t {
                    write!(f, "{t} ")?;
                }
                write!(f, "undef")
            }
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::BinOp { op, flags, a, b } => {
                write!(f, "{op}")?;
                for fl in flags {
                    write!(f, " {fl}")?;
                }
                write!(f, " {a}, {b}")
            }
            Inst::Conv { op, arg, to } => {
                write!(f, "{op} {arg}")?;
                if let Some(t) = to {
                    write!(f, " to {t}")?;
                }
                Ok(())
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => write!(f, "select {cond}, {on_true}, {on_false}"),
            Inst::ICmp { pred, a, b } => write!(f, "icmp {pred} {a}, {b}"),
            Inst::Alloca { ty, count } => write!(f, "alloca {ty}, {count}"),
            Inst::Load { ptr } => write!(f, "load {ptr}"),
            Inst::Store { val, ptr } => write!(f, "store {val}, {ptr}"),
            Inst::Gep { ptr, idxs } => {
                write!(f, "getelementptr {ptr}")?;
                for i in idxs {
                    write!(f, ", {i}")?;
                }
                Ok(())
            }
            Inst::Copy { val } => write!(f, "{val}"),
            Inst::Unreachable => write!(f, "unreachable"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "%{n} = {}", self.inst),
            None => write!(f, "{}", self.inst),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            writeln!(f, "Name: {n}")?;
        }
        if self.pre != Pred::True {
            writeln!(f, "Pre: {}", self.pre)?;
        }
        for s in &self.source {
            writeln!(f, "{s}")?;
        }
        writeln!(f, "=>")?;
        for s in &self.target {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_transform;

    fn round_trip(src: &str) {
        let t1 = parse_transform(src).unwrap();
        let printed = t1.to_string();
        let t2 = parse_transform(&printed)
            .unwrap_or_else(|e| panic!("reparse of\n{printed}\nfailed: {e}"));
        assert_eq!(t1, t2, "round trip mismatch for\n{printed}");
    }

    #[test]
    fn round_trips() {
        round_trip("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        round_trip(
            "Pre: C2 % (1<<C1) == 0\n%s = shl nsw %X, C1\n%r = sdiv %s, C2\n=>\n%r = sdiv %X, C2/(1<<C1)",
        );
        round_trip("%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3");
        round_trip(
            "Pre: isPowerOf2(%P) && hasOneUse(%Y)\n%s = shl %P, %A\n%Y = lshr %s, %B\n%r = udiv %X, %Y\n=>\n%sub = sub %A, %B\n%Y = shl %P, %sub\n%r = udiv %X, %Y",
        );
        round_trip("%p = alloca i8, 4\n%v = load %p\nstore %v, %p\n%r = load %p\n=>\n%r = %v");
        round_trip("%r = zext i8 %x to i16\n=>\n%r = zext i8 %x to i16");
        round_trip("Name: X\nPre: !(C1 u>= C2) || C1 == 0\n%r = add %x, C1 %u C2\n=>\n%r = %x");
    }

    #[test]
    fn operator_precedence_survives() {
        round_trip("%r = add %x, C1 | C2 & C3\n=>\n%r = %x");
        round_trip("%r = add %x, (C1 | C2) & C3\n=>\n%r = %x");
        round_trip("%r = add %x, C1 - C2 - C3\n=>\n%r = %x");
        round_trip("%r = add %x, C1 - (C2 - C3)\n=>\n%r = %x");
        round_trip("%r = add %x, -C1 * ~C2\n=>\n%r = %x");
    }
}
