//! Canonical forms and content hashes for transformations.
//!
//! Two textually different transforms are often the *same* optimization:
//! value names are arbitrary (`%x + %y` vs `%a + %b`), commutative
//! operands can be written in either order (`add %x, C` vs `add C, %x`),
//! and precondition conjuncts commute (`A && B` vs `B && A`). A verdict
//! cache keyed on raw text would re-verify all of these; keyed on the
//! **canonical form** computed here, it never verifies the same
//! optimization twice.
//!
//! [`canonicalize`] applies three semantics-preserving normalizations:
//!
//! 1. **Alpha-renaming** — registers become `%v0, %v1, …` in order of
//!    first appearance (source template first, then target, then the
//!    precondition); abstract constants become `C1, C2, …` likewise. The
//!    `Name:` header is dropped: it never affects the verdict.
//! 2. **Commutative-operand normalization** — operands of commutative
//!    instructions (`add`, `mul`, `and`, `or`, `xor`) and of `icmp
//!    eq`/`ne` are put in a fixed order (registers before constants
//!    before `undef`, ties by printed form); "greater" `icmp` predicates
//!    are mirrored into their "less" duals (`sgt a, b` → `slt b, a`);
//!    instruction attributes are sorted; commutative constant-expression
//!    operators are ordered the same way.
//! 3. **Precondition normal form** — `&&`/`||` chains are flattened,
//!    sorted, and deduplicated; double negation is eliminated; identity
//!    elements are dropped (`true && P` → `P`); comparison predicates are
//!    mirrored into the `==`/`!=`/`<`-family duals.
//!
//! Renaming and operand sorting feed each other (sorting changes the
//! order of first appearance, renaming changes the sort keys), so the two
//! are iterated to a fixed point (bounded; in practice 2–3 rounds).
//!
//! [`canonical_hash`] is the FNV-1a 64 hash of the canonical printed
//! text. It identifies the *optimization*, not the source bytes, and is
//! the cache key used by the verdict store and `alive serve`. Because a
//! 64-bit hash can collide, correctness-critical consumers must compare
//! the [`canonical_text`] itself on lookup — the hash only buckets.

use crate::ast::*;

/// FNV-1a 64-bit hash of arbitrary bytes (the same non-cryptographic hash
/// the verification journal uses: it guards against accidents, not
/// adversaries).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Commutative sites enumerated above this count fall back to the greedy
/// single-candidate canonicalization (2^8 = 256 candidates is the most
/// the orbit search will print-and-compare; real corpus transforms have
/// a handful of commutative instructions at most).
const MAX_ORBIT_BITS: usize = 8;

/// Returns the canonical form of a transform: alpha-renamed, with
/// commutative operands in a fixed order and the precondition in normal
/// form. The result is semantically equivalent to the input and is a
/// fixed point of [`canonicalize`] itself.
///
/// Operand order and value naming feed each other: registers are
/// numbered by first appearance, and first appearance depends on which
/// operand of a commutative instruction comes first. A greedy
/// sort-then-rename loop is therefore order-sensitive — `add %x, %y` and
/// `add %y, %x` can land on *different* fixed points when `%x` and `%y`
/// play asymmetric roles elsewhere. The canonical form is instead the
/// lexicographically **minimal printed text over the commutation orbit**:
/// every choice of operand order at every commutative site is tried (up
/// to [`MAX_ORBIT_BITS`] sites), each candidate is alpha-renamed and
/// structurally normalized, and the smallest text wins. The orbit of a
/// transform and of any commuted variant are the same candidate set, so
/// the minimum — and hence the hash — agrees.
pub fn canonicalize(t: &Transform) -> Transform {
    let mut base = t.clone();
    base.name = None;
    let sites = commutative_sites(&base);
    if sites.len() > MAX_ORBIT_BITS {
        // Too many sites to enumerate: the greedy form is still
        // deterministic and semantics-preserving, it just may miss some
        // commuted duplicates (a cache miss, never a wrong hit).
        return greedy_canon(&base);
    }
    let mut best: Option<(String, Transform)> = None;
    for mask in 0..(1u32 << sites.len()) {
        let candidate = apply_commutation_mask(&base, &sites, mask);
        let canon = greedy_canon(&candidate);
        let text = canon.to_string();
        if best.as_ref().is_none_or(|(min, _)| text < *min) {
            best = Some((text, canon));
        }
    }
    best.expect("orbit is never empty").1
}

/// The bounded rename/normalize fixed-point underlying [`canonicalize`]:
/// deterministic for a fixed operand order.
fn greedy_canon(t: &Transform) -> Transform {
    let mut cur = t.clone();
    for _ in 0..8 {
        let renamed = alpha_rename(&cur);
        let sorted = normalize_structure(&renamed);
        let stable = sorted == renamed;
        cur = sorted;
        if stable {
            break;
        }
    }
    cur
}

/// Statement positions (false = source, true = target; then statement
/// index) whose instruction has a commutation choice: commutative binops
/// and `icmp eq`/`ne`.
fn commutative_sites(t: &Transform) -> Vec<(bool, usize)> {
    let mut out = Vec::new();
    for (in_target, stmts) in [(false, &t.source), (true, &t.target)] {
        for (i, s) in stmts.iter().enumerate() {
            let free = match &s.inst {
                Inst::BinOp { op, a, b, .. } => binop_commutes(*op) && a != b,
                Inst::ICmp { pred, a, b } => matches!(pred, ICmpPred::Eq | ICmpPred::Ne) && a != b,
                _ => false,
            };
            if free {
                out.push((in_target, i));
            }
        }
    }
    out
}

/// Applies one orbit candidate: swaps the operands of site `k` whenever
/// bit `k` of `mask` is set.
fn apply_commutation_mask(t: &Transform, sites: &[(bool, usize)], mask: u32) -> Transform {
    let mut out = t.clone();
    for (k, (in_target, i)) in sites.iter().enumerate() {
        if mask & (1 << k) == 0 {
            continue;
        }
        let stmts = if *in_target {
            &mut out.target
        } else {
            &mut out.source
        };
        match &mut stmts[*i].inst {
            Inst::BinOp { a, b, .. } | Inst::ICmp { a, b, .. } => std::mem::swap(a, b),
            _ => unreachable!("site list only names binop/icmp statements"),
        }
    }
    out
}

/// The canonical printed text of a transform (the preimage of
/// [`canonical_hash`]). Two transforms with equal canonical text are the
/// same optimization up to naming, commutativity, and precondition order.
pub fn canonical_text(t: &Transform) -> String {
    canonicalize(t).to_string()
}

/// The canonical content hash of a transform: FNV-1a 64 over
/// [`canonical_text`], rendered by callers as 16 lower-case hex digits.
pub fn canonical_hash(t: &Transform) -> u64 {
    fnv1a64(canonical_text(t).as_bytes())
}

// ---------------------------------------------------------------------------
// Alpha-renaming
// ---------------------------------------------------------------------------

/// An injective rename of registers and abstract constants, built in
/// order of first appearance.
#[derive(Default)]
struct Renamer {
    regs: std::collections::HashMap<String, String>,
    syms: std::collections::HashMap<String, String>,
}

impl Renamer {
    fn see_reg(&mut self, name: &str) {
        if !self.regs.contains_key(name) {
            let fresh = format!("v{}", self.regs.len());
            self.regs.insert(name.to_string(), fresh);
        }
    }

    fn see_sym(&mut self, name: &str) {
        if !self.syms.contains_key(name) {
            let fresh = format!("C{}", self.syms.len() + 1);
            self.syms.insert(name.to_string(), fresh);
        }
    }

    fn reg(&self, name: &str) -> String {
        // A register the scan never saw (impossible in a validated
        // transform) keeps its name: determinism matters more than
        // prettiness here.
        self.regs
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }

    fn sym(&self, name: &str) -> String {
        self.syms
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }

    fn see_cexpr(&mut self, e: &CExpr) {
        match e {
            CExpr::Lit(_) => {}
            CExpr::Sym(s) => self.see_sym(s),
            CExpr::Unop(_, a) => self.see_cexpr(a),
            CExpr::Binop(_, a, b) => {
                self.see_cexpr(a);
                self.see_cexpr(b);
            }
            CExpr::Fun(_, args) => {
                for a in args {
                    match a {
                        CExprArg::Expr(e) => self.see_cexpr(e),
                        CExprArg::Reg(r) => self.see_reg(r),
                    }
                }
            }
        }
    }

    fn see_operand(&mut self, op: &Operand) {
        match op {
            Operand::Reg(n, _) => self.see_reg(n),
            Operand::Const(e, _) => self.see_cexpr(e),
            Operand::Undef(_) => {}
        }
    }

    fn see_pred(&mut self, p: &Pred) {
        match p {
            Pred::True => {}
            Pred::Not(a) => self.see_pred(a),
            Pred::And(a, b) | Pred::Or(a, b) => {
                self.see_pred(a);
                self.see_pred(b);
            }
            Pred::Cmp(_, a, b) => {
                self.see_cexpr(a);
                self.see_cexpr(b);
            }
            Pred::Fun(_, args) => {
                for a in args {
                    match a {
                        PredArg::Reg(r) => self.see_reg(r),
                        PredArg::Expr(e) => self.see_cexpr(e),
                    }
                }
            }
        }
    }

    fn map_cexpr(&self, e: &CExpr) -> CExpr {
        match e {
            CExpr::Lit(n) => CExpr::Lit(*n),
            CExpr::Sym(s) => CExpr::Sym(self.sym(s)),
            CExpr::Unop(op, a) => CExpr::Unop(*op, Box::new(self.map_cexpr(a))),
            CExpr::Binop(op, a, b) => CExpr::Binop(
                *op,
                Box::new(self.map_cexpr(a)),
                Box::new(self.map_cexpr(b)),
            ),
            CExpr::Fun(name, args) => CExpr::Fun(
                name.clone(),
                args.iter()
                    .map(|a| match a {
                        CExprArg::Expr(e) => CExprArg::Expr(self.map_cexpr(e)),
                        CExprArg::Reg(r) => CExprArg::Reg(self.reg(r)),
                    })
                    .collect(),
            ),
        }
    }

    fn map_operand(&self, op: &Operand) -> Operand {
        match op {
            Operand::Reg(n, t) => Operand::Reg(self.reg(n), t.clone()),
            Operand::Const(e, t) => Operand::Const(self.map_cexpr(e), t.clone()),
            Operand::Undef(t) => Operand::Undef(t.clone()),
        }
    }

    fn map_pred(&self, p: &Pred) -> Pred {
        match p {
            Pred::True => Pred::True,
            Pred::Not(a) => Pred::Not(Box::new(self.map_pred(a))),
            Pred::And(a, b) => Pred::And(Box::new(self.map_pred(a)), Box::new(self.map_pred(b))),
            Pred::Or(a, b) => Pred::Or(Box::new(self.map_pred(a)), Box::new(self.map_pred(b))),
            Pred::Cmp(op, a, b) => Pred::Cmp(*op, self.map_cexpr(a), self.map_cexpr(b)),
            Pred::Fun(name, args) => Pred::Fun(
                name.clone(),
                args.iter()
                    .map(|a| match a {
                        PredArg::Reg(r) => PredArg::Reg(self.reg(r)),
                        PredArg::Expr(e) => PredArg::Expr(self.map_cexpr(e)),
                    })
                    .collect(),
            ),
        }
    }
}

/// Applies one operand-wise instruction rewrite.
fn map_inst(inst: &Inst, f: &dyn Fn(&Operand) -> Operand) -> Inst {
    match inst {
        Inst::BinOp { op, flags, a, b } => Inst::BinOp {
            op: *op,
            flags: flags.clone(),
            a: f(a),
            b: f(b),
        },
        Inst::Conv { op, arg, to } => Inst::Conv {
            op: *op,
            arg: f(arg),
            to: to.clone(),
        },
        Inst::Select {
            cond,
            on_true,
            on_false,
        } => Inst::Select {
            cond: f(cond),
            on_true: f(on_true),
            on_false: f(on_false),
        },
        Inst::ICmp { pred, a, b } => Inst::ICmp {
            pred: *pred,
            a: f(a),
            b: f(b),
        },
        Inst::Alloca { ty, count } => Inst::Alloca {
            ty: ty.clone(),
            count: f(count),
        },
        Inst::Load { ptr } => Inst::Load { ptr: f(ptr) },
        Inst::Store { val, ptr } => Inst::Store {
            val: f(val),
            ptr: f(ptr),
        },
        Inst::Gep { ptr, idxs } => Inst::Gep {
            ptr: f(ptr),
            idxs: idxs.iter().map(&f).collect(),
        },
        Inst::Copy { val } => Inst::Copy { val: f(val) },
        Inst::Unreachable => Inst::Unreachable,
    }
}

/// Renames every register to `v<k>` and every abstract constant to
/// `C<k>`, numbering by first appearance: source statements (operands
/// before the defined name), then target statements, then the
/// precondition. The numbering depends only on structure, so any two
/// alpha-variants of one transform rename to the identical term.
fn alpha_rename(t: &Transform) -> Transform {
    let mut r = Renamer::default();
    for stmt in t.source.iter().chain(&t.target) {
        for op in stmt.inst.operands() {
            r.see_operand(op);
        }
        if let Some(n) = &stmt.name {
            r.see_reg(n);
        }
    }
    r.see_pred(&t.pre);
    Transform {
        name: t.name.clone(),
        pre: r.map_pred(&t.pre),
        source: t
            .source
            .iter()
            .map(|s| Stmt {
                name: s.name.as_deref().map(|n| r.reg(n)),
                inst: map_inst(&s.inst, &|op| r.map_operand(op)),
            })
            .collect(),
        target: t
            .target
            .iter()
            .map(|s| Stmt {
                name: s.name.as_deref().map(|n| r.reg(n)),
                inst: map_inst(&s.inst, &|op| r.map_operand(op)),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Structural normalization (commutativity, flags, precondition)
// ---------------------------------------------------------------------------

/// Is the integer operation commutative (safe to reorder its operands)?
fn binop_commutes(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// Sort key for commutative operands: registers first, then constants,
/// then `undef`, ties broken by printed form. Registers-first matches the
/// corpus's prevailing `op %x, C` style, so most transforms are already
/// canonical.
fn operand_key(op: &Operand) -> (u8, String) {
    let rank = match op {
        Operand::Reg(..) => 0,
        Operand::Const(..) => 1,
        Operand::Undef(..) => 2,
    };
    (rank, op.to_string())
}

/// Mirrors a "greater" comparison into its "less" dual; returns the new
/// predicate and whether the operands must swap.
fn mirror_icmp(pred: ICmpPred) -> (ICmpPred, bool) {
    match pred {
        ICmpPred::Sgt => (ICmpPred::Slt, true),
        ICmpPred::Sge => (ICmpPred::Sle, true),
        ICmpPred::Ugt => (ICmpPred::Ult, true),
        ICmpPred::Uge => (ICmpPred::Ule, true),
        p => (p, false),
    }
}

/// Mirrors a "greater" precondition comparison into its "less" dual.
fn mirror_pred_cmp(op: PredCmpOp) -> (PredCmpOp, bool) {
    match op {
        PredCmpOp::Sgt => (PredCmpOp::Slt, true),
        PredCmpOp::Sge => (PredCmpOp::Sle, true),
        PredCmpOp::Ugt => (PredCmpOp::Ult, true),
        PredCmpOp::Uge => (PredCmpOp::Ule, true),
        op => (op, false),
    }
}

/// Is the constant-expression operator commutative?
fn cbinop_commutes(op: CBinop) -> bool {
    matches!(
        op,
        CBinop::Add | CBinop::Mul | CBinop::And | CBinop::Or | CBinop::Xor
    )
}

/// Normalizes a constant expression: recurse, then order the operands of
/// commutative operators by printed form.
fn canon_cexpr(e: &CExpr) -> CExpr {
    match e {
        CExpr::Lit(n) => CExpr::Lit(*n),
        CExpr::Sym(s) => CExpr::Sym(s.clone()),
        CExpr::Unop(op, a) => CExpr::Unop(*op, Box::new(canon_cexpr(a))),
        CExpr::Binop(op, a, b) => {
            let mut a = canon_cexpr(a);
            let mut b = canon_cexpr(b);
            if cbinop_commutes(*op) && b.to_string() < a.to_string() {
                std::mem::swap(&mut a, &mut b);
            }
            CExpr::Binop(*op, Box::new(a), Box::new(b))
        }
        CExpr::Fun(name, args) => CExpr::Fun(
            name.clone(),
            args.iter()
                .map(|a| match a {
                    CExprArg::Expr(e) => CExprArg::Expr(canon_cexpr(e)),
                    CExprArg::Reg(r) => CExprArg::Reg(r.clone()),
                })
                .collect(),
        ),
    }
}

/// Flattens an `&&` (or `||`) spine into its leaves.
fn flatten_pred(p: Pred, conj: bool, out: &mut Vec<Pred>) {
    match (conj, p) {
        (true, Pred::And(a, b)) => {
            flatten_pred(*a, true, out);
            flatten_pred(*b, true, out);
        }
        (false, Pred::Or(a, b)) => {
            flatten_pred(*a, false, out);
            flatten_pred(*b, false, out);
        }
        (_, leaf) => out.push(leaf),
    }
}

/// Rebuilds a sorted, deduplicated leaf list into a right-leaning spine.
fn rebuild_pred(mut leaves: Vec<Pred>, conj: bool) -> Pred {
    leaves.sort_by_key(|p| p.to_string());
    leaves.dedup();
    let mut it = leaves.into_iter().rev();
    let Some(last) = it.next() else {
        return Pred::True;
    };
    it.fold(last, |acc, p| {
        if conj {
            Pred::And(Box::new(p), Box::new(acc))
        } else {
            Pred::Or(Box::new(p), Box::new(acc))
        }
    })
}

/// Puts a precondition into normal form: flattened, sorted, deduplicated
/// `&&`/`||` chains; no double negation; `true` identity elements
/// dropped; comparisons mirrored into the `<`-family and `==`/`!=`
/// operands ordered.
fn canon_pred(p: &Pred) -> Pred {
    match p {
        Pred::True => Pred::True,
        Pred::Not(a) => match canon_pred(a) {
            Pred::Not(inner) => *inner,
            inner => Pred::Not(Box::new(inner)),
        },
        Pred::And(..) => {
            let mut leaves = Vec::new();
            flatten_pred(p.clone(), true, &mut leaves);
            let canon: Vec<Pred> = leaves
                .iter()
                .map(canon_pred)
                .filter(|l| *l != Pred::True)
                .collect();
            rebuild_pred(canon, true)
        }
        Pred::Or(..) => {
            let mut leaves = Vec::new();
            flatten_pred(p.clone(), false, &mut leaves);
            let canon: Vec<Pred> = leaves.iter().map(canon_pred).collect();
            if canon.contains(&Pred::True) {
                return Pred::True;
            }
            rebuild_pred(canon, false)
        }
        Pred::Cmp(op, a, b) => {
            let mut a = canon_cexpr(a);
            let mut b = canon_cexpr(b);
            let (op, swap) = mirror_pred_cmp(*op);
            if swap {
                std::mem::swap(&mut a, &mut b);
            }
            if matches!(op, PredCmpOp::Eq | PredCmpOp::Ne) && b.to_string() < a.to_string() {
                std::mem::swap(&mut a, &mut b);
            }
            Pred::Cmp(op, a, b)
        }
        Pred::Fun(name, args) => Pred::Fun(
            name.clone(),
            args.iter()
                .map(|a| match a {
                    PredArg::Reg(r) => PredArg::Reg(r.clone()),
                    PredArg::Expr(e) => PredArg::Expr(canon_cexpr(e)),
                })
                .collect(),
        ),
    }
}

/// Normalizes one instruction: sorted attribute list, commutative
/// operands in key order, `icmp` mirrored to the `<`/`==` family,
/// constant expressions normalized.
fn canon_inst(inst: &Inst) -> Inst {
    let inst = map_inst(inst, &|op| match op {
        Operand::Const(e, t) => Operand::Const(canon_cexpr(e), t.clone()),
        other => other.clone(),
    });
    match inst {
        Inst::BinOp {
            op,
            mut flags,
            a,
            b,
        } => {
            flags.sort();
            flags.dedup();
            let (a, b) = if binop_commutes(op) && operand_key(&b) < operand_key(&a) {
                (b, a)
            } else {
                (a, b)
            };
            Inst::BinOp { op, flags, a, b }
        }
        Inst::ICmp { pred, a, b } => {
            let (pred, swap) = mirror_icmp(pred);
            let (mut a, mut b) = if swap { (b, a) } else { (a, b) };
            if matches!(pred, ICmpPred::Eq | ICmpPred::Ne) && operand_key(&b) < operand_key(&a) {
                std::mem::swap(&mut a, &mut b);
            }
            Inst::ICmp { pred, a, b }
        }
        other => other,
    }
}

/// Applies [`canon_inst`] to every statement and [`canon_pred`] to the
/// precondition.
fn normalize_structure(t: &Transform) -> Transform {
    Transform {
        name: t.name.clone(),
        pre: canon_pred(&t.pre),
        source: t
            .source
            .iter()
            .map(|s| Stmt {
                name: s.name.clone(),
                inst: canon_inst(&s.inst),
            })
            .collect(),
        target: t
            .target
            .iter()
            .map(|s| Stmt {
                name: s.name.clone(),
                inst: canon_inst(&s.inst),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_transform;

    fn hash(src: &str) -> u64 {
        canonical_hash(&parse_transform(src).unwrap())
    }

    #[test]
    fn names_do_not_matter() {
        assert_eq!(
            hash("Name: a\n%r = add %x, %y\n=>\n%r = add %y, %x"),
            hash("Name: b\n%q = add %s, %t\n=>\n%q = add %t, %s"),
        );
    }

    #[test]
    fn commuted_operands_do_not_matter() {
        assert_eq!(
            hash("%r = add %x, C\n=>\n%r = %x"),
            hash("%r = add C, %x\n=>\n%r = %x"),
        );
        assert_eq!(
            hash("%r = mul %x, %y\n=>\n%r = mul %y, %x"),
            hash("%r = mul %y, %x\n=>\n%r = mul %x, %y"),
        );
    }

    #[test]
    fn icmp_mirrors() {
        assert_eq!(
            hash("%r = icmp sgt %a, %b\n=>\n%r = icmp slt %b, %a"),
            hash("%r = icmp slt %b, %a\n=>\n%r = icmp sgt %a, %b"),
        );
    }

    #[test]
    fn precondition_conjunct_order_does_not_matter() {
        assert_eq!(
            hash("Pre: isPowerOf2(C1) && C2 == 0\n%r = add %x, C1\n=>\n%r = %x"),
            hash("Pre: C2 == 0 && isPowerOf2(C1)\n%r = add %x, C1\n=>\n%r = %x"),
        );
    }

    #[test]
    fn distinct_operations_hash_differently() {
        assert_ne!(
            hash("%r = add %x, %y\n=>\n%r = %x"),
            hash("%r = sub %x, %y\n=>\n%r = %x"),
        );
        assert_ne!(
            hash("%r = add %x, 1\n=>\n%r = %x"),
            hash("%r = add %x, 2\n=>\n%r = %x"),
        );
    }

    #[test]
    fn noncommutative_operand_order_matters() {
        assert_ne!(
            hash("%r = sub %x, %y\n=>\n%r = %x"),
            hash("%r = sub %y, %x\n=>\n%r = %x"),
        );
        // smin vs smax: the icmp operand order is the only difference.
        assert_ne!(
            hash("%c = icmp slt %a, %b\n%r = select %c, %a, %b\n=>\n%r = %a"),
            hash("%c = icmp slt %b, %a\n%r = select %c, %a, %b\n=>\n%r = %a"),
        );
    }

    #[test]
    fn canonical_form_reparses_and_is_idempotent() {
        for src in [
            "Name: X\nPre: C2 % (1<<C1) == 0\n%s = shl nsw %X, C1\n%r = sdiv %s, C2\n=>\n%r = sdiv %X, C2/(1<<C1)",
            "%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3",
            "Pre: isPowerOf2(%P) && hasOneUse(%Y)\n%s = shl %P, %A\n%Y = lshr %s, %B\n%r = udiv %X, %Y\n=>\n%sub = sub %A, %B\n%Y = shl %P, %sub\n%r = udiv %X, %Y",
            "%p = alloca i8, 4\n%v = load %p\nstore %v, %p\n%r = load %p\n=>\n%r = %v",
            "%r = icmp uge %a, %b\n=>\n%r = icmp ule %b, %a",
        ] {
            let t = parse_transform(src).unwrap();
            let canon = canonicalize(&t);
            let text = canon.to_string();
            let reparsed = parse_transform(&text)
                .unwrap_or_else(|e| panic!("canonical text of\n{src}\nfailed to reparse: {e}"));
            assert_eq!(
                canonicalize(&reparsed),
                canon,
                "canonicalize not idempotent for\n{src}"
            );
            assert_eq!(canonical_hash(&t), canonical_hash(&reparsed));
        }
    }

    #[test]
    fn type_annotations_distinguish() {
        assert_ne!(
            hash("%r = add i8 %x, 1\n=>\n%r = %x"),
            hash("%r = add i16 %x, 1\n=>\n%r = %x"),
        );
    }
}
