//! Tokenizer for the Alive DSL.
//!
//! Newlines are significant (one statement per line), so the lexer emits a
//! `Newline` token; consecutive newlines and comment-only lines collapse.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// `%name`
    Reg(String),
    /// Bare identifier / keyword / abstract constant.
    Ident(String),
    /// Integer literal (decimal or 0x hex), possibly large.
    Num(i128),
    /// `=>`
    Arrow,
    /// `=`
    Equals,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/u`
    SlashU,
    /// `/`
    Slash,
    /// `%u` (unsigned remainder in constant expressions)
    PercentU,
    /// `%` followed by something that is not an identifier start
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `u<`
    ULt,
    /// `u<=`
    ULe,
    /// `u>`
    UGt,
    /// `u>=`
    UGe,
    /// `:`
    Colon,
    /// End of line.
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Reg(r) => write!(f, "%{r}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Arrow => write!(f, "=>"),
            Tok::Equals => write!(f, "="),
            Tok::Comma => write!(f, ","),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::SlashU => write!(f, "/u"),
            Tok::Slash => write!(f, "/"),
            Tok::PercentU => write!(f, "%u"),
            Tok::Percent => write!(f, "%"),
            Tok::Shl => write!(f, "<<"),
            Tok::Shr => write!(f, ">>"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Amp => write!(f, "&"),
            Tok::Pipe => write!(f, "|"),
            Tok::Caret => write!(f, "^"),
            Tok::Tilde => write!(f, "~"),
            Tok::Bang => write!(f, "!"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::ULt => write!(f, "u<"),
            Tok::ULe => write!(f, "u<="),
            Tok::UGt => write!(f, "u>"),
            Tok::UGe => write!(f, "u>="),
            Tok::Colon => write!(f, ":"),
            Tok::Newline => write!(f, "\\n"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position (1-based line/column) for error
/// reporting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

/// Lexical errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at line {}, col {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// A character cursor that tracks the current 1-based line and column.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line = self.line.saturating_add(1);
            self.col = 1;
        } else {
            self.col = self.col.saturating_add(1);
        }
        Some(c)
    }
}

/// Tokenizes Alive source text.
///
/// # Errors
///
/// Returns [`LexError`] on unrecognized characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let mut out: Vec<SpannedTok> = Vec::new();
    let mut chars = Cursor {
        chars: src.chars().peekable(),
        line: 1,
        col: 1,
    };

    let push = |tok: Tok, line: u32, col: u32, out: &mut Vec<SpannedTok>| {
        // Collapse consecutive newlines and drop leading newlines.
        if tok == Tok::Newline {
            match out.last() {
                None => return,
                Some(t) if t.tok == Tok::Newline => return,
                _ => {}
            }
        }
        out.push(SpannedTok { tok, line, col });
    };

    while let Some(c) = chars.peek() {
        // Position of the token's first character.
        let (line, col) = (chars.line, chars.col);
        match c {
            '\n' => {
                chars.next();
                push(Tok::Newline, line, col, &mut out);
            }
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            ';' => {
                // Comment to end of line.
                loop {
                    let (nl_line, nl_col) = (chars.line, chars.col);
                    match chars.next() {
                        Some('\n') => {
                            push(Tok::Newline, nl_line, nl_col, &mut out);
                            break;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
            }
            '%' => {
                chars.next();
                match chars.peek() {
                    Some(c2) if is_ident_start(c2) || c2.is_ascii_digit() => {
                        // A register like %x / %1, except `%u` as an operator
                        // is handled by the parser via context; here `%u`
                        // would lex as register "u". The Alive corpus always
                        // writes registers with longer names or digits, and
                        // `%u` only appears in constant expressions where a
                        // register is also syntactically valid, so we lex as
                        // a register and let the parser reinterpret.
                        let mut name = String::new();
                        while let Some(c3) = chars.peek() {
                            if is_ident_continue(c3) {
                                name.push(c3);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        push(Tok::Reg(name), line, col, &mut out);
                    }
                    _ => push(Tok::Percent, line, col, &mut out),
                }
            }
            '0'..='9' => {
                let mut text = String::new();
                while let Some(c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() {
                        text.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value = if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                    i128::from_str_radix(hex, 16)
                } else {
                    text.parse::<i128>()
                };
                match value {
                    Ok(v) => push(Tok::Num(v), line, col, &mut out),
                    Err(_) => {
                        return Err(LexError {
                            message: format!("malformed number `{text}`"),
                            line,
                            col,
                        })
                    }
                }
            }
            c2 if is_ident_start(c2) => {
                let mut name = String::new();
                while let Some(c3) = chars.peek() {
                    if is_ident_continue(c3) {
                        name.push(c3);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // `u<`, `u<=`, `u>`, `u>=` unsigned comparisons.
                if name == "u" {
                    match chars.peek() {
                        Some('<') => {
                            chars.next();
                            if chars.peek() == Some('=') {
                                chars.next();
                                push(Tok::ULe, line, col, &mut out);
                            } else {
                                push(Tok::ULt, line, col, &mut out);
                            }
                            continue;
                        }
                        Some('>') => {
                            chars.next();
                            if chars.peek() == Some('=') {
                                chars.next();
                                push(Tok::UGe, line, col, &mut out);
                            } else {
                                push(Tok::UGt, line, col, &mut out);
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                push(Tok::Ident(name), line, col, &mut out);
            }
            '=' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        push(Tok::Arrow, line, col, &mut out);
                    }
                    Some('=') => {
                        chars.next();
                        push(Tok::EqEq, line, col, &mut out);
                    }
                    _ => push(Tok::Equals, line, col, &mut out),
                }
            }
            ',' => {
                chars.next();
                push(Tok::Comma, line, col, &mut out);
            }
            '(' => {
                chars.next();
                push(Tok::LParen, line, col, &mut out);
            }
            ')' => {
                chars.next();
                push(Tok::RParen, line, col, &mut out);
            }
            '[' => {
                chars.next();
                push(Tok::LBracket, line, col, &mut out);
            }
            ']' => {
                chars.next();
                push(Tok::RBracket, line, col, &mut out);
            }
            '*' => {
                chars.next();
                push(Tok::Star, line, col, &mut out);
            }
            '+' => {
                chars.next();
                push(Tok::Plus, line, col, &mut out);
            }
            '-' => {
                chars.next();
                push(Tok::Minus, line, col, &mut out);
            }
            '/' => {
                chars.next();
                if chars.peek() == Some('u') {
                    chars.next();
                    push(Tok::SlashU, line, col, &mut out);
                } else {
                    push(Tok::Slash, line, col, &mut out);
                }
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('<') => {
                        chars.next();
                        push(Tok::Shl, line, col, &mut out);
                    }
                    Some('=') => {
                        chars.next();
                        push(Tok::Le, line, col, &mut out);
                    }
                    _ => push(Tok::Lt, line, col, &mut out),
                }
            }
            '>' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        push(Tok::Shr, line, col, &mut out);
                    }
                    Some('=') => {
                        chars.next();
                        push(Tok::Ge, line, col, &mut out);
                    }
                    _ => push(Tok::Gt, line, col, &mut out),
                }
            }
            '&' => {
                chars.next();
                if chars.peek() == Some('&') {
                    chars.next();
                    push(Tok::AndAnd, line, col, &mut out);
                } else {
                    push(Tok::Amp, line, col, &mut out);
                }
            }
            '|' => {
                chars.next();
                if chars.peek() == Some('|') {
                    chars.next();
                    push(Tok::OrOr, line, col, &mut out);
                } else {
                    push(Tok::Pipe, line, col, &mut out);
                }
            }
            '^' => {
                chars.next();
                push(Tok::Caret, line, col, &mut out);
            }
            '~' => {
                chars.next();
                push(Tok::Tilde, line, col, &mut out);
            }
            '!' => {
                chars.next();
                if chars.peek() == Some('=') {
                    chars.next();
                    push(Tok::NotEq, line, col, &mut out);
                } else {
                    push(Tok::Bang, line, col, &mut out);
                }
            }
            ':' => {
                chars.next();
                push(Tok::Colon, line, col, &mut out);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other:?}`"),
                    line,
                    col,
                })
            }
        }
    }
    // Ensure a trailing newline then EOF for uniform statement handling.
    if out.last().map(|t| t.tok != Tok::Newline).unwrap_or(false) {
        out.push(SpannedTok {
            tok: Tok::Newline,
            line: chars.line,
            col: chars.col,
        });
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line: chars.line,
        col: chars.col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_statement() {
        let t = toks("%1 = xor %x, -1");
        assert_eq!(
            t,
            vec![
                Tok::Reg("1".into()),
                Tok::Equals,
                Tok::Ident("xor".into()),
                Tok::Reg("x".into()),
                Tok::Comma,
                Tok::Minus,
                Tok::Num(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrow_and_pre() {
        let t = toks("Pre: C1 u>= C2\n%a = shl nsw %x, C1\n=>\n%a = shl %x, C1");
        assert!(t.contains(&Tok::Arrow));
        assert!(t.contains(&Tok::UGe));
        assert!(t.contains(&Tok::Ident("Pre".into())));
        assert!(t.contains(&Tok::Colon));
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let t = toks("; header comment\n\n\n%x = add %a, %b\n; tail");
        assert_eq!(t[0], Tok::Reg("x".into()));
        let newline_count = t.iter().filter(|x| **x == Tok::Newline).count();
        assert_eq!(newline_count, 1);
    }

    #[test]
    fn hex_numbers() {
        assert_eq!(toks("0xFF")[0], Tok::Num(255));
    }

    #[test]
    fn unsigned_comparisons() {
        assert_eq!(
            toks("u< u<= u> u>=")[..4],
            [Tok::ULt, Tok::ULe, Tok::UGt, Tok::UGe]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<< >> /u / == != && || & | ^ ~ !")[..13],
            [
                Tok::Shl,
                Tok::Shr,
                Tok::SlashU,
                Tok::Slash,
                Tok::EqEq,
                Tok::NotEq,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret,
                Tok::Tilde,
                Tok::Bang
            ]
        );
    }

    #[test]
    fn error_on_garbage() {
        assert!(lex("%x = add $y").is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = lex("%a = add %x, 1\n%b = add %a, 2").unwrap();
        let last_reg = spanned
            .iter()
            .rev()
            .find(|t| matches!(t.tok, Tok::Reg(_)))
            .unwrap();
        assert_eq!(last_reg.line, 2);
    }
}
