//! Abstract syntax of the Alive language (Fig. 1 of the paper).
//!
//! An Alive transformation has the shape
//!
//! ```text
//! Name: <optional name>
//! Pre:  <optional precondition>
//! <source statements>
//! =>
//! <target statements>
//! ```
//!
//! Both templates are DAGs of instructions in SSA form with a common root
//! register. Operands are registers, constant expressions (literals,
//! abstract constants such as `C1`, or arithmetic over them), or `undef`.

use std::fmt;

/// An explicit type annotation.
///
/// Alive types are integers of arbitrary bitwidth, pointers, arrays, and
/// void; unannotated values are polymorphic and resolved by type
/// enumeration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// `iN` — integer of explicit width.
    Int(u32),
    /// `t*` — pointer to `t`.
    Ptr(Box<Type>),
    /// `[n x t]` — array of statically-known size.
    Array(u64, Box<Type>),
    /// `void` (result of `store`/`unreachable`).
    Void,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int(w) => write!(f, "i{w}"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(n, t) => write!(f, "[{n} x {t}]"),
            Type::Void => write!(f, "void"),
        }
    }
}

/// Binary integer operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division.
    UDiv,
    /// Signed division.
    SDiv,
    /// Unsigned remainder.
    URem,
    /// Signed remainder.
    SRem,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl BinOp {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        }
    }

    /// Which instruction attributes this operation accepts (paper Table 2).
    pub fn allowed_flags(self) -> &'static [Flag] {
        match self {
            BinOp::Add | BinOp::Sub | BinOp::Mul => &[Flag::Nsw, Flag::Nuw],
            BinOp::Shl => &[Flag::Nsw, Flag::Nuw],
            BinOp::SDiv | BinOp::UDiv | BinOp::AShr | BinOp::LShr => &[Flag::Exact],
            _ => &[],
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "udiv" => BinOp::UDiv,
            "sdiv" => BinOp::SDiv,
            "urem" => BinOp::URem,
            "srem" => BinOp::SRem,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            _ => return None,
        })
    }

    /// Is this a division or remainder operation?
    pub fn is_div_rem(self) -> bool {
        matches!(self, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem)
    }

    /// Is this a shift?
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::LShr | BinOp::AShr)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Instruction attributes that weaken behavior by adding undefined
/// behavior (`nsw`, `nuw`, `exact`; paper §2.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Flag {
    /// No signed wrap: signed overflow produces poison.
    Nsw,
    /// No unsigned wrap: unsigned overflow produces poison.
    Nuw,
    /// Division/shift must be lossless or the result is poison.
    Exact,
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Flag::Nsw => "nsw",
            Flag::Nuw => "nuw",
            Flag::Exact => "exact",
        })
    }
}

/// Conversion operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConvOp {
    /// Zero extension.
    ZExt,
    /// Sign extension.
    SExt,
    /// Truncation.
    Trunc,
    /// Pointer/array reinterpretation at equal width.
    Bitcast,
    /// Integer to pointer.
    IntToPtr,
    /// Pointer to integer.
    PtrToInt,
}

impl ConvOp {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ConvOp::ZExt => "zext",
            ConvOp::SExt => "sext",
            ConvOp::Trunc => "trunc",
            ConvOp::Bitcast => "bitcast",
            ConvOp::IntToPtr => "inttoptr",
            ConvOp::PtrToInt => "ptrtoint",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<ConvOp> {
        Some(match s {
            "zext" => ConvOp::ZExt,
            "sext" => ConvOp::SExt,
            "trunc" => ConvOp::Trunc,
            "bitcast" => ConvOp::Bitcast,
            "inttoptr" => ConvOp::IntToPtr,
            "ptrtoint" => ConvOp::PtrToInt,
            _ => return None,
        })
    }
}

impl fmt::Display for ConvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// `icmp` comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ICmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
}

impl ICmpPred {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Ugt => "ugt",
            ICmpPred::Uge => "uge",
            ICmpPred::Ult => "ult",
            ICmpPred::Ule => "ule",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<ICmpPred> {
        Some(match s {
            "eq" => ICmpPred::Eq,
            "ne" => ICmpPred::Ne,
            "ugt" => ICmpPred::Ugt,
            "uge" => ICmpPred::Uge,
            "ult" => ICmpPred::Ult,
            "ule" => ICmpPred::Ule,
            "sgt" => ICmpPred::Sgt,
            "sge" => ICmpPred::Sge,
            "slt" => ICmpPred::Slt,
            "sle" => ICmpPred::Sle,
            _ => return None,
        })
    }
}

impl fmt::Display for ICmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary operators in constant expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CUnop {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    Not,
}

/// Binary operators in constant expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CBinop {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    SDiv,
    /// `/u` (unsigned)
    UDiv,
    /// `%` (signed)
    SRem,
    /// `%u` (unsigned)
    URem,
    /// `<<`
    Shl,
    /// `>>` (logical right shift)
    LShr,
    /// `>>a` (arithmetic right shift; also available as `ashr(..)`)
    AShr,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
}

/// A constant expression: literal, abstract constant, or arithmetic over
/// constant expressions (paper §2.1 "Constant expressions").
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CExpr {
    /// A literal integer (stored signed; width comes from type inference).
    Lit(i128),
    /// An abstract constant such as `C`, `C1`, `C2`.
    Sym(String),
    /// Unary operator.
    Unop(CUnop, Box<CExpr>),
    /// Binary operator.
    Binop(CBinop, Box<CExpr>, Box<CExpr>),
    /// Built-in constant function, e.g. `log2(C1)`, `width(%x)`, `abs(C)`.
    Fun(String, Vec<CExprArg>),
}

/// Argument of a constant function: usually a constant expression, but
/// `width(%x)` takes a register.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CExprArg {
    /// A constant expression argument.
    Expr(CExpr),
    /// A register argument (e.g. for `width`).
    Reg(String),
}

impl CExpr {
    /// Symbols (abstract constants) mentioned in this expression.
    pub fn symbols(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk_symbols(&mut out);
        out
    }

    fn walk_symbols<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            CExpr::Lit(_) => {}
            CExpr::Sym(s) => out.push(s),
            CExpr::Unop(_, a) => a.walk_symbols(out),
            CExpr::Binop(_, a, b) => {
                a.walk_symbols(out);
                b.walk_symbols(out);
            }
            CExpr::Fun(_, args) => {
                for a in args {
                    if let CExprArg::Expr(e) = a {
                        e.walk_symbols(out);
                    }
                }
            }
        }
    }
}

/// Comparison operators inside preconditions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredCmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed)
    Slt,
    /// `<=` (signed)
    Sle,
    /// `>` (signed)
    Sgt,
    /// `>=` (signed)
    Sge,
    /// `u<`
    Ult,
    /// `u<=`
    Ule,
    /// `u>`
    Ugt,
    /// `u>=`
    Uge,
}

/// A precondition (paper §2.3): built-in predicates combined with the
/// usual logical connectives, plus comparisons of constant expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pred {
    /// The trivially true precondition.
    True,
    /// Negation.
    Not(Box<Pred>),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Comparison of two constant expressions.
    Cmp(PredCmpOp, CExpr, CExpr),
    /// Built-in predicate application, e.g. `isPowerOf2(C1)`,
    /// `MaskedValueIsZero(%V, ~C1)`.
    Fun(String, Vec<PredArg>),
}

/// Argument of a built-in predicate.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PredArg {
    /// A register (input or temporary).
    Reg(String),
    /// A constant expression.
    Expr(CExpr),
}

/// An instruction operand.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A register `%x`, with an optional explicit type annotation.
    Reg(String, Option<Type>),
    /// A constant expression, with an optional explicit type annotation.
    Const(CExpr, Option<Type>),
    /// The `undef` value, with an optional explicit type annotation.
    Undef(Option<Type>),
}

impl Operand {
    /// The register name, if this operand is a register.
    pub fn reg_name(&self) -> Option<&str> {
        match self {
            Operand::Reg(n, _) => Some(n),
            _ => None,
        }
    }

    /// The explicit type annotation, if any.
    pub fn type_annotation(&self) -> Option<&Type> {
        match self {
            Operand::Reg(_, t) | Operand::Const(_, t) | Operand::Undef(t) => t.as_ref(),
        }
    }
}

/// An instruction (right-hand side of a statement).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `binop [flags] a, b`
    BinOp {
        /// The operation.
        op: BinOp,
        /// Poison-introducing attributes present on the instruction.
        flags: Vec<Flag>,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `conv a [to ty]` — conversions; the optional explicit result type
    /// constrains type enumeration.
    Conv {
        /// The conversion operation.
        op: ConvOp,
        /// Operand being converted.
        arg: Operand,
        /// Optional explicit result type.
        to: Option<Type>,
    },
    /// `select c, a, b`
    Select {
        /// The i1 condition.
        cond: Operand,
        /// Value if true.
        on_true: Operand,
        /// Value if false.
        on_false: Operand,
    },
    /// `icmp pred a, b`
    ICmp {
        /// Comparison predicate.
        pred: ICmpPred,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `alloca ty, count` — stack allocation.
    Alloca {
        /// Element type.
        ty: Type,
        /// Number of elements (a constant expression; defaults to 1).
        count: Operand,
    },
    /// `load ptr`
    Load {
        /// The pointer operand.
        ptr: Operand,
    },
    /// `store val, ptr` (void result; statement has no name).
    Store {
        /// The value stored.
        val: Operand,
        /// The pointer stored to.
        ptr: Operand,
    },
    /// `getelementptr ptr, idx...`
    Gep {
        /// Base pointer.
        ptr: Operand,
        /// Index operands.
        idxs: Vec<Operand>,
    },
    /// Explicit copy `%x = op` (Alive extension over LLVM).
    Copy {
        /// The copied operand.
        val: Operand,
    },
    /// `unreachable`.
    Unreachable,
}

impl Inst {
    /// All operands of the instruction, in order.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Inst::BinOp { a, b, .. } => vec![a, b],
            Inst::Conv { arg, .. } => vec![arg],
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => vec![cond, on_true, on_false],
            Inst::ICmp { a, b, .. } => vec![a, b],
            Inst::Alloca { count, .. } => vec![count],
            Inst::Load { ptr } => vec![ptr],
            Inst::Store { val, ptr } => vec![val, ptr],
            Inst::Gep { ptr, idxs } => {
                let mut v = vec![ptr];
                v.extend(idxs.iter());
                v
            }
            Inst::Copy { val } => vec![val],
            Inst::Unreachable => vec![],
        }
    }

    /// Register names used by the instruction.
    pub fn used_regs(&self) -> Vec<&str> {
        self.operands()
            .into_iter()
            .filter_map(Operand::reg_name)
            .collect()
    }

    /// Does the instruction produce a value (false for store/unreachable)?
    pub fn has_result(&self) -> bool {
        !matches!(self, Inst::Store { .. } | Inst::Unreachable)
    }

    /// Does the instruction access memory (sequence point; paper §3.3.1)?
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Alloca { .. } | Inst::Gep { .. }
        )
    }
}

/// A statement: an optional result register bound to an instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Stmt {
    /// The defined register (None for `store`/`unreachable`).
    pub name: Option<String>,
    /// The instruction.
    pub inst: Inst,
}

/// A complete Alive transformation: `source => target` with an optional
/// precondition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transform {
    /// The optional `Name:` header.
    pub name: Option<String>,
    /// The precondition (`Pred::True` when absent).
    pub pre: Pred,
    /// Source template statements, in program order.
    pub source: Vec<Stmt>,
    /// Target template statements, in program order.
    pub target: Vec<Stmt>,
}

impl Transform {
    /// The root register: the value defined by the last source statement
    /// that produces a result.
    ///
    /// # Panics
    ///
    /// Panics if the source template defines no values (rejected by
    /// [`validate`](crate::validate::validate)).
    pub fn root(&self) -> &str {
        self.source
            .iter()
            .rev()
            .find_map(|s| s.name.as_deref())
            .expect("source template defines no values")
    }

    /// Registers defined in the source template, in order.
    pub fn source_defs(&self) -> Vec<&str> {
        self.source
            .iter()
            .filter_map(|s| s.name.as_deref())
            .collect()
    }

    /// Registers defined in the target template, in order.
    pub fn target_defs(&self) -> Vec<&str> {
        self.target
            .iter()
            .filter_map(|s| s.name.as_deref())
            .collect()
    }

    /// Input registers: used in the source but not defined by it.
    pub fn inputs(&self) -> Vec<&str> {
        let defs: Vec<&str> = self.source_defs();
        let mut out: Vec<&str> = Vec::new();
        for s in &self.source {
            for r in s.inst.used_regs() {
                if !defs.contains(&r) && !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// All abstract constant symbols appearing anywhere in the transform.
    pub fn constant_symbols(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |e: &CExpr| {
            for s in e.symbols() {
                if !out.iter().any(|x| x == s) {
                    out.push(s.to_string());
                }
            }
        };
        for stmt in self.source.iter().chain(&self.target) {
            for op in stmt.inst.operands() {
                if let Operand::Const(e, _) = op {
                    push(e);
                }
            }
        }
        // Also collect from the precondition.
        fn pred_syms(p: &Pred, out: &mut Vec<String>) {
            match p {
                Pred::True => {}
                Pred::Not(a) => pred_syms(a, out),
                Pred::And(a, b) | Pred::Or(a, b) => {
                    pred_syms(a, out);
                    pred_syms(b, out);
                }
                Pred::Cmp(_, a, b) => {
                    for s in a.symbols().into_iter().chain(b.symbols()) {
                        if !out.iter().any(|x| x == s) {
                            out.push(s.to_string());
                        }
                    }
                }
                Pred::Fun(_, args) => {
                    for a in args {
                        if let PredArg::Expr(e) = a {
                            for s in e.symbols() {
                                if !out.iter().any(|x| x == s) {
                                    out.push(s.to_string());
                                }
                            }
                        }
                    }
                }
            }
        }
        pred_syms(&self.pre, &mut out);
        out
    }
}
