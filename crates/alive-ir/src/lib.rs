//! The Alive domain-specific language.
//!
//! Alive (PLDI 2015) is a DSL for specifying LLVM peephole optimizations
//! as `source => target` templates with optional preconditions. This crate
//! implements the language front end:
//!
//! * [`ast`] — the abstract syntax (Fig. 1 of the paper): instructions,
//!   operands, constant expressions, preconditions, types;
//! * [`lexer`] / [`parser`] — text to AST ([`parse_transform`],
//!   [`parse_transforms`]);
//! * a pretty-printer (the [`std::fmt::Display`] impls) that round-trips
//!   with the parser;
//! * [`validate()`] — the scoping and SSA well-formedness rules of §2.1;
//! * [`canon`] — semantics-preserving canonical forms and the content
//!   hash ([`canonical_hash`]) that gives every optimization a stable
//!   identity (the verdict-cache key of `alive serve`).
//!
//! # Examples
//!
//! ```
//! use alive_ir::{parse_transform, validate};
//!
//! let t = parse_transform(r"
//! Pre: isPowerOf2(C1)
//! %r = mul nsw %x, C1
//! =>
//! %r = shl nsw %x, log2(C1)
//! ").unwrap();
//! validate(&t).unwrap();
//! assert_eq!(t.root(), "r");
//! assert_eq!(t.inputs(), vec!["x"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod canon;
pub mod lexer;
pub mod parser;
mod printer;
pub mod validate;

pub use canon::{canonical_hash, canonical_text, canonicalize};

pub use ast::{
    BinOp, CBinop, CExpr, CExprArg, CUnop, ConvOp, Flag, ICmpPred, Inst, Operand, Pred, PredArg,
    PredCmpOp, Stmt, Transform, Type,
};
pub use lexer::{lex, LexError};
pub use parser::{parse_transform, parse_transforms, ParseError};
pub use validate::{validate, ValidateError};
