//! Recursive-descent parser for the Alive DSL.
//!
//! The accepted grammar follows Fig. 1 of the paper plus the headers used
//! throughout (`Name:`/`Pre:`), LLVM-style optional type annotations
//! (`add i8 %x, %y`, `zext i8 %x to i16`), constant expressions, and
//! precondition predicates.

use crate::ast::*;
use crate::lexer::{lex, LexError, SpannedTok, Tok};
use std::fmt;

/// Parse errors with source line/column information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, col {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Maximum nesting depth for recursive grammar productions (parenthesized
/// expressions, unary chains, array types). Bounds stack growth on
/// adversarial inputs such as a megabyte of `(` or `~`. Each level crosses
/// the whole precedence chain (~8 stack frames), so the cap must stay well
/// under the 2 MiB default thread stack even in debug builds; real Alive
/// preconditions nest a handful of levels at most.
const MAX_DEPTH: u32 = 64;

/// Parses a single transformation.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// let t = alive_ir::parse_transform(r"
/// %1 = xor %x, -1
/// %2 = add %1, C
/// =>
/// %2 = sub C-1, %x
/// ").unwrap();
/// assert_eq!(t.root(), "2");
/// assert_eq!(t.inputs(), vec!["x"]);
/// ```
pub fn parse_transform(src: &str) -> Result<Transform, ParseError> {
    let mut transforms = parse_transforms(src)?;
    match transforms.len() {
        1 => Ok(transforms.pop().expect("len checked")),
        0 => Err(ParseError {
            message: "no transformation found".into(),
            line: 1,
            col: 1,
        }),
        n => Err(ParseError {
            message: format!("expected one transformation, found {n}"),
            line: 1,
            col: 1,
        }),
    }
}

/// Parses a file that may contain several transformations, each introduced
/// by an optional `Name:` header.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse_transforms(src: &str) -> Result<Vec<Transform>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut out = Vec::new();
    p.skip_newlines();
    while !p.at(&Tok::Eof) {
        out.push(p.transform()?);
        p.skip_newlines();
    }
    Ok(out)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn col(&self) -> u32 {
        self.toks[self.pos].col
    }

    /// Runs a recursive production with the nesting-depth budget charged;
    /// the budget is released on both success and error so backtracking
    /// (e.g. in `pred_atom`) stays balanced.
    fn with_depth<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("expression nesting too deep".into()));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.at(t) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            line: self.line(),
            col: self.col(),
        }
    }

    fn skip_newlines(&mut self) {
        while self.at(&Tok::Newline) {
            self.bump();
        }
    }

    fn transform(&mut self) -> Result<Transform, ParseError> {
        let mut name = None;
        let mut pre = Pred::True;

        // Optional headers in any order (Name:, Pre:).
        loop {
            match self.peek() {
                Tok::Ident(s) if s == "Name" && *self.peek2() == Tok::Colon => {
                    self.bump();
                    self.bump();
                    name = Some(self.rest_of_line());
                }
                Tok::Ident(s) if s == "Pre" && *self.peek2() == Tok::Colon => {
                    self.bump();
                    self.bump();
                    pre = self.pred()?;
                    self.expect(&Tok::Newline)?;
                }
                _ => break,
            }
            self.skip_newlines();
        }

        let source = self.stmts_until_arrow()?;
        self.expect(&Tok::Arrow)?;
        self.expect(&Tok::Newline)?;
        let target = self.stmts_until_end()?;
        Ok(Transform {
            name,
            pre,
            source,
            target,
        })
    }

    fn rest_of_line(&mut self) -> String {
        let mut s = String::new();
        while !self.at(&Tok::Newline) && !self.at(&Tok::Eof) {
            let t = self.bump();
            s.push_str(&t.to_string());
        }
        if self.at(&Tok::Newline) {
            self.bump();
        }
        s
    }

    fn stmts_until_arrow(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        self.skip_newlines();
        while !self.at(&Tok::Arrow) {
            if self.at(&Tok::Eof) {
                return Err(self.err("unexpected end of input before `=>`".into()));
            }
            out.push(self.stmt()?);
            self.skip_newlines();
        }
        Ok(out)
    }

    fn stmts_until_end(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        self.skip_newlines();
        // A target ends at EOF or at the start of the next transformation
        // (`Name:` header).
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(s) if s == "Name" && *self.peek2() == Tok::Colon => break,
                _ => {}
            }
            out.push(self.stmt()?);
            self.skip_newlines();
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if s == "store" => {
                self.bump();
                let val = self.operand()?;
                self.expect(&Tok::Comma)?;
                let ptr = self.operand()?;
                self.end_of_stmt()?;
                Ok(Stmt {
                    name: None,
                    inst: Inst::Store { val, ptr },
                })
            }
            Tok::Ident(s) if s == "unreachable" => {
                self.bump();
                self.end_of_stmt()?;
                Ok(Stmt {
                    name: None,
                    inst: Inst::Unreachable,
                })
            }
            Tok::Reg(name) => {
                self.bump();
                self.expect(&Tok::Equals)?;
                let inst = self.inst()?;
                self.end_of_stmt()?;
                Ok(Stmt {
                    name: Some(name),
                    inst,
                })
            }
            other => Err(self.err(format!("expected a statement, found `{other}`"))),
        }
    }

    fn end_of_stmt(&mut self) -> Result<(), ParseError> {
        if self.at(&Tok::Newline) {
            self.bump();
            Ok(())
        } else if self.at(&Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected end of statement, found `{}`",
                self.peek()
            )))
        }
    }

    fn inst(&mut self) -> Result<Inst, ParseError> {
        if let Tok::Ident(mnemonic) = self.peek().clone() {
            if let Some(op) = BinOp::from_mnemonic(&mnemonic) {
                self.bump();
                let mut flags = Vec::new();
                while let Tok::Ident(f) = self.peek().clone() {
                    match f.as_str() {
                        "nsw" => {
                            self.bump();
                            flags.push(Flag::Nsw);
                        }
                        "nuw" => {
                            self.bump();
                            flags.push(Flag::Nuw);
                        }
                        "exact" => {
                            self.bump();
                            flags.push(Flag::Exact);
                        }
                        _ => break,
                    }
                }
                let ann = self.try_type()?;
                let mut a = self.operand()?;
                self.expect(&Tok::Comma)?;
                let mut b = self.operand()?;
                if let Some(t) = &ann {
                    annotate(&mut a, t);
                    annotate(&mut b, t);
                }
                return Ok(Inst::BinOp { op, flags, a, b });
            }
            if let Some(op) = ConvOp::from_mnemonic(&mnemonic) {
                self.bump();
                let arg = self.operand()?;
                let mut to = None;
                if let Tok::Ident(s) = self.peek().clone() {
                    if s == "to" {
                        self.bump();
                        to = Some(self.ty()?);
                    }
                }
                return Ok(Inst::Conv { op, arg, to });
            }
            match mnemonic.as_str() {
                "select" => {
                    self.bump();
                    let cond = self.operand()?;
                    self.expect(&Tok::Comma)?;
                    let on_true = self.operand()?;
                    self.expect(&Tok::Comma)?;
                    let on_false = self.operand()?;
                    return Ok(Inst::Select {
                        cond,
                        on_true,
                        on_false,
                    });
                }
                "icmp" => {
                    self.bump();
                    let pred = match self.bump() {
                        Tok::Ident(p) => ICmpPred::from_mnemonic(&p)
                            .ok_or_else(|| self.err(format!("unknown icmp predicate `{p}`")))?,
                        other => {
                            return Err(
                                self.err(format!("expected icmp predicate, found `{other}`"))
                            )
                        }
                    };
                    let ann = self.try_type()?;
                    let mut a = self.operand()?;
                    self.expect(&Tok::Comma)?;
                    let mut b = self.operand()?;
                    if let Some(t) = &ann {
                        annotate(&mut a, t);
                        annotate(&mut b, t);
                    }
                    return Ok(Inst::ICmp { pred, a, b });
                }
                "alloca" => {
                    self.bump();
                    let ty = self.ty()?;
                    let count = if self.at(&Tok::Comma) {
                        self.bump();
                        self.operand()?
                    } else {
                        Operand::Const(CExpr::Lit(1), None)
                    };
                    return Ok(Inst::Alloca { ty, count });
                }
                "load" => {
                    self.bump();
                    let ptr = self.operand()?;
                    return Ok(Inst::Load { ptr });
                }
                "getelementptr" => {
                    self.bump();
                    let ptr = self.operand()?;
                    let mut idxs = Vec::new();
                    while self.at(&Tok::Comma) {
                        self.bump();
                        idxs.push(self.operand()?);
                    }
                    return Ok(Inst::Gep { ptr, idxs });
                }
                _ => {}
            }
        }
        // Fallback: a bare operand is a copy (`%x = %y` / `%x = C+1`).
        let val = self.operand()?;
        Ok(Inst::Copy { val })
    }

    /// Parses an operand: optional type annotation then register, `undef`,
    /// or a constant expression.
    fn operand(&mut self) -> Result<Operand, ParseError> {
        let ty = self.try_type()?;
        match self.peek().clone() {
            Tok::Reg(name) => {
                self.bump();
                Ok(Operand::Reg(name, ty))
            }
            Tok::Ident(s) if s == "undef" => {
                self.bump();
                Ok(Operand::Undef(ty))
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Operand::Const(CExpr::Lit(1), Some(Type::Int(1))))
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Operand::Const(CExpr::Lit(0), Some(Type::Int(1))))
            }
            Tok::Ident(s) if s == "null" => {
                self.bump();
                Ok(Operand::Const(CExpr::Lit(0), ty))
            }
            _ => {
                let e = self.cexpr()?;
                Ok(Operand::Const(e, ty))
            }
        }
    }

    /// Tries to parse a type if the next tokens look like one.
    fn try_type(&mut self) -> Result<Option<Type>, ParseError> {
        match self.peek() {
            Tok::Ident(s) if is_int_type(s) || s == "void" => Ok(Some(self.ty()?)),
            Tok::LBracket => Ok(Some(self.ty()?)),
            _ => Ok(None),
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        self.with_depth(Self::ty_inner)
    }

    fn ty_inner(&mut self) -> Result<Type, ParseError> {
        let mut base = match self.bump() {
            Tok::Ident(s) if is_int_type(&s) => {
                // `is_int_type` only checks the digits; the value may still
                // overflow `u32` (e.g. `i4294967296`), so parse fallibly.
                let w: u32 = s[1..]
                    .parse()
                    .map_err(|_| self.err(format!("unsupported bitwidth `{s}`")))?;
                if w == 0 || w > 128 {
                    return Err(self.err(format!("unsupported bitwidth i{w}")));
                }
                Type::Int(w)
            }
            Tok::Ident(s) if s == "void" => Type::Void,
            Tok::LBracket => {
                let n = match self.bump() {
                    Tok::Num(n) if n >= 0 => n as u64,
                    other => return Err(self.err(format!("expected array size, found `{other}`"))),
                };
                match self.bump() {
                    Tok::Ident(x) if x == "x" => {}
                    other => {
                        return Err(self.err(format!("expected `x` in array type, found `{other}`")))
                    }
                }
                let elem = self.ty()?;
                self.expect(&Tok::RBracket)?;
                Type::Array(n, Box::new(elem))
            }
            other => return Err(self.err(format!("expected a type, found `{other}`"))),
        };
        while self.at(&Tok::Star) {
            self.bump();
            base = Type::Ptr(Box::new(base));
        }
        Ok(base)
    }

    // ---- constant expressions ----
    //
    // Precedence (low to high): `|`  `^`  `&`  `<< >>`  `+ -`  `* / /u % %u`
    // then unary `- ~` and atoms.

    fn cexpr(&mut self) -> Result<CExpr, ParseError> {
        self.cexpr_or()
    }

    fn cexpr_or(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.cexpr_xor()?;
        while self.at(&Tok::Pipe) {
            self.bump();
            let rhs = self.cexpr_xor()?;
            lhs = CExpr::Binop(CBinop::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cexpr_xor(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.cexpr_and()?;
        while self.at(&Tok::Caret) {
            self.bump();
            let rhs = self.cexpr_and()?;
            lhs = CExpr::Binop(CBinop::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cexpr_and(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.cexpr_shift()?;
        while self.at(&Tok::Amp) {
            self.bump();
            let rhs = self.cexpr_shift()?;
            lhs = CExpr::Binop(CBinop::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cexpr_shift(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.cexpr_add()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => CBinop::Shl,
                Tok::Shr => CBinop::LShr,
                _ => break,
            };
            self.bump();
            let rhs = self.cexpr_add()?;
            lhs = CExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cexpr_add(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.cexpr_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => CBinop::Add,
                Tok::Minus => CBinop::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.cexpr_mul()?;
            lhs = CExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cexpr_mul(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.cexpr_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => CBinop::Mul,
                Tok::Slash => CBinop::SDiv,
                Tok::SlashU => CBinop::UDiv,
                Tok::Percent => CBinop::SRem,
                Tok::PercentU => CBinop::URem,
                // `%u` lexes as a register named `u` (see lexer); in infix
                // position it can only mean unsigned remainder.
                Tok::Reg(r) if r == "u" => CBinop::URem,
                _ => break,
            };
            self.bump();
            let rhs = self.cexpr_unary()?;
            lhs = CExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cexpr_unary(&mut self) -> Result<CExpr, ParseError> {
        // Every recursive constant-expression path (parenthesized atoms,
        // unary chains, function arguments) passes through here, so one
        // depth charge bounds them all.
        self.with_depth(Self::cexpr_unary_inner)
    }

    fn cexpr_unary_inner(&mut self) -> Result<CExpr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.cexpr_unary()?;
                Ok(match e {
                    CExpr::Lit(n) => CExpr::Lit(-n),
                    other => CExpr::Unop(CUnop::Neg, Box::new(other)),
                })
            }
            Tok::Tilde => {
                self.bump();
                let e = self.cexpr_unary()?;
                Ok(CExpr::Unop(CUnop::Not, Box::new(e)))
            }
            _ => self.cexpr_atom(),
        }
    }

    fn cexpr_atom(&mut self) -> Result<CExpr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(CExpr::Lit(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.cexpr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.at(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.cexpr_fun_arg()?);
                            if self.at(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(CExpr::Fun(name, args))
                } else {
                    Ok(CExpr::Sym(name))
                }
            }
            other => Err(self.err(format!("expected a constant expression, found `{other}`"))),
        }
    }

    fn cexpr_fun_arg(&mut self) -> Result<CExprArg, ParseError> {
        if let Tok::Reg(name) = self.peek().clone() {
            // Registers are only valid as direct arguments (e.g. width(%x),
            // MaskedValueIsZero(%V, ~C1)); they cannot participate in
            // arithmetic inside constant expressions.
            self.bump();
            return Ok(CExprArg::Reg(name));
        }
        Ok(CExprArg::Expr(self.cexpr()?))
    }

    // ---- preconditions ----

    fn pred(&mut self) -> Result<Pred, ParseError> {
        self.pred_or()
    }

    fn pred_or(&mut self) -> Result<Pred, ParseError> {
        let mut lhs = self.pred_and()?;
        while self.at(&Tok::OrOr) {
            self.bump();
            let rhs = self.pred_and()?;
            lhs = Pred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pred_and(&mut self) -> Result<Pred, ParseError> {
        let mut lhs = self.pred_unary()?;
        while self.at(&Tok::AndAnd) {
            self.bump();
            let rhs = self.pred_unary()?;
            lhs = Pred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pred_unary(&mut self) -> Result<Pred, ParseError> {
        // Covers `!` chains and parenthesized predicates (which loop back
        // through `pred` → `pred_or` → `pred_and` → here).
        self.with_depth(Self::pred_unary_inner)
    }

    fn pred_unary_inner(&mut self) -> Result<Pred, ParseError> {
        if self.at(&Tok::Bang) {
            self.bump();
            let p = self.pred_unary()?;
            return Ok(Pred::Not(Box::new(p)));
        }
        self.pred_atom()
    }

    fn pred_atom(&mut self) -> Result<Pred, ParseError> {
        if self.at(&Tok::LParen) {
            // Could be a parenthesized predicate or a parenthesized constant
            // expression starting a comparison. Try predicate first via
            // backtracking.
            let save = self.pos;
            self.bump();
            if let Ok(p) = self.pred() {
                if self.at(&Tok::RParen) {
                    self.bump();
                    // If a comparison operator follows, this was actually a
                    // parenthesized constant expression; fall through.
                    if self.peek_cmp_op().is_none() {
                        return Ok(p);
                    }
                }
            }
            self.pos = save;
        }
        if let Tok::Ident(s) = self.peek().clone() {
            if s == "true" && !matches!(self.peek2(), Tok::LParen) {
                self.bump();
                return Ok(Pred::True);
            }
        }
        // Parse a constant expression, then require a comparison or a
        // predicate function call.
        let lhs = self.cexpr()?;
        if let Some(op) = self.peek_cmp_op() {
            self.bump();
            let rhs = self.cexpr()?;
            return Ok(Pred::Cmp(op, lhs, rhs));
        }
        match lhs {
            CExpr::Fun(name, args) => {
                let pargs = args
                    .into_iter()
                    .map(|a| match a {
                        CExprArg::Reg(r) => PredArg::Reg(r),
                        CExprArg::Expr(e) => PredArg::Expr(e),
                    })
                    .collect();
                Ok(Pred::Fun(name, pargs))
            }
            other => Err(self.err(format!(
                "expected comparison or predicate, found bare expression {other:?}"
            ))),
        }
    }

    fn peek_cmp_op(&self) -> Option<PredCmpOp> {
        Some(match self.peek() {
            Tok::EqEq => PredCmpOp::Eq,
            Tok::NotEq => PredCmpOp::Ne,
            Tok::Lt => PredCmpOp::Slt,
            Tok::Le => PredCmpOp::Sle,
            Tok::Gt => PredCmpOp::Sgt,
            Tok::Ge => PredCmpOp::Sge,
            Tok::ULt => PredCmpOp::Ult,
            Tok::ULe => PredCmpOp::Ule,
            Tok::UGt => PredCmpOp::Ugt,
            Tok::UGe => PredCmpOp::Uge,
            _ => return None,
        })
    }
}

fn is_int_type(s: &str) -> bool {
    s.len() >= 2 && s.starts_with('i') && s[1..].chars().all(|c| c.is_ascii_digit())
}

fn annotate(op: &mut Operand, ty: &Type) {
    match op {
        Operand::Reg(_, t) | Operand::Const(_, t) | Operand::Undef(t) => {
            if t.is_none() {
                *t = Some(ty.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intro_example() {
        let t = parse_transform("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x").unwrap();
        assert_eq!(t.root(), "2");
        assert_eq!(t.inputs(), vec!["x"]);
        assert_eq!(t.constant_symbols(), vec!["C".to_string()]);
        assert_eq!(t.source.len(), 2);
        assert_eq!(t.target.len(), 1);
        match &t.target[0].inst {
            Inst::BinOp {
                op: BinOp::Sub, a, ..
            } => match a {
                Operand::Const(CExpr::Binop(CBinop::Sub, lhs, rhs), _) => {
                    assert_eq!(**lhs, CExpr::Sym("C".into()));
                    assert_eq!(**rhs, CExpr::Lit(1));
                }
                other => panic!("unexpected operand {other:?}"),
            },
            other => panic!("unexpected inst {other:?}"),
        }
    }

    #[test]
    fn figure2_example_with_pre() {
        let t = parse_transform(
            "Pre: C2 == 0 && MaskedValueIsZero(%V, ~C1)\n\
             %t0 = or %B, %V\n\
             %t1 = and %t0, C1\n\
             %t2 = and %B, C2\n\
             %R = or %t1, %t2\n\
             =>\n\
             %R = and %t0, (C1 | C2)",
        )
        .unwrap();
        assert_eq!(t.root(), "R");
        match &t.pre {
            Pred::And(l, r) => {
                assert!(matches!(**l, Pred::Cmp(PredCmpOp::Eq, _, _)));
                match &**r {
                    Pred::Fun(name, args) => {
                        assert_eq!(name, "MaskedValueIsZero");
                        assert_eq!(args.len(), 2);
                        assert!(matches!(args[0], PredArg::Reg(_)));
                        assert!(matches!(args[1], PredArg::Expr(CExpr::Unop(CUnop::Not, _))));
                    }
                    other => panic!("unexpected pred {other:?}"),
                }
            }
            other => panic!("unexpected pre {other:?}"),
        }
    }

    #[test]
    fn nsw_flags_and_typed_operands() {
        let t =
            parse_transform("%1 = add nsw i32 %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true").unwrap();
        match &t.source[0].inst {
            Inst::BinOp { op, flags, a, .. } => {
                assert_eq!(*op, BinOp::Add);
                assert_eq!(flags, &[Flag::Nsw]);
                assert_eq!(a.type_annotation(), Some(&Type::Int(32)));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &t.target[0].inst {
            Inst::Copy { val } => {
                assert_eq!(val, &Operand::Const(CExpr::Lit(1), Some(Type::Int(1))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_undef_example() {
        let t = parse_transform("%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3").unwrap();
        match &t.source[0].inst {
            Inst::Select { cond, on_true, .. } => {
                assert!(matches!(cond, Operand::Undef(None)));
                assert_eq!(on_true, &Operand::Const(CExpr::Lit(-1), Some(Type::Int(4))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pr21245_precondition() {
        let t = parse_transform(
            "Pre: C2 % (1<<C1) == 0\n\
             %s = shl nsw %X, C1\n\
             %r = sdiv %s, C2\n\
             =>\n\
             %r = sdiv %X, C2/(1<<C1)",
        )
        .unwrap();
        assert!(matches!(t.pre, Pred::Cmp(PredCmpOp::Eq, _, _)));
    }

    #[test]
    fn named_transforms_in_one_file() {
        let ts = parse_transforms(
            "Name: first\n%r = add %x, 0\n=>\n%r = %x\n\
             Name: second\n%r = mul %x, 1\n=>\n%r = %x\n",
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].name.as_deref(), Some("first"));
        assert_eq!(ts[1].name.as_deref(), Some("second"));
        assert!(matches!(
            ts[1].source[0].inst,
            Inst::BinOp { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn memory_ops() {
        let t = parse_transform(
            "%p = alloca i8, 4\n%v = load %p\nstore %v, %q\n%r = load %q\n=>\n%r = %v",
        )
        .unwrap();
        assert_eq!(t.source.len(), 4);
        assert!(matches!(t.source[0].inst, Inst::Alloca { .. }));
        assert!(matches!(t.source[2].inst, Inst::Store { .. }));
        assert_eq!(t.root(), "r");
    }

    #[test]
    fn gep_with_indices() {
        let t = parse_transform("%p = getelementptr %base, %i, 3\n%v = load %p\n=>\n%v = load %p")
            .unwrap();
        match &t.source[0].inst {
            Inst::Gep { idxs, .. } => assert_eq!(idxs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conversion_with_to() {
        let t = parse_transform("%r = zext i8 %x to i16\n=>\n%r = zext i8 %x to i16").unwrap();
        match &t.source[0].inst {
            Inst::Conv { op, to, arg } => {
                assert_eq!(*op, ConvOp::ZExt);
                assert_eq!(*to, Some(Type::Int(16)));
                assert_eq!(arg.type_annotation(), Some(&Type::Int(8)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precondition_functions_and_logic() {
        let t = parse_transform(
            "Pre: isPowerOf2(%Power) && hasOneUse(%Y) || !isSignBit(C1)\n\
             %r = udiv %X, %Y\n=>\n%r = udiv %X, %Y",
        )
        .unwrap();
        assert!(matches!(t.pre, Pred::Or(_, _)));
    }

    #[test]
    fn unsigned_remainder_in_cexpr() {
        let t = parse_transform("%r = add %x, C1 %u C2\n=>\n%r = add %x, C1 %u C2").unwrap();
        match &t.source[0].inst {
            Inst::BinOp { b, .. } => match b {
                Operand::Const(CExpr::Binop(CBinop::URem, _, _), _) => {}
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse_transform("%r = add %x, 1\n=>\n%r = bogus %x").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn log2_function_call() {
        let t = parse_transform(
            "Pre: isPowerOf2(C1)\n%r = mul nsw %x, C1\n=>\n%r = shl nsw %x, log2(C1)",
        )
        .unwrap();
        match &t.target[0].inst {
            Inst::BinOp { b, .. } => match b {
                Operand::Const(CExpr::Fun(name, args), _) => {
                    assert_eq!(name, "log2");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
