//! Property tests for the canonicalizer: the canonical hash must be
//! invariant under alpha-renaming and commutative-operand order, and must
//! distinguish semantically different transforms (different opcodes,
//! different constants).

use alive_ir::ast::*;
use alive_ir::{canonical_hash, canonical_text, canonicalize, parse_transform, validate};
use proptest::prelude::*;

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::UDiv),
        Just(BinOp::Shl),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn is_commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// A small well-formed transform: a chain of binops over inputs `%x`,
/// `%y`, a literal, and an abstract constant, rooted at the last.
fn transform_strategy() -> impl Strategy<Value = Transform> {
    let stmt = (binop_strategy(), -8i128..8, any::<bool>(), any::<bool>());
    (proptest::collection::vec(stmt, 1..4), any::<bool>()).prop_map(|(stmts, with_pre)| {
        let mut source = Vec::new();
        for (i, (op, lit, use_y, use_sym)) in stmts.iter().enumerate() {
            let a: Operand = if i > 0 {
                Operand::Reg(format!("t{}", i - 1), None)
            } else {
                Operand::Reg("x".to_string(), None)
            };
            let b: Operand = if *use_y {
                Operand::Reg("y".to_string(), None)
            } else if *use_sym {
                Operand::Const(CExpr::Sym("C".to_string()), None)
            } else {
                Operand::Const(CExpr::Lit(*lit), None)
            };
            source.push(Stmt {
                name: Some(format!("t{i}")),
                inst: Inst::BinOp {
                    op: *op,
                    flags: vec![],
                    a,
                    b,
                },
            });
        }
        let root = format!("t{}", stmts.len() - 1);
        let target = vec![Stmt {
            name: Some(root),
            inst: Inst::BinOp {
                op: BinOp::Xor,
                flags: vec![],
                a: Operand::Reg("x".to_string(), None),
                b: Operand::Reg("x".to_string(), None),
            },
        }];
        let pre = if with_pre {
            Pred::And(
                Box::new(Pred::Cmp(
                    PredCmpOp::Ne,
                    CExpr::Sym("C".to_string()),
                    CExpr::Lit(0),
                )),
                Box::new(Pred::Fun(
                    "isPowerOf2".to_string(),
                    vec![PredArg::Expr(CExpr::Sym("C".to_string()))],
                )),
            )
        } else {
            Pred::True
        };
        Transform {
            name: Some("generated".to_string()),
            pre,
            source,
            target,
        }
    })
}

/// Renames every register `r` to `q_<r>` and every `C` symbol to `K9`,
/// producing an alpha-variant with entirely different names.
fn alpha_variant(t: &Transform) -> Transform {
    fn ren_op(op: &Operand) -> Operand {
        match op {
            Operand::Reg(n, ty) => Operand::Reg(format!("q_{n}"), ty.clone()),
            Operand::Const(e, ty) => Operand::Const(ren_cexpr(e), ty.clone()),
            Operand::Undef(ty) => Operand::Undef(ty.clone()),
        }
    }
    fn ren_cexpr(e: &CExpr) -> CExpr {
        match e {
            CExpr::Sym(s) if s == "C" => CExpr::Sym("K9".to_string()),
            CExpr::Unop(op, a) => CExpr::Unop(*op, Box::new(ren_cexpr(a))),
            CExpr::Binop(op, a, b) => {
                CExpr::Binop(*op, Box::new(ren_cexpr(a)), Box::new(ren_cexpr(b)))
            }
            other => other.clone(),
        }
    }
    fn ren_stmt(s: &Stmt) -> Stmt {
        let inst = match &s.inst {
            Inst::BinOp { op, flags, a, b } => Inst::BinOp {
                op: *op,
                flags: flags.clone(),
                a: ren_op(a),
                b: ren_op(b),
            },
            other => other.clone(),
        };
        Stmt {
            name: s.name.as_ref().map(|n| format!("q_{n}")),
            inst,
        }
    }
    fn ren_pred(p: &Pred) -> Pred {
        match p {
            Pred::True => Pred::True,
            Pred::Not(a) => Pred::Not(Box::new(ren_pred(a))),
            Pred::And(a, b) => Pred::And(Box::new(ren_pred(a)), Box::new(ren_pred(b))),
            Pred::Or(a, b) => Pred::Or(Box::new(ren_pred(a)), Box::new(ren_pred(b))),
            Pred::Cmp(op, a, b) => Pred::Cmp(*op, ren_cexpr(a), ren_cexpr(b)),
            Pred::Fun(name, args) => Pred::Fun(
                name.clone(),
                args.iter()
                    .map(|a| match a {
                        PredArg::Reg(r) => PredArg::Reg(format!("q_{r}")),
                        PredArg::Expr(e) => PredArg::Expr(ren_cexpr(e)),
                    })
                    .collect(),
            ),
        }
    }
    Transform {
        name: Some("renamed".to_string()),
        pre: ren_pred(&t.pre),
        source: t.source.iter().map(ren_stmt).collect(),
        target: t.target.iter().map(ren_stmt).collect(),
    }
}

/// Swaps the operands of every commutative binop.
fn commuted_variant(t: &Transform) -> Transform {
    fn swap_stmt(s: &Stmt) -> Stmt {
        let inst = match &s.inst {
            Inst::BinOp { op, flags, a, b } if is_commutative(*op) => Inst::BinOp {
                op: *op,
                flags: flags.clone(),
                a: b.clone(),
                b: a.clone(),
            },
            other => other.clone(),
        };
        Stmt {
            name: s.name.clone(),
            inst,
        }
    }
    Transform {
        name: t.name.clone(),
        pre: t.pre.clone(),
        source: t.source.iter().map(swap_stmt).collect(),
        target: t.target.iter().map(swap_stmt).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn alpha_variants_hash_identically(t in transform_strategy()) {
        validate(&t).expect("generated transform is well-formed");
        let v = alpha_variant(&t);
        prop_assert_eq!(
            canonical_hash(&t),
            canonical_hash(&v),
            "alpha variant changed the hash:\n{}\nvs\n{}",
            canonical_text(&t),
            canonical_text(&v),
        );
    }

    #[test]
    fn commuted_variants_hash_identically(t in transform_strategy()) {
        validate(&t).expect("generated transform is well-formed");
        let v = commuted_variant(&t);
        prop_assert_eq!(
            canonical_hash(&t),
            canonical_hash(&v),
            "commuted variant changed the hash:\n{}\nvs\n{}",
            canonical_text(&t),
            canonical_text(&v),
        );
    }

    #[test]
    fn canonical_text_reparses_to_the_same_hash(t in transform_strategy()) {
        let text = canonical_text(&t);
        let reparsed = parse_transform(&text)
            .unwrap_or_else(|e| panic!("canonical text failed to reparse: {e}\n{text}"));
        prop_assert_eq!(canonical_hash(&t), canonical_hash(&reparsed));
        // Idempotence: canonicalizing a canonical form is the identity.
        prop_assert_eq!(canonicalize(&reparsed).to_string(), text);
    }

    #[test]
    fn changing_the_root_opcode_changes_the_hash(t in transform_strategy()) {
        let mut other = t.clone();
        let last = other.source.last_mut().unwrap();
        if let Inst::BinOp { op, flags, .. } = &mut last.inst {
            // Swap the root op for a structurally different, never-equal
            // one; `udiv` and `shl` are in no commutative class together.
            *op = if *op == BinOp::UDiv { BinOp::Shl } else { BinOp::UDiv };
            flags.clear();
            prop_assert_ne!(canonical_hash(&t), canonical_hash(&other));
        }
    }
}
