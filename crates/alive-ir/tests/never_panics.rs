//! Fuzz smoke tests: the lexer and parser must never panic, whatever bytes
//! they are fed. They may (and usually do) return errors — the contract is
//! that every failure is a structured [`alive_ir::ParseError`] with
//! line/column info, not a process abort.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Characters the lexer actually accepts, to bias generation toward inputs
/// that get past the first token.
const ALPHABET: &[u8] = b"abcxyzCXR%=><!&|^~+-*/,()[]:_.0123456789 \t\r\n;iu";

fn random_bytes(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.8) {
                ALPHABET[rng.gen_range(0..ALPHABET.len())] as char
            } else {
                // Arbitrary unicode, including NUL and multi-byte chars.
                char::from_u32(rng.gen_range(0u32..0x1_0000)).unwrap_or('\u{fffd}')
            }
        })
        .collect()
}

#[test]
fn lexer_and_parser_never_panic_on_random_bytes() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..2000 {
        let len = rng.gen_range(0..160);
        let src = random_bytes(&mut rng, len);
        // Must return Ok or Err, never panic.
        let _ =
            std::panic::catch_unwind(|| alive_ir::parse_transforms(&src)).unwrap_or_else(|_| {
                panic!("parser panicked on case {case}: {src:?}");
            });
    }
}

#[test]
fn parser_never_panics_on_mutated_corpus_text() {
    let seeds = [
        "Pre: C2 == 0 && MaskedValueIsZero(%V, ~C1)\n%t0 = or %B, %V\n%t1 = and %t0, C1\n%t2 = and %B, C2\n%R = or %t1, %t2\n=>\n%R = and %t0, (C1 | C2)\n",
        "%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x\n",
        "%r = zext i8 %x to i16\n=>\n%r = zext i8 %x to i16\n",
        "%p = alloca i8, 4\n%v = load %p\nstore %v, %q\n%r = load %q\n=>\n%r = %v\n",
    ];
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..2000 {
        let mut src: Vec<u8> = seeds[rng.gen_range(0..seeds.len())].as_bytes().to_vec();
        for _ in 0..rng.gen_range(1..8usize) {
            match rng.gen_range(0..3u32) {
                0 if !src.is_empty() => {
                    let i = rng.gen_range(0..src.len());
                    src[i] = ALPHABET[rng.gen_range(0..ALPHABET.len())];
                }
                1 if !src.is_empty() => {
                    src.remove(rng.gen_range(0..src.len()));
                }
                _ => {
                    let i = rng.gen_range(0..=src.len());
                    src.insert(i, ALPHABET[rng.gen_range(0..ALPHABET.len())]);
                }
            }
        }
        let src = String::from_utf8_lossy(&src).into_owned();
        let _ =
            std::panic::catch_unwind(|| alive_ir::parse_transforms(&src)).unwrap_or_else(|_| {
                panic!("parser panicked on mutated case {case}: {src:?}");
            });
    }
}

#[test]
fn oversized_width_literal_is_an_error_not_a_panic() {
    let err = alive_ir::parse_transform("%r = add i4294967296 %x, 1\n=>\n%r = %x\n").unwrap_err();
    assert!(
        err.message.contains("bitwidth"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    // ~64k of `(` would overflow the stack without a depth cap.
    let mut src = String::from("%r = add %x, ");
    src.push_str(&"(".repeat(65_536));
    let err = alive_ir::parse_transform(&src).unwrap_err();
    assert!(
        err.message.contains("nesting too deep"),
        "unexpected message: {}",
        err.message
    );

    let mut pred = String::from("Pre: ");
    pred.push_str(&"!".repeat(65_536));
    pred.push_str("true\n%r = add %x, 1\n=>\n%r = %x\n");
    let err = alive_ir::parse_transform(&pred).unwrap_err();
    assert!(
        err.message.contains("nesting too deep"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn errors_carry_line_and_col() {
    let err = alive_ir::parse_transform("%r = add %x, 1\n=>\n%r = bogus %x\n").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.col > 1);
    let shown = err.to_string();
    assert!(shown.contains("line 3"), "missing line in: {shown}");
    assert!(shown.contains("col"), "missing col in: {shown}");
}
