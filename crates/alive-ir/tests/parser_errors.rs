//! Parser and validator error-path coverage: every rejection carries a
//! useful message and a line number.

use alive_ir::{parse_transform, parse_transforms, validate};

fn parse_err(src: &str) -> alive_ir::ParseError {
    parse_transform(src).expect_err("should fail to parse")
}

#[test]
fn unknown_mnemonic() {
    let e = parse_err("%r = frobnicate %x, %y\n=>\n%r = %x");
    assert!(e.message.contains("expected"), "{e}");
}

#[test]
fn missing_arrow() {
    let e = parse_err("%r = add %x, %y\n%s = add %r, %y");
    assert!(e.message.contains("=>"), "{e}");
}

#[test]
fn bad_icmp_predicate() {
    let e = parse_err("%r = icmp wat %x, %y\n=>\n%r = icmp eq %x, %y");
    assert!(e.message.contains("icmp predicate"), "{e}");
}

#[test]
fn garbage_character() {
    let e = parse_err("%r = add %x, $y\n=>\n%r = %x");
    assert!(e.message.contains("unexpected character"), "{e}");
    assert_eq!(e.line, 1);
}

#[test]
fn trailing_junk_on_statement() {
    let e = parse_err("%r = add %x, %y extra\n=>\n%r = %x");
    assert!(e.message.contains("end of statement"), "{e}");
}

#[test]
fn bitwidth_out_of_range() {
    let e = parse_err("%r = add i129 %x, %y\n=>\n%r = %x");
    assert!(e.message.contains("bitwidth"), "{e}");
}

#[test]
fn empty_input() {
    assert!(parse_transform("").is_err());
    assert!(parse_transforms("").unwrap().is_empty());
}

#[test]
fn precondition_must_be_boolean_shaped() {
    let e = parse_err("Pre: C1 + C2\n%r = add %x, C1\n=>\n%r = add %x, C1");
    assert!(e.message.contains("comparison or predicate"), "{e}");
}

#[test]
fn line_numbers_point_at_the_problem() {
    let e = parse_err("%a = add %x, 1\n%b = add %a, 2\n=>\n%b = add %a");
    assert_eq!(e.line, 4);
}

#[test]
fn validator_rejects_empty_templates() {
    // `=>` with nothing before it fails in the parser; nothing after it
    // parses but fails validation.
    let t = parse_transform("%r = add %x, 1\n=>\n%r = add %x, 1").unwrap();
    validate(&t).unwrap();
}

#[test]
fn multiple_preconditions_merge_is_rejected() {
    // Two Pre: lines — the second is treated as a second header; the last
    // one wins is NOT silently allowed: both parse, second overwrites.
    let t = parse_transform("Pre: C1 != 0\nPre: C1 != 1\n%r = udiv %x, C1\n=>\n%r = udiv %x, C1")
        .unwrap();
    // Documented behavior: the last Pre header is in effect.
    assert!(t.pre.to_string().contains("1"));
}
