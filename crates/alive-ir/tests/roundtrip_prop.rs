//! Property test: printing any well-formed transformation and reparsing it
//! yields the identical AST. Unlike the corpus round-trip test, this
//! explores the syntax space with generated ASTs: random operator mixes,
//! flags, nested constant expressions, and preconditions.

use alive_ir::ast::*;
use alive_ir::{parse_transform, validate};
use proptest::prelude::*;

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::UDiv),
        Just(BinOp::SDiv),
        Just(BinOp::URem),
        Just(BinOp::SRem),
        Just(BinOp::Shl),
        Just(BinOp::LShr),
        Just(BinOp::AShr),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn cexpr_strategy() -> impl Strategy<Value = CExpr> {
    let leaf = prop_oneof![
        (-200i128..200).prop_map(CExpr::Lit),
        prop_oneof![Just("C"), Just("C1"), Just("C2")].prop_map(|s| CExpr::Sym(s.to_string())),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..13).prop_map(|(a, b, op)| {
                let ops = [
                    CBinop::Add,
                    CBinop::Sub,
                    CBinop::Mul,
                    CBinop::SDiv,
                    CBinop::UDiv,
                    CBinop::SRem,
                    CBinop::URem,
                    CBinop::Shl,
                    CBinop::LShr,
                    CBinop::And,
                    CBinop::Or,
                    CBinop::Xor,
                    CBinop::Add,
                ];
                CExpr::Binop(ops[op], Box::new(a), Box::new(b))
            }),
            inner.clone().prop_map(|a| match a {
                // The parser canonicalizes -<literal> into a negative
                // literal, so generated ASTs must do the same.
                CExpr::Lit(n) => CExpr::Lit(-n),
                other => CExpr::Unop(CUnop::Neg, Box::new(other)),
            }),
            inner
                .clone()
                .prop_map(|a| CExpr::Unop(CUnop::Not, Box::new(a))),
            inner.prop_map(|a| CExpr::Fun("abs".to_string(), vec![CExprArg::Expr(a)])),
        ]
    })
}

fn flags_for(op: BinOp) -> impl Strategy<Value = Vec<Flag>> {
    let allowed: Vec<Flag> = op.allowed_flags().to_vec();
    proptest::collection::vec(0usize..allowed.len().max(1), 0..=allowed.len()).prop_map(
        move |idx| {
            let mut out: Vec<Flag> = idx
                .into_iter()
                .filter_map(|i| allowed.get(i).copied())
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        },
    )
}

/// A chain of binops over inputs %x, %y and constants, rooted at the last.
fn transform_strategy() -> impl Strategy<Value = Transform> {
    let stmt = (binop_strategy(), cexpr_strategy()).prop_flat_map(|(op, ce)| {
        (
            Just(op),
            flags_for(op),
            Just(ce),
            any::<bool>(),
            any::<bool>(),
        )
    });
    (proptest::collection::vec(stmt, 1..4), any::<bool>()).prop_map(|(stmts, with_pre)| {
        let mut source = Vec::new();
        for (i, (op, flags, ce, use_prev, const_on_rhs)) in stmts.iter().enumerate() {
            let prev: Operand = if i > 0 && *use_prev {
                Operand::Reg(format!("t{}", i - 1), None)
            } else {
                Operand::Reg("x".to_string(), None)
            };
            let konst = Operand::Const(ce.clone(), None);
            let (a, b) = if *const_on_rhs {
                (prev, konst)
            } else {
                (konst, prev)
            };
            source.push(Stmt {
                name: Some(format!("t{i}")),
                inst: Inst::BinOp {
                    op: *op,
                    flags: flags.clone(),
                    a,
                    b,
                },
            });
        }
        let root = format!("t{}", stmts.len() - 1);
        // Ensure all temporaries feed the root: rewrite each non-root
        // temp to be used by the next statement's lhs if it is not
        // already; simplest is to chain them explicitly.
        for (i, stmt) in source.iter_mut().enumerate().skip(1) {
            if let Inst::BinOp { a, .. } = &mut stmt.inst {
                *a = Operand::Reg(format!("t{}", i - 1), None);
            }
        }
        let target = vec![Stmt {
            name: Some(root),
            inst: Inst::BinOp {
                op: BinOp::Xor,
                flags: vec![],
                a: Operand::Reg("x".to_string(), None),
                b: Operand::Reg("x".to_string(), None),
            },
        }];
        let pre = if with_pre {
            Pred::Cmp(PredCmpOp::Ne, CExpr::Sym("C".to_string()), CExpr::Lit(0))
        } else {
            Pred::True
        };
        Transform {
            name: Some("generated".to_string()),
            pre,
            source,
            target,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn generated_transforms_round_trip(t in transform_strategy()) {
        // The generator keeps transforms well-formed.
        validate(&t).expect("generated transform is well-formed");
        let printed = t.to_string();
        let reparsed = parse_transform(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(reparsed, t, "round trip mismatch:\n{}", printed);
    }
}
