//! C++ code generation from Alive transformations (paper §4, Fig. 7).
//!
//! After a transformation is proved correct it can be turned into C++ that
//! uses LLVM's pattern-matching library (`llvm/IR/PatternMatch.h`), ready
//! for inclusion in an InstCombine-style pass. The generated code has two
//! parts:
//!
//! 1. an `if` whose condition `match(...)`es the source template DAG
//!    rooted at the instruction `I` and evaluates the precondition;
//! 2. a body that materializes the target template (constants via `APInt`
//!    arithmetic, instructions via `BinaryOperator::Create*` etc.) and
//!    replaces all uses of the root.
//!
//! Like the paper's generator, cleanup of newly-dead instructions is left
//! to a later DCE pass.
//!
//! # Examples
//!
//! ```
//! use alive_ir::parse_transform;
//! use alive_codegen::generate_cpp;
//!
//! let t = parse_transform(r"
//! Pre: isSignBit(C1)
//! %b = xor %a, C1
//! %d = add %b, C2
//! =>
//! %d = add %a, C1 ^ C2
//! ").unwrap();
//! let cpp = generate_cpp(&t).unwrap();
//! assert!(cpp.contains("m_Add"));
//! assert!(cpp.contains("m_Xor"));
//! assert!(cpp.contains("isSignBit"));
//! assert!(cpp.contains("replaceAllUsesWith"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use alive_ir::ast::{
    BinOp, CBinop, CExpr, CExprArg, CUnop, ConvOp, ICmpPred, Inst, Operand, Pred, PredArg, Stmt,
};
use alive_ir::{validate, Transform};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors during code generation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CodegenError {
    /// Description of the unsupported construct.
    pub message: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

fn cerr(message: impl Into<String>) -> CodegenError {
    CodegenError {
        message: message.into(),
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'v');
    }
    s
}

/// Generates the C++ for one transformation.
///
/// # Errors
///
/// Fails for constructs with no pattern-matching equivalent (memory
/// operations and `unreachable` are not supported by InstCombine-style
/// matching).
pub fn generate_cpp(t: &Transform) -> Result<String, CodegenError> {
    validate(t).map_err(|e| cerr(e.to_string()))?;
    let generator = Generator::new(t)?;
    generator.emit()
}

struct Generator<'t> {
    t: &'t Transform,
    /// Source statement for each defined register.
    src_def: HashMap<&'t str, &'t Stmt>,
    root: &'t str,
}

impl<'t> Generator<'t> {
    fn new(t: &'t Transform) -> Result<Generator<'t>, CodegenError> {
        for s in t.source.iter().chain(&t.target) {
            if s.inst.is_memory_op() || matches!(s.inst, Inst::Unreachable) {
                return Err(cerr(
                    "memory operations are not supported by the C++ generator",
                ));
            }
        }
        let mut src_def = HashMap::new();
        for s in &t.source {
            if let Some(n) = &s.name {
                src_def.insert(n.as_str(), s);
            }
        }
        Ok(Generator {
            t,
            root: t.root(),
            src_def,
        })
    }

    fn emit(&self) -> Result<String, CodegenError> {
        let mut value_decls: Vec<String> = Vec::new();
        let mut const_decls: Vec<String> = Vec::new();
        let mut clauses: Vec<String> = Vec::new();
        let mut bound: HashSet<String> = HashSet::new();

        self.emit_match(
            self.root,
            "I",
            &mut clauses,
            &mut value_decls,
            &mut const_decls,
            &mut bound,
        )?;

        if self.t.pre != Pred::True {
            clauses.push(self.pred_cpp(&self.t.pre)?);
        }

        let mut body: Vec<String> = Vec::new();
        let mut tgt_names: HashMap<String, String> = HashMap::new();
        let tgt_len = self.t.target.len();
        for (i, s) in self.t.target.iter().enumerate() {
            let name = s.name.as_deref().expect("non-memory target stmts define");
            let var = format!("t_{}", sanitize(name));
            let is_root = i + 1 == tgt_len;
            let code = self.build_inst(&s.inst, &var, &mut body, &tgt_names)?;
            body.push(code);
            tgt_names.insert(name.to_string(), var.clone());
            if is_root {
                body.push(format!("I->replaceAllUsesWith({var});"));
                body.push(format!("return {var};"));
            }
        }

        let mut out = String::new();
        if let Some(n) = &self.t.name {
            out.push_str(&format!("// {n}\n"));
        }
        out.push_str("{\n");
        if !value_decls.is_empty() {
            out.push_str(&format!("  Value *{};\n", value_decls.join(", *")));
        }
        if !const_decls.is_empty() {
            let mut uniq: Vec<String> = Vec::new();
            for d in &const_decls {
                if !uniq.contains(d) {
                    uniq.push(d.clone());
                }
            }
            out.push_str(&format!("  ConstantInt *{};\n", uniq.join(", *")));
        }
        out.push_str(&format!("  if ({}) {{\n", clauses.join(" &&\n      ")));
        for line in &body {
            out.push_str(&format!("    {line}\n"));
        }
        out.push_str("  }\n}\n");
        Ok(out)
    }

    /// Emits match clauses for the instruction defining `reg`, matched
    /// against the C++ expression `subject`.
    fn emit_match(
        &self,
        reg: &str,
        subject: &str,
        clauses: &mut Vec<String>,
        value_decls: &mut Vec<String>,
        const_decls: &mut Vec<String>,
        bound: &mut HashSet<String>,
    ) -> Result<(), CodegenError> {
        let stmt = self.src_def[reg];
        let mut sub_matches: Vec<(String, String)> = Vec::new();
        let mut extra_clauses: Vec<String> = Vec::new();
        let pattern = self.inst_pattern(
            &stmt.inst,
            value_decls,
            const_decls,
            bound,
            &mut sub_matches,
            &mut extra_clauses,
        )?;
        clauses.push(format!("match({subject}, {pattern})"));
        clauses.extend(extra_clauses);
        for (sub_reg, var) in sub_matches {
            self.emit_match(&sub_reg, &var, clauses, value_decls, const_decls, bound)?;
        }
        Ok(())
    }

    /// The `m_*` pattern for an instruction. Registers defined by other
    /// source instructions are bound with `m_Value` and matched in their
    /// own clause (one clause per instruction, like the paper's generator).
    #[allow(clippy::too_many_arguments)]
    fn inst_pattern(
        &self,
        inst: &Inst,
        value_decls: &mut Vec<String>,
        const_decls: &mut Vec<String>,
        bound: &mut HashSet<String>,
        sub_matches: &mut Vec<(String, String)>,
        extra_clauses: &mut Vec<String>,
    ) -> Result<String, CodegenError> {
        let mut operand_pattern = |op: &Operand| -> Result<String, CodegenError> {
            match op {
                Operand::Reg(name, _) => {
                    let var = sanitize(name);
                    if bound.contains(&var) {
                        Ok(format!("m_Specific({var})"))
                    } else {
                        bound.insert(var.clone());
                        if self.src_def.contains_key(name.as_str()) {
                            sub_matches.push((name.clone(), var.clone()));
                        }
                        value_decls.push(var.clone());
                        Ok(format!("m_Value({var})"))
                    }
                }
                Operand::Const(CExpr::Sym(s), _) => {
                    let var = sanitize(s);
                    if bound.contains(&var) {
                        Ok(format!("m_Specific({var})"))
                    } else {
                        bound.insert(var.clone());
                        const_decls.push(var.clone());
                        Ok(format!("m_ConstantInt({var})"))
                    }
                }
                Operand::Const(CExpr::Lit(n), _) => Ok(format!("m_SpecificInt({n})")),
                Operand::Const(e, _) => {
                    // A constant expression in the source: bind a fresh
                    // ConstantInt and require it to equal the expression.
                    let var = format!("CE{}", const_decls.len());
                    const_decls.push(var.clone());
                    let apint = self.cexpr_cpp(e)?;
                    extra_clauses.push(format!("{var}->getValue() == {apint}"));
                    Ok(format!("m_ConstantInt({var})"))
                }
                Operand::Undef(_) => Ok("m_Undef()".to_string()),
            }
        };

        match inst {
            Inst::BinOp { op, a, b, .. } => {
                let pa = operand_pattern(a)?;
                let pb = operand_pattern(b)?;
                Ok(format!("{}({pa}, {pb})", binop_matcher(*op)))
            }
            Inst::ICmp { pred, a, b } => {
                let pa = operand_pattern(a)?;
                let pb = operand_pattern(b)?;
                Ok(format!(
                    "m_ICmp(ICmpInst::{}, {pa}, {pb})",
                    icmp_pred_cpp(*pred)
                ))
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => {
                let pc = operand_pattern(cond)?;
                let pt = operand_pattern(on_true)?;
                let pf = operand_pattern(on_false)?;
                Ok(format!("m_Select({pc}, {pt}, {pf})"))
            }
            Inst::Conv { op, arg, .. } => {
                let pa = operand_pattern(arg)?;
                let m = match op {
                    ConvOp::ZExt => "m_ZExt",
                    ConvOp::SExt => "m_SExt",
                    ConvOp::Trunc => "m_Trunc",
                    ConvOp::Bitcast => "m_BitCast",
                    ConvOp::PtrToInt => "m_PtrToInt",
                    ConvOp::IntToPtr => "m_IntToPtr",
                };
                Ok(format!("{m}({pa})"))
            }
            Inst::Copy { val } => operand_pattern(val),
            other => Err(cerr(format!("unsupported source instruction {other:?}"))),
        }
    }

    fn pred_cpp(&self, p: &Pred) -> Result<String, CodegenError> {
        Ok(match p {
            Pred::True => "true".to_string(),
            Pred::Not(a) => format!("!({})", self.pred_cpp(a)?),
            Pred::And(a, b) => format!("{} && {}", self.pred_cpp(a)?, self.pred_cpp(b)?),
            Pred::Or(a, b) => format!("({} || {})", self.pred_cpp(a)?, self.pred_cpp(b)?),
            Pred::Cmp(op, a, b) => {
                let (av, bv) = (self.cexpr_cpp(a)?, self.cexpr_cpp(b)?);
                use alive_ir::PredCmpOp::*;
                match op {
                    Eq => format!("{av} == {bv}"),
                    Ne => format!("{av} != {bv}"),
                    Slt => format!("({av}).slt({bv})"),
                    Sle => format!("({av}).sle({bv})"),
                    Sgt => format!("({av}).sgt({bv})"),
                    Sge => format!("({av}).sge({bv})"),
                    Ult => format!("({av}).ult({bv})"),
                    Ule => format!("({av}).ule({bv})"),
                    Ugt => format!("({av}).ugt({bv})"),
                    Uge => format!("({av}).uge({bv})"),
                }
            }
            Pred::Fun(name, args) => {
                let mut cpp_args = Vec::new();
                for a in args {
                    cpp_args.push(match a {
                        PredArg::Reg(r) => sanitize(r),
                        PredArg::Expr(e) => self.cexpr_cpp(e)?,
                    });
                }
                match name.as_str() {
                    "isPowerOf2" => format!("({}).isPowerOf2()", cpp_args[0]),
                    "isSignBit" => format!("({}).isSignBit()", cpp_args[0]),
                    "hasOneUse" => format!("{}->hasOneUse()", cpp_args[0]),
                    "MaskedValueIsZero" => {
                        format!("MaskedValueIsZero({}, {})", cpp_args[0], cpp_args[1])
                    }
                    other => format!("{}({})", other, cpp_args.join(", ")),
                }
            }
        })
    }

    fn cexpr_cpp(&self, e: &CExpr) -> Result<String, CodegenError> {
        Ok(match e {
            CExpr::Lit(n) => format!("APInt(W, {n})"),
            CExpr::Sym(s) => format!("{}->getValue()", sanitize(s)),
            CExpr::Unop(CUnop::Neg, a) => format!("-({})", self.cexpr_cpp(a)?),
            CExpr::Unop(CUnop::Not, a) => format!("~({})", self.cexpr_cpp(a)?),
            CExpr::Binop(op, a, b) => {
                let (av, bv) = (self.cexpr_cpp(a)?, self.cexpr_cpp(b)?);
                match op {
                    CBinop::Add => format!("({av} + {bv})"),
                    CBinop::Sub => format!("({av} - {bv})"),
                    CBinop::Mul => format!("({av} * {bv})"),
                    CBinop::SDiv => format!("({av}).sdiv({bv})"),
                    CBinop::UDiv => format!("({av}).udiv({bv})"),
                    CBinop::SRem => format!("({av}).srem({bv})"),
                    CBinop::URem => format!("({av}).urem({bv})"),
                    CBinop::Shl => format!("({av}).shl({bv})"),
                    CBinop::LShr => format!("({av}).lshr({bv})"),
                    CBinop::AShr => format!("({av}).ashr({bv})"),
                    CBinop::And => format!("({av} & {bv})"),
                    CBinop::Or => format!("({av} | {bv})"),
                    CBinop::Xor => format!("({av} ^ {bv})"),
                }
            }
            CExpr::Fun(name, args) => {
                let mut cpp_args = Vec::new();
                for a in args {
                    cpp_args.push(match a {
                        CExprArg::Reg(r) => sanitize(r),
                        CExprArg::Expr(x) => self.cexpr_cpp(x)?,
                    });
                }
                match name.as_str() {
                    "log2" => format!("APInt(W, ({}).logBase2())", cpp_args[0]),
                    "width" => format!(
                        "APInt(W, {}->getType()->getScalarSizeInBits())",
                        cpp_args[0]
                    ),
                    "abs" => format!("({}).abs()", cpp_args[0]),
                    "umax" => format!("APIntOps::umax({}, {})", cpp_args[0], cpp_args[1]),
                    "umin" => format!("APIntOps::umin({}, {})", cpp_args[0], cpp_args[1]),
                    "smax" | "max" => {
                        format!("APIntOps::smax({}, {})", cpp_args[0], cpp_args[1])
                    }
                    "smin" | "min" => {
                        format!("APIntOps::smin({}, {})", cpp_args[0], cpp_args[1])
                    }
                    other => return Err(cerr(format!("unknown constant function {other}()"))),
                }
            }
        })
    }

    /// A C++ expression naming the `Value*` for a target operand;
    /// constant expressions are materialized into the body first.
    fn target_operand(
        &self,
        op: &Operand,
        body: &mut Vec<String>,
        tgt_names: &HashMap<String, String>,
    ) -> Result<String, CodegenError> {
        match op {
            Operand::Reg(name, _) => Ok(tgt_names
                .get(name)
                .cloned()
                .unwrap_or_else(|| sanitize(name))),
            Operand::Const(CExpr::Sym(s), _) => Ok(sanitize(s)),
            Operand::Const(e, _) => {
                let var = format!("C_new{}", body.len());
                let apint = self.cexpr_cpp(e)?;
                body.push(format!(
                    "Constant *{var} = ConstantInt::get(I->getType(), {apint});"
                ));
                Ok(var)
            }
            Operand::Undef(_) => Ok("UndefValue::get(I->getType())".to_string()),
        }
    }

    fn build_inst(
        &self,
        inst: &Inst,
        var: &str,
        body: &mut Vec<String>,
        tgt_names: &HashMap<String, String>,
    ) -> Result<String, CodegenError> {
        match inst {
            Inst::BinOp { op, flags, a, b } => {
                let av = self.target_operand(a, body, tgt_names)?;
                let bv = self.target_operand(b, body, tgt_names)?;
                let mut code = format!(
                    "BinaryOperator *{var} = BinaryOperator::Create{}({av}, {bv}, \"\", I);",
                    binop_create(*op)
                );
                for f in flags {
                    let setter = match f {
                        alive_ir::Flag::Nsw => format!("{var}->setHasNoSignedWrap(true);"),
                        alive_ir::Flag::Nuw => format!("{var}->setHasNoUnsignedWrap(true);"),
                        alive_ir::Flag::Exact => format!("{var}->setIsExact(true);"),
                    };
                    code.push_str(&format!("\n    {setter}"));
                }
                Ok(code)
            }
            Inst::ICmp { pred, a, b } => {
                let av = self.target_operand(a, body, tgt_names)?;
                let bv = self.target_operand(b, body, tgt_names)?;
                Ok(format!(
                    "ICmpInst *{var} = new ICmpInst(I, ICmpInst::{}, {av}, {bv});",
                    icmp_pred_cpp(*pred)
                ))
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => {
                let cv = self.target_operand(cond, body, tgt_names)?;
                let tv = self.target_operand(on_true, body, tgt_names)?;
                let fv = self.target_operand(on_false, body, tgt_names)?;
                Ok(format!(
                    "SelectInst *{var} = SelectInst::Create({cv}, {tv}, {fv}, \"\", I);"
                ))
            }
            Inst::Conv { op, arg, .. } => {
                let av = self.target_operand(arg, body, tgt_names)?;
                let kind = match op {
                    ConvOp::ZExt => "Instruction::ZExt",
                    ConvOp::SExt => "Instruction::SExt",
                    ConvOp::Trunc => "Instruction::Trunc",
                    ConvOp::Bitcast => "Instruction::BitCast",
                    ConvOp::PtrToInt => "Instruction::PtrToInt",
                    ConvOp::IntToPtr => "Instruction::IntToPtr",
                };
                Ok(format!(
                    "CastInst *{var} = CastInst::Create({kind}, {av}, I->getType(), \"\", I);"
                ))
            }
            Inst::Copy { val } => {
                let av = self.target_operand(val, body, tgt_names)?;
                Ok(format!("Value *{var} = {av};"))
            }
            other => Err(cerr(format!("unsupported target instruction {other:?}"))),
        }
    }
}

fn binop_matcher(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "m_Add",
        BinOp::Sub => "m_Sub",
        BinOp::Mul => "m_Mul",
        BinOp::UDiv => "m_UDiv",
        BinOp::SDiv => "m_SDiv",
        BinOp::URem => "m_URem",
        BinOp::SRem => "m_SRem",
        BinOp::Shl => "m_Shl",
        BinOp::LShr => "m_LShr",
        BinOp::AShr => "m_AShr",
        BinOp::And => "m_And",
        BinOp::Or => "m_Or",
        BinOp::Xor => "m_Xor",
    }
}

fn binop_create(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "Add",
        BinOp::Sub => "Sub",
        BinOp::Mul => "Mul",
        BinOp::UDiv => "UDiv",
        BinOp::SDiv => "SDiv",
        BinOp::URem => "URem",
        BinOp::SRem => "SRem",
        BinOp::Shl => "Shl",
        BinOp::LShr => "LShr",
        BinOp::AShr => "AShr",
        BinOp::And => "And",
        BinOp::Or => "Or",
        BinOp::Xor => "Xor",
    }
}

fn icmp_pred_cpp(p: ICmpPred) -> &'static str {
    match p {
        ICmpPred::Eq => "ICMP_EQ",
        ICmpPred::Ne => "ICMP_NE",
        ICmpPred::Ugt => "ICMP_UGT",
        ICmpPred::Uge => "ICMP_UGE",
        ICmpPred::Ult => "ICMP_ULT",
        ICmpPred::Ule => "ICMP_ULE",
        ICmpPred::Sgt => "ICMP_SGT",
        ICmpPred::Sge => "ICMP_SGE",
        ICmpPred::Slt => "ICMP_SLT",
        ICmpPred::Sle => "ICMP_SLE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::parse_transform;

    #[test]
    fn figure7_example() {
        let t = parse_transform(
            "Pre: isSignBit(C1)\n%b = xor %a, C1\n%d = add %b, C2\n=>\n%d = add %a, C1 ^ C2",
        )
        .unwrap();
        let cpp = generate_cpp(&t).unwrap();
        assert!(
            cpp.contains("match(I, m_Add(m_Value(b), m_ConstantInt(C2)))"),
            "{cpp}"
        );
        assert!(
            cpp.contains("match(b, m_Xor(m_Value(a), m_ConstantInt(C1)))"),
            "{cpp}"
        );
        assert!(cpp.contains("isSignBit()"), "{cpp}");
        assert!(cpp.contains("getValue() ^ C2->getValue()"), "{cpp}");
        assert!(cpp.contains("BinaryOperator::CreateAdd(a"), "{cpp}");
        assert!(cpp.contains("I->replaceAllUsesWith"), "{cpp}");
    }

    #[test]
    fn repeated_register_uses_m_specific() {
        let t = parse_transform("%r = udiv %x, %x\n=>\n%r = 1").unwrap();
        let cpp = generate_cpp(&t).unwrap();
        assert!(cpp.contains("m_UDiv(m_Value(x), m_Specific(x))"), "{cpp}");
    }

    #[test]
    fn literal_operands_use_specific_int() {
        let t = parse_transform("%a = xor %x, -1\n%r = add %a, 1\n=>\n%r = sub 0, %x").unwrap();
        let cpp = generate_cpp(&t).unwrap();
        assert!(cpp.contains("m_SpecificInt(-1)"), "{cpp}");
        assert!(cpp.contains("m_SpecificInt(1)"), "{cpp}");
    }

    #[test]
    fn flags_are_set_on_created_instructions() {
        let t = parse_transform("%r = mul nsw %x, 2\n=>\n%r = shl nsw %x, 1").unwrap();
        let cpp = generate_cpp(&t).unwrap();
        assert!(cpp.contains("setHasNoSignedWrap(true)"), "{cpp}");
    }

    #[test]
    fn select_and_icmp() {
        let t =
            parse_transform("%c = icmp eq %x, %y\n%r = select %c, %x, %y\n=>\n%r = %y").unwrap();
        let cpp = generate_cpp(&t).unwrap();
        assert!(cpp.contains("m_Select"), "{cpp}");
        assert!(cpp.contains("m_ICmp(ICmpInst::ICMP_EQ"), "{cpp}");
    }

    #[test]
    fn memory_ops_are_rejected() {
        let t = parse_transform("store %v, %p\n%r = load %p\n=>\n%r = %v").unwrap();
        assert!(generate_cpp(&t).is_err());
    }

    #[test]
    fn precondition_comparisons() {
        let t = parse_transform(
            "Pre: C1 u>= C2\n%0 = shl nsw %a, C1\n%1 = ashr %0, C2\n=>\n%1 = shl nsw %a, C1-C2",
        )
        .unwrap();
        let cpp = generate_cpp(&t).unwrap();
        assert!(cpp.contains(".uge("), "{cpp}");
        assert!(cpp.contains("C1->getValue() - C2->getValue()"), "{cpp}");
    }

    #[test]
    fn whole_corpus_generates_where_supported() {
        let mut generated = 0;
        for e in alive_suite::corpus() {
            match generate_cpp(&e.transform) {
                Ok(cpp) => {
                    assert!(cpp.contains("match("), "{}: no match clause", e.name);
                    generated += 1;
                }
                Err(err) => {
                    assert!(
                        err.message.contains("memory"),
                        "{} unexpectedly failed: {err}",
                        e.name
                    );
                }
            }
        }
        assert!(generated > 100, "only {generated} entries generated");
    }
}
