//! Concrete bitvector values and the reference semantics of every operation.
//!
//! [`BvVal`] is the ground truth the bit-blaster and simplifier are tested
//! against. All operations follow SMT-LIB semantics (e.g. `bvudiv x 0` is
//! all-ones), which is safe here because Alive's definedness constraints
//! (Table 1 of the paper) exclude the partial cases before the values
//! matter.

use std::fmt;

/// A concrete bitvector value of a given width (1..=128 bits).
///
/// The payload is kept masked to `width` bits at all times.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BvVal {
    width: u32,
    bits: u128,
}

impl BvVal {
    /// Creates a value, masking `bits` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 128.
    pub fn new(width: u32, bits: u128) -> BvVal {
        assert!((1..=128).contains(&width), "bitwidth {width} out of range");
        BvVal {
            width,
            bits: bits & Self::mask(width),
        }
    }

    /// The all-zeros value.
    pub fn zero(width: u32) -> BvVal {
        BvVal::new(width, 0)
    }

    /// The all-ones value (-1 in two's complement).
    pub fn ones(width: u32) -> BvVal {
        BvVal::new(width, u128::MAX)
    }

    /// The value 1.
    pub fn one(width: u32) -> BvVal {
        BvVal::new(width, 1)
    }

    /// The minimum signed value (sign bit set, rest zero).
    pub fn int_min(width: u32) -> BvVal {
        BvVal::new(width, 1u128 << (width - 1))
    }

    /// The maximum signed value.
    pub fn int_max(width: u32) -> BvVal {
        BvVal::new(width, Self::mask(width) >> 1)
    }

    /// Creates a value from a signed integer (two's complement wrap).
    pub fn from_i128(width: u32, v: i128) -> BvVal {
        BvVal::new(width, v as u128)
    }

    fn mask(width: u32) -> u128 {
        if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// The width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// The raw (unsigned) payload.
    #[inline]
    pub fn bits(self) -> u128 {
        self.bits
    }

    /// The value interpreted as unsigned.
    #[inline]
    pub fn to_unsigned(self) -> u128 {
        self.bits
    }

    /// The value interpreted as signed two's complement.
    pub fn to_signed(self) -> i128 {
        if self.width == 128 {
            self.bits as i128
        } else if self.bits >> (self.width - 1) & 1 == 1 {
            (self.bits as i128) - (1i128 << self.width)
        } else {
            self.bits as i128
        }
    }

    /// Bit `i` (0 = least significant).
    #[inline]
    pub fn bit(self, i: u32) -> bool {
        debug_assert!(i < self.width);
        (self.bits >> i) & 1 == 1
    }

    /// The sign (most significant) bit.
    #[inline]
    pub fn sign_bit(self) -> bool {
        self.bit(self.width - 1)
    }

    /// Is this the all-zeros value?
    #[inline]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    // ---- arithmetic (wrapping, SMT-LIB semantics) ----

    /// Wrapping addition.
    #[allow(clippy::should_implement_trait)] // wrapping/SMT-LIB semantics, not std ops
    pub fn add(self, rhs: BvVal) -> BvVal {
        self.binop(rhs, |a, b| a.wrapping_add(b))
    }

    /// Wrapping subtraction.
    #[allow(clippy::should_implement_trait)] // wrapping/SMT-LIB semantics, not std ops
    pub fn sub(self, rhs: BvVal) -> BvVal {
        self.binop(rhs, |a, b| a.wrapping_sub(b))
    }

    /// Wrapping multiplication.
    #[allow(clippy::should_implement_trait)] // wrapping/SMT-LIB semantics, not std ops
    pub fn mul(self, rhs: BvVal) -> BvVal {
        self.binop(rhs, |a, b| a.wrapping_mul(b))
    }

    /// Two's-complement negation.
    #[allow(clippy::should_implement_trait)] // wrapping/SMT-LIB semantics, not std ops
    pub fn neg(self) -> BvVal {
        BvVal::new(
            self.width,
            (self.bits ^ Self::mask(self.width)).wrapping_add(1),
        )
    }

    /// Unsigned division; division by zero yields all-ones (SMT-LIB).
    pub fn udiv(self, rhs: BvVal) -> BvVal {
        if rhs.is_zero() {
            BvVal::ones(self.width)
        } else {
            BvVal::new(self.width, self.bits / rhs.bits)
        }
    }

    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB).
    pub fn urem(self, rhs: BvVal) -> BvVal {
        if rhs.is_zero() {
            self
        } else {
            BvVal::new(self.width, self.bits % rhs.bits)
        }
    }

    /// Signed (truncated) division, SMT-LIB `bvsdiv`.
    ///
    /// Division by zero yields 1 or -1 depending on the dividend's sign;
    /// `INT_MIN / -1` wraps to `INT_MIN`. Alive's definedness constraints
    /// exclude both cases.
    pub fn sdiv(self, rhs: BvVal) -> BvVal {
        if rhs.is_zero() {
            return if self.sign_bit() {
                BvVal::one(self.width)
            } else {
                BvVal::ones(self.width)
            };
        }
        let a = self.to_signed();
        let b = rhs.to_signed();
        // i128 overflow is only possible at width 128 with INT_MIN / -1.
        let q = a.wrapping_div(b);
        BvVal::from_i128(self.width, q)
    }

    /// Signed remainder (sign follows the dividend), SMT-LIB `bvsrem`.
    pub fn srem(self, rhs: BvVal) -> BvVal {
        if rhs.is_zero() {
            return self;
        }
        let a = self.to_signed();
        let b = rhs.to_signed();
        BvVal::from_i128(self.width, a.wrapping_rem(b))
    }

    // ---- bitwise ----

    /// Bitwise and.
    pub fn and(self, rhs: BvVal) -> BvVal {
        self.binop(rhs, |a, b| a & b)
    }

    /// Bitwise or.
    pub fn or(self, rhs: BvVal) -> BvVal {
        self.binop(rhs, |a, b| a | b)
    }

    /// Bitwise exclusive or.
    pub fn xor(self, rhs: BvVal) -> BvVal {
        self.binop(rhs, |a, b| a ^ b)
    }

    /// Bitwise complement.
    #[allow(clippy::should_implement_trait)] // wrapping/SMT-LIB semantics, not std ops
    pub fn not(self) -> BvVal {
        BvVal::new(self.width, !self.bits)
    }

    // ---- shifts (shift amount is the full-width second operand) ----

    /// Logical shift left; shifts of `width` or more yield zero.
    #[allow(clippy::should_implement_trait)] // wrapping/SMT-LIB semantics, not std ops
    pub fn shl(self, rhs: BvVal) -> BvVal {
        if rhs.bits >= self.width as u128 {
            BvVal::zero(self.width)
        } else {
            BvVal::new(self.width, self.bits << rhs.bits)
        }
    }

    /// Logical shift right; shifts of `width` or more yield zero.
    pub fn lshr(self, rhs: BvVal) -> BvVal {
        if rhs.bits >= self.width as u128 {
            BvVal::zero(self.width)
        } else {
            BvVal::new(self.width, self.bits >> rhs.bits)
        }
    }

    /// Arithmetic shift right; saturates to the sign fill.
    pub fn ashr(self, rhs: BvVal) -> BvVal {
        let fill = if self.sign_bit() {
            BvVal::ones(self.width)
        } else {
            BvVal::zero(self.width)
        };
        if rhs.bits >= self.width as u128 {
            fill
        } else {
            let sh = rhs.bits as u32;
            let shifted = self.bits >> sh;
            let fill_bits = fill.bits & !(Self::mask(self.width) >> sh);
            BvVal::new(self.width, shifted | fill_bits)
        }
    }

    // ---- comparisons ----

    /// Unsigned less-than.
    pub fn ult(self, rhs: BvVal) -> bool {
        self.bits < rhs.bits
    }

    /// Unsigned less-or-equal.
    pub fn ule(self, rhs: BvVal) -> bool {
        self.bits <= rhs.bits
    }

    /// Signed less-than.
    pub fn slt(self, rhs: BvVal) -> bool {
        self.to_signed() < rhs.to_signed()
    }

    /// Signed less-or-equal.
    pub fn sle(self, rhs: BvVal) -> bool {
        self.to_signed() <= rhs.to_signed()
    }

    // ---- width changes ----

    /// Zero extension to `new_width` (must be >= current width).
    pub fn zext(self, new_width: u32) -> BvVal {
        assert!(new_width >= self.width);
        BvVal::new(new_width, self.bits)
    }

    /// Sign extension to `new_width` (must be >= current width).
    pub fn sext(self, new_width: u32) -> BvVal {
        assert!(new_width >= self.width);
        if self.sign_bit() {
            let ext = Self::mask(new_width) & !Self::mask(self.width);
            BvVal::new(new_width, self.bits | ext)
        } else {
            BvVal::new(new_width, self.bits)
        }
    }

    /// Truncation to `new_width` (must be <= current width).
    pub fn trunc(self, new_width: u32) -> BvVal {
        assert!(new_width <= self.width);
        BvVal::new(new_width, self.bits)
    }

    /// Extracts bits `hi..=lo` (inclusive) as a `(hi - lo + 1)`-bit value.
    pub fn extract(self, hi: u32, lo: u32) -> BvVal {
        assert!(hi >= lo && hi < self.width);
        BvVal::new(hi - lo + 1, self.bits >> lo)
    }

    /// Concatenation: `self` becomes the high bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 128 bits.
    pub fn concat(self, low: BvVal) -> BvVal {
        let w = self.width + low.width;
        assert!(w <= 128, "concat width {w} exceeds 128");
        BvVal::new(w, (self.bits << low.width) | low.bits)
    }

    // ---- derived helpers used by precondition predicates ----

    /// Is the value a power of two (and non-zero)?
    pub fn is_power_of_two(self) -> bool {
        !self.is_zero() && self.bits & (self.bits.wrapping_sub(1)) == 0
    }

    /// Floor of log2; 0 for the zero value.
    pub fn log2(self) -> BvVal {
        let l = if self.is_zero() {
            0
        } else {
            127 - self.bits.leading_zeros()
        };
        BvVal::new(self.width, l as u128)
    }

    /// Absolute value (wraps on `INT_MIN`).
    pub fn abs(self) -> BvVal {
        if self.sign_bit() {
            self.neg()
        } else {
            self
        }
    }

    /// Count of trailing zero bits (width if the value is zero).
    pub fn cttz(self) -> BvVal {
        let n = if self.is_zero() {
            self.width
        } else {
            self.bits.trailing_zeros()
        };
        BvVal::new(self.width, n as u128)
    }

    /// Count of leading zero bits within `width` (width if zero).
    pub fn ctlz(self) -> BvVal {
        let n = if self.is_zero() {
            self.width
        } else {
            self.bits.leading_zeros() - (128 - self.width)
        };
        BvVal::new(self.width, n as u128)
    }

    fn binop(self, rhs: BvVal, f: impl Fn(u128, u128) -> u128) -> BvVal {
        assert_eq!(self.width, rhs.width, "width mismatch in bitvector op");
        BvVal::new(self.width, f(self.bits, rhs.bits))
    }
}

impl fmt::Debug for BvVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:i{}", self.bits, self.width)
    }
}

impl fmt::Display for BvVal {
    /// Formats like Alive's counterexamples: `0xF (15, -1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unsigned = self.to_unsigned();
        let signed = self.to_signed();
        let hex_digits = (self.width as usize).div_ceil(4);
        if signed < 0 {
            write!(f, "0x{unsigned:0hex_digits$X} ({unsigned}, {signed})")
        } else {
            write!(f, "0x{unsigned:0hex_digits$X} ({unsigned})")
        }
    }
}

/// A concrete value of either SMT sort.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A bitvector.
    Bv(BvVal),
}

impl Value {
    /// Extracts the boolean, panicking on sort mismatch.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Bv(v) => panic!("expected Bool value, got {v:?}"),
        }
    }

    /// Extracts the bitvector, panicking on sort mismatch.
    pub fn as_bv(self) -> BvVal {
        match self {
            Value::Bv(v) => v,
            Value::Bool(b) => panic!("expected BitVec value, got {b}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<BvVal> for Value {
    fn from(v: BvVal) -> Value {
        Value::Bv(v)
    }
}

/// The sort (type) of a term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Propositional sort.
    Bool,
    /// Bitvectors of the given width.
    BitVec(u32),
}

impl Sort {
    /// Width of a bitvector sort.
    ///
    /// # Panics
    ///
    /// Panics if the sort is `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::BitVec(w) => w,
            Sort::Bool => panic!("Bool sort has no width"),
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "BitVec({w})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_interpretation() {
        assert_eq!(BvVal::new(4, 0xF).to_signed(), -1);
        assert_eq!(BvVal::new(4, 0x7).to_signed(), 7);
        assert_eq!(BvVal::new(4, 0x8).to_signed(), -8);
        assert_eq!(BvVal::int_min(8).to_signed(), -128);
        assert_eq!(BvVal::int_max(8).to_signed(), 127);
    }

    #[test]
    fn wrapping_arithmetic() {
        let a = BvVal::new(8, 200);
        let b = BvVal::new(8, 100);
        assert_eq!(a.add(b).bits(), 44);
        assert_eq!(b.sub(a).to_signed(), -100);
        assert_eq!(a.mul(b).bits(), (200u128 * 100) & 0xFF);
        assert_eq!(BvVal::new(8, 1).neg().to_signed(), -1);
        assert_eq!(BvVal::zero(8).neg(), BvVal::zero(8));
    }

    #[test]
    fn division_smtlib_semantics() {
        let w = 8;
        assert_eq!(BvVal::new(w, 7).udiv(BvVal::new(w, 2)).bits(), 3);
        assert_eq!(BvVal::new(w, 7).udiv(BvVal::zero(w)), BvVal::ones(w));
        assert_eq!(BvVal::new(w, 7).urem(BvVal::zero(w)).bits(), 7);
        assert_eq!(
            BvVal::from_i128(w, -7)
                .sdiv(BvVal::from_i128(w, 2))
                .to_signed(),
            -3
        );
        assert_eq!(
            BvVal::from_i128(w, -7)
                .srem(BvVal::from_i128(w, 2))
                .to_signed(),
            -1
        );
        assert_eq!(
            BvVal::from_i128(w, 7)
                .srem(BvVal::from_i128(w, -2))
                .to_signed(),
            1
        );
        // INT_MIN / -1 wraps.
        assert_eq!(BvVal::int_min(w).sdiv(BvVal::ones(w)), BvVal::int_min(w));
    }

    #[test]
    fn shifts() {
        let w = 8;
        assert_eq!(BvVal::new(w, 0b1).shl(BvVal::new(w, 3)).bits(), 0b1000);
        assert_eq!(BvVal::new(w, 0x80).lshr(BvVal::new(w, 7)).bits(), 1);
        assert_eq!(BvVal::new(w, 0x80).ashr(BvVal::new(w, 7)), BvVal::ones(w));
        assert_eq!(BvVal::new(w, 0x40).ashr(BvVal::new(w, 6)).bits(), 1);
        // Over-shifts.
        assert_eq!(BvVal::new(w, 0xFF).shl(BvVal::new(w, 8)), BvVal::zero(w));
        assert_eq!(BvVal::new(w, 0xFF).lshr(BvVal::new(w, 9)), BvVal::zero(w));
        assert_eq!(BvVal::new(w, 0x80).ashr(BvVal::new(w, 200)), BvVal::ones(w));
        assert_eq!(BvVal::new(w, 0x40).ashr(BvVal::new(w, 200)), BvVal::zero(w));
    }

    #[test]
    fn comparisons() {
        let w = 4;
        let m1 = BvVal::from_i128(w, -1);
        let one = BvVal::one(w);
        assert!(one.ult(m1)); // unsigned: 1 < 15
        assert!(m1.slt(one)); // signed: -1 < 1
        assert!(one.ule(one));
        assert!(one.sle(one));
    }

    #[test]
    fn width_changes() {
        let v = BvVal::new(4, 0b1010);
        assert_eq!(v.zext(8).bits(), 0b0000_1010);
        assert_eq!(v.sext(8).bits(), 0b1111_1010);
        assert_eq!(BvVal::new(4, 0b0101).sext(8).bits(), 0b0000_0101);
        assert_eq!(BvVal::new(8, 0xAB).trunc(4).bits(), 0xB);
        assert_eq!(BvVal::new(8, 0b1100_0101).extract(5, 2).bits(), 0b0001);
        assert_eq!(BvVal::new(4, 0xA).concat(BvVal::new(4, 0xB)).bits(), 0xAB);
    }

    #[test]
    fn predicates_and_utilities() {
        assert!(BvVal::new(8, 64).is_power_of_two());
        assert!(!BvVal::new(8, 0).is_power_of_two());
        assert!(!BvVal::new(8, 6).is_power_of_two());
        assert_eq!(BvVal::new(8, 64).log2().bits(), 6);
        assert_eq!(BvVal::from_i128(8, -5).abs().bits(), 5);
        assert_eq!(BvVal::new(8, 0b1000).cttz().bits(), 3);
        assert_eq!(BvVal::new(8, 0b1000).ctlz().bits(), 4);
        assert_eq!(BvVal::zero(8).cttz().bits(), 8);
        assert_eq!(BvVal::zero(8).ctlz().bits(), 8);
    }

    #[test]
    fn display_matches_alive_counterexample_format() {
        assert_eq!(format!("{}", BvVal::new(4, 0xF)), "0xF (15, -1)");
        assert_eq!(format!("{}", BvVal::new(4, 0x3)), "0x3 (3)");
        assert_eq!(format!("{}", BvVal::new(8, 0x80)), "0x80 (128, -128)");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = BvVal::new(4, 1).add(BvVal::new(8, 1));
    }
}
