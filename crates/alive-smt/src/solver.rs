//! The user-facing SMT solver: assert terms, check satisfiability, read
//! models. Incremental: terms may be asserted between `check` calls, and
//! `check_assuming` solves under temporary assumptions without polluting
//! the clause database with non-definitional clauses.

use crate::blast::Blaster;
use crate::eval::Assignment;
use crate::term::{TermId, TermPool};
use crate::value::{Sort, Value};
use alive_sat::{
    Budget, Exhaustion, ProofEvent, SharedDratRecorder, SolveResult, Solver, SolverStats, Tracer,
};

/// Result of an SMT `check`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; a model is available.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// Resource limit reached.
    Unknown,
}

/// The DRAT transcript of one solver's run over its bit-blasted CNF.
///
/// Produced by [`SmtSolver::proof_transcript`]; the `alive-proof` crate's
/// checker consumes the events after a trivial conversion (the two crates
/// intentionally share no types).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProofTranscript {
    /// Number of SAT variables in the blasted formula.
    pub num_vars: usize,
    /// Chronological original/learned/deleted clause events.
    pub events: Vec<ProofEvent>,
}

/// An incremental SMT solver for QF_BV formulas.
///
/// The solver does not own the [`TermPool`]; the pool is passed to each
/// call so several solvers can share one pool (the CEGIS loop relies on
/// this).
///
/// # Examples
///
/// ```
/// use alive_smt::{SmtSolver, TermPool, SatResult, Sort, BvVal};
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x", Sort::BitVec(8));
/// let c5 = pool.bv(8, 5);
/// let c3 = pool.bv(8, 3);
/// let sum = pool.bv_add(x, c3);
/// let eq = pool.eq(sum, c5);
///
/// let mut solver = SmtSolver::new();
/// solver.assert_term(&pool, eq);
/// assert_eq!(solver.check(), SatResult::Sat);
/// assert_eq!(solver.model_bv(&pool, x), BvVal::new(8, 2));
/// ```
#[derive(Debug, Default)]
pub struct SmtSolver {
    sat: Solver,
    blaster: Blaster,
    trivially_false: bool,
    num_asserts: usize,
    /// Set when bit-blasting itself was aborted by the budget. The CNF is
    /// then missing an assertion, so every later `check` must answer
    /// `Unknown` rather than reason about the truncated formula.
    blast_exhausted: Option<Exhaustion>,
    /// Per-call exhaustion that did not reach the SAT solver (an aborted
    /// assumption blast, an injected hang); cleared at each check.
    call_exhausted: Option<Exhaustion>,
    #[cfg(feature = "fault-injection")]
    injected: bool,
    /// Structured-trace handle; disabled (one branch per site) by default.
    tracer: Tracer,
}

impl SmtSolver {
    /// Creates an empty solver.
    pub fn new() -> SmtSolver {
        SmtSolver::default()
    }

    /// Installs a structured-trace handle on this solver and its
    /// underlying SAT solver. While enabled, `assert_term` wraps
    /// bit-blasting in a `blast` span and emits `blast.nodes` /
    /// `blast.gates` (total and per op kind) counter deltas; the SAT
    /// layer adds `sat.solve` spans and CDCL counters.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.sat.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The bit-blasting statistics accumulated so far (encoded nodes and
    /// auxiliary variables per op kind), regardless of tracing.
    pub fn blast_stats(&self) -> (u64, u64) {
        (self.blaster.nodes_encoded(), self.blaster.gates_total())
    }

    /// Limits SAT conflicts per `check` call (None = unlimited).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.sat.set_conflict_budget(budget);
    }

    /// Installs a full resource [`Budget`] (deadline, counter limits,
    /// cancellation). It governs bit-blasting during `assert_term` and
    /// `check_assuming` as well as every SAT search.
    pub fn set_budget(&mut self, budget: Budget) {
        self.sat.set_budget(budget);
    }

    /// The currently installed budget.
    pub fn budget(&self) -> &Budget {
        self.sat.budget()
    }

    /// Cumulative statistics of the underlying SAT solver.
    pub fn sat_stats(&self) -> SolverStats {
        self.sat.stats()
    }

    /// Why the most recent `check`/`check_assuming` returned
    /// [`SatResult::Unknown`] (`None` after a decisive answer).
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        #[cfg(feature = "fault-injection")]
        if self.injected {
            return Some(Exhaustion::Injected);
        }
        self.blast_exhausted
            .or(self.call_exhausted)
            .or_else(|| self.sat.exhaustion())
    }

    /// Number of top-level assertions made.
    pub fn num_assertions(&self) -> usize {
        self.num_asserts
    }

    /// Turns on DRAT-style proof logging in the underlying SAT solver and
    /// returns a handle to the transcript.
    ///
    /// Call before asserting anything — clauses blasted earlier are not
    /// retroactively recorded. Use [`SmtSolver::proof_transcript`] with the
    /// returned handle to extract a checkable transcript after an `Unsat`
    /// answer.
    pub fn enable_proof_logging(&mut self) -> SharedDratRecorder {
        let handle = SharedDratRecorder::new();
        self.sat.set_proof_logger(Some(Box::new(handle.clone())));
        handle
    }

    /// `true` if a constant-false assertion short-circuited the solver (the
    /// SAT layer never sees such assertions).
    pub fn is_trivially_false(&self) -> bool {
        self.trivially_false
    }

    /// Number of variables in the bit-blasted SAT formula.
    pub fn num_sat_vars(&self) -> usize {
        self.sat.num_vars()
    }

    /// Extracts the proof transcript recorded by `handle` after a `check`
    /// that returned [`SatResult::Unsat`] with no assumptions.
    ///
    /// The transcript covers the bit-blasted CNF of everything asserted so
    /// far. A constant-false assertion never reaches the SAT solver, so in
    /// that case the transcript is completed with an explicit empty axiom
    /// (the formula contains `false`) and an empty learned clause.
    pub fn proof_transcript(&self, handle: &SharedDratRecorder) -> ProofTranscript {
        let mut events = handle.snapshot();
        if self.trivially_false {
            events.push(ProofEvent::Original(Vec::new()));
            events.push(ProofEvent::Learned(Vec::new()));
        }
        ProofTranscript {
            num_vars: self.sat.num_vars(),
            events,
        }
    }

    /// Asserts a boolean term.
    ///
    /// Blasting polls the installed budget; if the deadline passes or the
    /// cancellation token is raised mid-blast the assertion is dropped and
    /// the solver is poisoned — every later `check` answers
    /// [`SatResult::Unknown`] (the CNF would otherwise be silently missing
    /// a conjunct).
    ///
    /// # Panics
    ///
    /// Panics if the term is not boolean.
    pub fn assert_term(&mut self, pool: &TermPool, t: TermId) {
        assert_eq!(pool.sort(t), Sort::Bool, "assertion must be boolean");
        self.num_asserts += 1;
        if let Some(b) = pool.as_bool_const(t) {
            if !b {
                self.trivially_false = true;
            }
            return;
        }
        if !self.tracer.enabled() {
            match self.blaster.try_blast_bool(pool, &mut self.sat, t) {
                Ok(l) => {
                    self.sat.add_clause([l]);
                }
                Err(e) => self.blast_exhausted = Some(e),
            }
            return;
        }
        let tracer = self.tracer.clone();
        let _span = tracer.span("blast");
        let nodes_before = self.blaster.nodes_encoded();
        let gates_before = self.blaster.gates_by_op().clone();
        match self.blaster.try_blast_bool(pool, &mut self.sat, t) {
            Ok(l) => {
                self.sat.add_clause([l]);
            }
            Err(e) => self.blast_exhausted = Some(e),
        }
        tracer.counter("blast.nodes", self.blaster.nodes_encoded() - nodes_before);
        let mut total = 0u64;
        for (&kind, &gates) in self.blaster.gates_by_op() {
            let delta = gates - gates_before.get(kind).copied().unwrap_or(0);
            total += delta;
            tracer.counter_with("blast.gates", || kind.to_string(), delta);
        }
        tracer.counter("blast.gates", total);
    }

    /// Checks satisfiability of the asserted formula.
    pub fn check(&mut self) -> SatResult {
        self.clear_call_state();
        if self.trivially_false {
            return SatResult::Unsat;
        }
        if self.blast_exhausted.is_some() {
            return SatResult::Unknown;
        }
        #[cfg(feature = "fault-injection")]
        if let Some(r) = self.fire_fault() {
            return r;
        }
        Self::lift(self.sat.solve())
    }

    /// Checks satisfiability under temporary assumptions.
    ///
    /// Gate clauses for the assumption terms are added permanently (they
    /// are pure definitions), but the assumptions themselves hold only for
    /// this call. If blasting an assumption trips the budget the call
    /// answers [`SatResult::Unknown`] without poisoning the solver (the
    /// asserted formula itself is still fully encoded).
    pub fn check_assuming(&mut self, pool: &TermPool, assumptions: &[TermId]) -> SatResult {
        self.clear_call_state();
        if self.trivially_false {
            return SatResult::Unsat;
        }
        if self.blast_exhausted.is_some() {
            return SatResult::Unknown;
        }
        #[cfg(feature = "fault-injection")]
        if let Some(r) = self.fire_fault() {
            return r;
        }
        let mut lits = Vec::with_capacity(assumptions.len());
        for &t in assumptions {
            if let Some(b) = pool.as_bool_const(t) {
                if !b {
                    return SatResult::Unsat;
                }
                continue;
            }
            match self.blaster.try_blast_bool(pool, &mut self.sat, t) {
                Ok(l) => lits.push(l),
                Err(e) => {
                    self.call_exhausted = Some(e);
                    return SatResult::Unknown;
                }
            }
        }
        Self::lift(self.sat.solve_with_assumptions(&lits))
    }

    fn lift(r: SolveResult) -> SatResult {
        match r {
            SolveResult::Sat => SatResult::Sat,
            SolveResult::Unsat => SatResult::Unsat,
            SolveResult::Unknown => SatResult::Unknown,
        }
    }

    fn clear_call_state(&mut self) {
        self.call_exhausted = None;
        #[cfg(feature = "fault-injection")]
        {
            self.injected = false;
        }
    }

    /// Consults the installed [`alive_sat::fault::FailurePlan`] at the SMT
    /// query site. `Some` short-circuits the check; `None` proceeds (with
    /// `CorruptModel` having already run the solve and flipped the model).
    #[cfg(feature = "fault-injection")]
    fn fire_fault(&mut self) -> Option<SatResult> {
        use alive_sat::fault::{self, FaultKind, FaultSite};
        match fault::fire(FaultSite::Smt)? {
            FaultKind::ForceUnknown => {
                self.injected = true;
                Some(SatResult::Unknown)
            }
            FaultKind::Panic => panic!("injected fault: panic in alive_smt::SmtSolver::check"),
            FaultKind::Hang => loop {
                if let Some(e) = self.sat.budget().check_soft() {
                    self.call_exhausted = Some(e);
                    return Some(SatResult::Unknown);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            },
            FaultKind::HangHard => loop {
                // Ignores budget and cancellation alike; only a watchdog
                // detach (or process exit) ends this thread.
                std::thread::sleep(std::time::Duration::from_millis(1));
            },
            FaultKind::CorruptModel => {
                let r = Self::lift(self.sat.solve());
                if r == SatResult::Sat {
                    self.sat.corrupt_model();
                }
                Some(r)
            }
            // I/O fault kinds model disk/socket failures; an SMT check has
            // no I/O to fail, so they are inert here.
            FaultKind::IoError | FaultKind::TornWrite => None,
        }
    }

    /// Reads a bitvector variable (or any blasted bv term) from the model.
    ///
    /// Terms that never reached the SAT solver are unconstrained; they
    /// default to zero, which is a legitimate completion of the model.
    pub fn model_bv(&self, pool: &TermPool, t: TermId) -> crate::value::BvVal {
        let w = pool.width(t);
        self.blaster
            .model_bv(&self.sat, t, w)
            .unwrap_or_else(|| crate::value::BvVal::zero(w))
    }

    /// Reads a boolean term from the model (unconstrained defaults to false).
    pub fn model_bool(&self, pool: &TermPool, t: TermId) -> bool {
        debug_assert_eq!(pool.sort(t), Sort::Bool);
        self.blaster.model_bool(&self.sat, t).unwrap_or(false)
    }

    /// Builds an [`Assignment`] for the given variables from the model.
    pub fn model(&self, pool: &TermPool, vars: &[TermId]) -> Assignment {
        let mut a = Assignment::new();
        for &v in vars {
            let value: Value = match pool.sort(v) {
                Sort::Bool => Value::Bool(self.model_bool(pool, v)),
                Sort::BitVec(_) => Value::Bv(self.model_bv(pool, v)),
            };
            a.set(v, value);
        }
        a
    }

    /// Adds a blocking clause excluding the current model of `vars`.
    ///
    /// Used for all-models enumeration (type assignments, attribute
    /// inference).
    pub fn block_model(&mut self, pool: &mut TermPool, vars: &[TermId]) {
        let mut diffs = Vec::with_capacity(vars.len());
        for &v in vars {
            match pool.sort(v) {
                Sort::Bool => {
                    let b = self.model_bool(pool, v);
                    let c = pool.bool_const(b);
                    diffs.push(pool.ne(v, c));
                }
                Sort::BitVec(_) => {
                    let val = self.model_bv(pool, v);
                    let c = pool.bv_const(val);
                    diffs.push(pool.ne(v, c));
                }
            }
        }
        let clause = pool.or(diffs);
        self.assert_term(pool, clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BvVal;

    #[test]
    fn simple_equation() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let c = p.bv(8, 100);
        let two = p.bv(8, 2);
        let dbl = p.bv_mul(x, two);
        let eq = p.eq(dbl, c);
        let mut s = SmtSolver::new();
        s.assert_term(&p, eq);
        assert_eq!(s.check(), SatResult::Sat);
        let v = s.model_bv(&p, x);
        assert_eq!(v.mul(BvVal::new(8, 2)), BvVal::new(8, 100));
    }

    #[test]
    fn unsat_equation() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        // x + 1 == x is unsat.
        let one = p.bv(8, 1);
        let inc = p.bv_add(x, one);
        let eq = p.eq(inc, x);
        let mut s = SmtSolver::new();
        s.assert_term(&p, eq);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn trivially_false_assertion() {
        let mut p = TermPool::new();
        let f = p.fls();
        let mut s = SmtSolver::new();
        s.assert_term(&p, f);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn check_assuming_is_temporary() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let zero = p.bv(4, 0);
        let is_zero = p.eq(x, zero);
        let not_zero = p.not(is_zero);
        let mut s = SmtSolver::new();
        assert_eq!(s.check_assuming(&p, &[is_zero]), SatResult::Sat);
        assert_eq!(s.model_bv(&p, x), BvVal::zero(4));
        assert_eq!(s.check_assuming(&p, &[not_zero]), SatResult::Sat);
        assert_ne!(s.model_bv(&p, x), BvVal::zero(4));
        assert_eq!(s.check_assuming(&p, &[is_zero, not_zero]), SatResult::Unsat);
        // No permanent damage.
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn model_enumeration_via_blocking() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(2));
        let three = p.bv(2, 3);
        let lt = p.bv_ult(x, three);
        let mut s = SmtSolver::new();
        s.assert_term(&p, lt);
        let mut seen = Vec::new();
        loop {
            match s.check() {
                SatResult::Sat => {
                    seen.push(s.model_bv(&p, x).bits());
                    s.block_model(&mut p, &[x]);
                }
                SatResult::Unsat => break,
                SatResult::Unknown => panic!("unexpected unknown"),
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
