//! A from-scratch SMT stack for quantifier-free (and singly-quantified)
//! bitvector formulas.
//!
//! This crate replaces the Z3 dependency of the original Alive (PLDI 2015)
//! implementation. It provides:
//!
//! * [`TermPool`] — hash-consed boolean/bitvector terms with simplifying
//!   constructors,
//! * [`BvVal`] — concrete bitvector values with SMT-LIB reference semantics,
//! * [`eval`] — a reference evaluator (ground truth for testing and for
//!   counterexample value reporting),
//! * [`Blaster`] — Tseitin bit-blasting to the [`alive_sat`] CDCL solver,
//! * [`SmtSolver`] — an incremental assert/check/model facade, and
//! * [`solve_exists_forall`] — a CEGIS loop for the `∃∀` queries that
//!   arise from `undef` values in the source template of an Alive
//!   transformation (paper §3.1.2).
//!
//! # Examples
//!
//! Prove that `x + x == 2*x` at width 8 by refutation:
//!
//! ```
//! use alive_smt::{TermPool, SmtSolver, SatResult, Sort};
//!
//! let mut pool = TermPool::new();
//! let x = pool.var("x", Sort::BitVec(8));
//! let two = pool.bv(8, 2);
//! let lhs = pool.bv_add(x, x);
//! let rhs = pool.bv_mul(two, x);
//! let neq = pool.ne(lhs, rhs);
//!
//! let mut solver = SmtSolver::new();
//! solver.assert_term(&pool, neq);
//! assert_eq!(solver.check(), SatResult::Unsat); // no counterexample
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blast;
mod eval;
mod qe;
mod solver;
mod subst;
mod term;
mod value;

pub use alive_sat::{Budget, CancelToken, Exhaustion, ProofEvent, Tracer};
pub use blast::{Blasted, Blaster};
pub use eval::{eval, Assignment, EvalError};
pub use qe::{
    solve_exists_forall, solve_exists_forall_full, solve_exists_forall_with_proof, EfConfig,
    EfOutcome, EfResult, EfStats,
};
pub use solver::{ProofTranscript, SatResult, SmtSolver};
pub use subst::{substitute, substitute_assignment};
pub use term::{Op, Term, TermId, TermPool};
pub use value::{BvVal, Sort, Value};
