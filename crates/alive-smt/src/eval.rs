//! Concrete evaluation of terms under a variable assignment.
//!
//! The evaluator defines the reference semantics the bit-blaster is tested
//! against, and is used to complete partial models and to compute the
//! intermediate values shown in counterexamples (Fig. 5 of the paper).

use crate::term::{Op, TermId, TermPool};
use crate::value::Value;
use std::collections::HashMap;

/// A (possibly partial) assignment of values to variable terms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    values: HashMap<TermId, Value>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Binds a variable term to a value.
    pub fn set(&mut self, var: TermId, value: impl Into<Value>) {
        self.values.insert(var, value.into());
    }

    /// Looks up a variable's value.
    pub fn get(&self, var: TermId) -> Option<Value> {
        self.values.get(&var).copied()
    }

    /// Iterates over the bound (variable, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, Value)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Errors from [`eval`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no value in the assignment.
    UnboundVar(TermId, String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVar(id, name) => {
                write!(f, "unbound variable {name} (term #{})", id.index())
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `root` under `env`.
///
/// Uses an explicit work stack, so arbitrarily deep terms (e.g. the
/// ite-chains produced by the eager memory encoding) do not overflow the
/// call stack.
///
/// # Errors
///
/// Returns [`EvalError::UnboundVar`] if a reachable variable is unbound.
pub fn eval(pool: &TermPool, root: TermId, env: &Assignment) -> Result<Value, EvalError> {
    let mut memo: HashMap<TermId, Value> = HashMap::new();
    let mut stack: Vec<(TermId, bool)> = vec![(root, false)];

    while let Some((id, expanded)) = stack.pop() {
        if memo.contains_key(&id) {
            continue;
        }
        let term = pool.term(id);
        if !expanded {
            stack.push((id, true));
            for c in term.op.children() {
                if !memo.contains_key(&c) {
                    stack.push((c, false));
                }
            }
            continue;
        }
        let get = |t: TermId| -> Value { memo[&t] };
        let v: Value = match &term.op {
            Op::BoolConst(b) => Value::Bool(*b),
            Op::BvConst(v) => Value::Bv(*v),
            Op::Var(_) => match env.get(id) {
                Some(v) => v,
                None => {
                    let name = pool.var_name(id).unwrap_or("?").to_string();
                    return Err(EvalError::UnboundVar(id, name));
                }
            },
            Op::Not(a) => Value::Bool(!get(*a).as_bool()),
            Op::And(cs) => Value::Bool(cs.iter().all(|&c| get(c).as_bool())),
            Op::Or(cs) => Value::Bool(cs.iter().any(|&c| get(c).as_bool())),
            Op::Xor(a, b) => Value::Bool(get(*a).as_bool() ^ get(*b).as_bool()),
            Op::Implies(a, b) => Value::Bool(!get(*a).as_bool() || get(*b).as_bool()),
            Op::Eq(a, b) => Value::Bool(get(*a) == get(*b)),
            Op::Ite(c, t, e) => {
                if get(*c).as_bool() {
                    get(*t)
                } else {
                    get(*e)
                }
            }
            Op::BvNot(a) => get(*a).as_bv().not().into(),
            Op::BvAnd(a, b) => get(*a).as_bv().and(get(*b).as_bv()).into(),
            Op::BvOr(a, b) => get(*a).as_bv().or(get(*b).as_bv()).into(),
            Op::BvXor(a, b) => get(*a).as_bv().xor(get(*b).as_bv()).into(),
            Op::BvNeg(a) => get(*a).as_bv().neg().into(),
            Op::BvAdd(a, b) => get(*a).as_bv().add(get(*b).as_bv()).into(),
            Op::BvSub(a, b) => get(*a).as_bv().sub(get(*b).as_bv()).into(),
            Op::BvMul(a, b) => get(*a).as_bv().mul(get(*b).as_bv()).into(),
            Op::BvUdiv(a, b) => get(*a).as_bv().udiv(get(*b).as_bv()).into(),
            Op::BvUrem(a, b) => get(*a).as_bv().urem(get(*b).as_bv()).into(),
            Op::BvSdiv(a, b) => get(*a).as_bv().sdiv(get(*b).as_bv()).into(),
            Op::BvSrem(a, b) => get(*a).as_bv().srem(get(*b).as_bv()).into(),
            Op::BvShl(a, b) => get(*a).as_bv().shl(get(*b).as_bv()).into(),
            Op::BvLshr(a, b) => get(*a).as_bv().lshr(get(*b).as_bv()).into(),
            Op::BvAshr(a, b) => get(*a).as_bv().ashr(get(*b).as_bv()).into(),
            Op::BvUlt(a, b) => Value::Bool(get(*a).as_bv().ult(get(*b).as_bv())),
            Op::BvUle(a, b) => Value::Bool(get(*a).as_bv().ule(get(*b).as_bv())),
            Op::BvSlt(a, b) => Value::Bool(get(*a).as_bv().slt(get(*b).as_bv())),
            Op::BvSle(a, b) => Value::Bool(get(*a).as_bv().sle(get(*b).as_bv())),
            Op::ZExt(a) => get(*a).as_bv().zext(term.sort.width()).into(),
            Op::SExt(a) => get(*a).as_bv().sext(term.sort.width()).into(),
            Op::Extract(a, hi, lo) => get(*a).as_bv().extract(*hi, *lo).into(),
            Op::Concat(a, b) => get(*a).as_bv().concat(get(*b).as_bv()).into(),
        };
        memo.insert(id, v);
    }
    Ok(memo[&root])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{BvVal, Sort};

    #[test]
    fn evaluates_arithmetic() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let y = p.var("y", Sort::BitVec(8));
        let sum = p.bv_add(x, y);
        let prod = p.bv_mul(sum, x);
        let mut env = Assignment::new();
        env.set(x, BvVal::new(8, 3));
        env.set(y, BvVal::new(8, 4));
        assert_eq!(eval(&p, prod, &env).unwrap(), Value::Bv(BvVal::new(8, 21)));
    }

    #[test]
    fn evaluates_booleans_and_ite() {
        let mut p = TermPool::new();
        let c = p.var("c", Sort::Bool);
        let x = p.var("x", Sort::BitVec(4));
        let y = p.var("y", Sort::BitVec(4));
        let ite = p.ite(c, x, y);
        let mut env = Assignment::new();
        env.set(c, true);
        env.set(x, BvVal::new(4, 1));
        env.set(y, BvVal::new(4, 2));
        assert_eq!(eval(&p, ite, &env).unwrap(), Value::Bv(BvVal::new(4, 1)));
        env.set(c, false);
        assert_eq!(eval(&p, ite, &env).unwrap(), Value::Bv(BvVal::new(4, 2)));
    }

    #[test]
    fn unbound_var_reports_name() {
        let mut p = TermPool::new();
        let x = p.var("lonely", Sort::Bool);
        let env = Assignment::new();
        let err = eval(&p, x, &env).unwrap_err();
        assert!(err.to_string().contains("lonely"));
    }

    #[test]
    fn deep_ite_chain_does_not_overflow() {
        let mut p = TermPool::new();
        let c = p.var("c", Sort::Bool);
        let mut acc = p.bv(8, 0);
        for i in 0..50_000u32 {
            let k = p.bv(8, (i % 256) as u128);
            acc = p.ite(c, k, acc);
        }
        let mut env = Assignment::new();
        env.set(c, false);
        assert_eq!(eval(&p, acc, &env).unwrap(), Value::Bv(BvVal::zero(8)));
    }
}
