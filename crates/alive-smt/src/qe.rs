//! Exists-forall solving by counterexample-guided instantiation (CEGIS).
//!
//! The Alive correctness conditions are of the form
//! `∀ inputs, target-undef ∃ source-undef : ok(...)` (paper §3.1.2). Their
//! negation — what we hand to the solver — is `∃ x ∀ u : ¬ok(x, u)`. With
//! no source `undef` variables the formula is quantifier-free and a single
//! SAT call decides it; otherwise this module runs the classic CEGIS loop:
//!
//! 1. guess a candidate `x*` consistent with all universal instantiations
//!    seen so far;
//! 2. check `∃ u : ok(x*, u)`; if none exists, `x*` is a true witness;
//! 3. otherwise add the instantiation `¬ok(x, u*)` and repeat.
//!
//! Termination is guaranteed because bitvector domains are finite (each
//! counterexample `u*` removes at least `x*` from the candidate space).

use crate::eval::Assignment;
use crate::solver::{ProofTranscript, SatResult, SmtSolver};
use crate::subst::substitute_assignment;
use crate::term::{TermId, TermPool};

/// Result of an exists-forall query.
#[derive(Clone, Debug, PartialEq)]
pub enum EfResult {
    /// A witness for the existential variables such that the matrix holds
    /// for all values of the universal variables.
    Sat(Assignment),
    /// No such witness exists.
    Unsat,
    /// Iteration or conflict budget exhausted.
    Unknown,
}

/// Configuration for [`solve_exists_forall`].
#[derive(Clone, Copy, Debug)]
pub struct EfConfig {
    /// Maximum CEGIS refinement iterations.
    pub max_iterations: usize,
    /// SAT conflict budget per sub-query (None = unlimited).
    pub conflict_budget: Option<u64>,
    /// Seed the candidate solver with the all-zeros instantiation of the
    /// universal variables before the first guess. Saves one round trip in
    /// the common case; disable to measure the unseeded loop (ablation).
    pub seed_with_zero: bool,
}

impl Default for EfConfig {
    fn default() -> EfConfig {
        EfConfig {
            max_iterations: 4096,
            conflict_budget: None,
            seed_with_zero: true,
        }
    }
}

/// Solves `∃ exist_vars ∀ univ_vars : matrix`.
///
/// `matrix` must be boolean. Variables not listed in either set are
/// treated as existential (they end up in the witness if blasted).
pub fn solve_exists_forall(
    pool: &mut TermPool,
    exist_vars: &[TermId],
    univ_vars: &[TermId],
    matrix: TermId,
    config: &EfConfig,
) -> EfResult {
    solve_ef(pool, exist_vars, univ_vars, matrix, config, false).0
}

/// Like [`solve_exists_forall`], but on an `Unsat` answer also returns the
/// DRAT transcript refuting the bit-blasted CNF.
///
/// In the quantifier-free case the transcript refutes the blasted matrix
/// itself, so checking it re-establishes the answer end to end. In the
/// CEGIS case the refuted CNF is the matrix seeded and refined with the
/// universal instantiations discovered during the run (each instantiation
/// appears as axiom clauses): the transcript certifies that the candidate
/// space was genuinely exhausted, though the instantiations themselves are
/// substitutions computed outside the SAT solver.
pub fn solve_exists_forall_with_proof(
    pool: &mut TermPool,
    exist_vars: &[TermId],
    univ_vars: &[TermId],
    matrix: TermId,
    config: &EfConfig,
) -> (EfResult, Option<ProofTranscript>) {
    solve_ef(pool, exist_vars, univ_vars, matrix, config, true)
}

fn solve_ef(
    pool: &mut TermPool,
    exist_vars: &[TermId],
    univ_vars: &[TermId],
    matrix: TermId,
    config: &EfConfig,
    want_proof: bool,
) -> (EfResult, Option<ProofTranscript>) {
    if univ_vars.is_empty() {
        // Quantifier-free: single query.
        let mut s = SmtSolver::new();
        let handle = want_proof.then(|| s.enable_proof_logging());
        s.set_conflict_budget(config.conflict_budget);
        s.assert_term(pool, matrix);
        return match s.check() {
            SatResult::Sat => (EfResult::Sat(s.model(pool, exist_vars)), None),
            SatResult::Unsat => {
                let transcript = handle.as_ref().map(|h| s.proof_transcript(h));
                (EfResult::Unsat, transcript)
            }
            SatResult::Unknown => (EfResult::Unknown, None),
        };
    }

    let mut candidates = SmtSolver::new();
    let handle = want_proof.then(|| candidates.enable_proof_logging());
    candidates.set_conflict_budget(config.conflict_budget);
    if config.seed_with_zero {
        // Seed with one instantiation (all universals zero) so the first
        // candidate is already filtered.
        let zero_env = {
            let mut env = Assignment::new();
            for &u in univ_vars {
                match pool.sort(u) {
                    crate::value::Sort::Bool => env.set(u, false),
                    crate::value::Sort::BitVec(w) => env.set(u, crate::value::BvVal::zero(w)),
                }
            }
            env
        };
        let seeded = substitute_assignment(pool, matrix, &zero_env);
        candidates.assert_term(pool, seeded);
    } else {
        let t = pool.tru();
        candidates.assert_term(pool, t);
    }

    let not_matrix = pool.not(matrix);

    for _ in 0..config.max_iterations {
        match candidates.check() {
            SatResult::Unsat => {
                let transcript = handle.as_ref().map(|h| candidates.proof_transcript(h));
                return (EfResult::Unsat, transcript);
            }
            SatResult::Unknown => return (EfResult::Unknown, None),
            SatResult::Sat => {}
        }
        let x_star = candidates.model(pool, exist_vars);

        // Verify: does some u break the candidate?  ∃u: ¬matrix(x*, u)
        let check_term = substitute_assignment(pool, not_matrix, &x_star);
        let mut verifier = SmtSolver::new();
        verifier.set_conflict_budget(config.conflict_budget);
        verifier.assert_term(pool, check_term);
        match verifier.check() {
            SatResult::Unsat => return (EfResult::Sat(x_star), None),
            SatResult::Unknown => return (EfResult::Unknown, None),
            SatResult::Sat => {
                let u_star = verifier.model(pool, univ_vars);
                let refined = substitute_assignment(pool, matrix, &u_star);
                candidates.assert_term(pool, refined);
            }
        }
    }
    (EfResult::Unknown, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{BvVal, Sort};

    #[test]
    fn qf_case_delegates_to_plain_solve() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let seven = p.bv(4, 7);
        let eq = p.eq(x, seven);
        match solve_exists_forall(&mut p, &[x], &[], eq, &EfConfig::default()) {
            EfResult::Sat(m) => assert_eq!(m.get(x).unwrap().as_bv(), BvVal::new(4, 7)),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn exists_x_forall_u_x_and_u_commutative_identity() {
        // ∃x ∀u: x & u == u  has the witness x = 1111.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let u = p.var("u", Sort::BitVec(4));
        let conj = p.bv_and(x, u);
        let matrix = p.eq(conj, u);
        match solve_exists_forall(&mut p, &[x], &[u], matrix, &EfConfig::default()) {
            EfResult::Sat(m) => {
                assert_eq!(m.get(x).unwrap().as_bv(), BvVal::ones(4));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn exists_x_forall_u_x_equals_u_is_unsat() {
        // No x equals every u (width 4 has 16 distinct values).
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let u = p.var("u", Sort::BitVec(4));
        let matrix = p.eq(x, u);
        assert_eq!(
            solve_exists_forall(&mut p, &[x], &[u], matrix, &EfConfig::default()),
            EfResult::Unsat
        );
    }

    #[test]
    fn forall_u_tautology_with_no_existentials() {
        // ∀u: u | !u == ones — trivially true, no existentials to find.
        let mut p = TermPool::new();
        let u = p.var("u", Sort::BitVec(4));
        let nu = p.bv_not(u);
        let or = p.bv_or(u, nu);
        let ones = p.bv(4, 0xF);
        let matrix = p.eq(or, ones);
        match solve_exists_forall(&mut p, &[], &[u], matrix, &EfConfig::default()) {
            EfResult::Sat(_) => {}
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn qf_unsat_comes_with_transcript() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let one = p.bv(4, 1);
        let inc = p.bv_add(x, one);
        let matrix = p.eq(inc, x); // x + 1 == x is unsat
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[], matrix, &EfConfig::default());
        assert_eq!(result, EfResult::Unsat);
        let transcript = proof.expect("unsat must carry a transcript");
        assert!(transcript.num_vars > 0);
        assert!(transcript
            .events
            .iter()
            .any(|e| matches!(e, crate::ProofEvent::Learned(c) if c.is_empty())));
    }

    #[test]
    fn cegis_unsat_comes_with_transcript() {
        // ∃x ∀u: x == u is unsat; the refutation covers the refined CNF.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(3));
        let u = p.var("u", Sort::BitVec(3));
        let matrix = p.eq(x, u);
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[u], matrix, &EfConfig::default());
        assert_eq!(result, EfResult::Unsat);
        let transcript = proof.expect("unsat must carry a transcript");
        assert!(transcript
            .events
            .iter()
            .any(|e| matches!(e, crate::ProofEvent::Learned(c) if c.is_empty())));
    }

    #[test]
    fn sat_answers_have_no_transcript() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let seven = p.bv(4, 7);
        let matrix = p.eq(x, seven);
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[], matrix, &EfConfig::default());
        assert!(matches!(result, EfResult::Sat(_)));
        assert!(proof.is_none());
    }

    #[test]
    fn trivially_false_matrix_still_yields_refutation() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let matrix = p.fls();
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[], matrix, &EfConfig::default());
        assert_eq!(result, EfResult::Unsat);
        let transcript = proof.expect("unsat must carry a transcript");
        assert!(transcript
            .events
            .iter()
            .any(|e| matches!(e, crate::ProofEvent::Learned(c) if c.is_empty())));
    }

    #[test]
    fn iteration_budget_yields_unknown() {
        // ∃x ∀u: (x ^ u) <u 8  is false at width 4, but give the loop only
        // one iteration so it cannot finish refuting all candidates.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let u = p.var("u", Sort::BitVec(4));
        let xu = p.bv_xor(x, u);
        let eight = p.bv(4, 8);
        let matrix = p.bv_ult(xu, eight);
        let config = EfConfig {
            max_iterations: 1,
            conflict_budget: None,
            ..EfConfig::default()
        };
        assert_eq!(
            solve_exists_forall(&mut p, &[x], &[u], matrix, &config),
            EfResult::Unknown
        );
    }
}
