//! Exists-forall solving by counterexample-guided instantiation (CEGIS).
//!
//! The Alive correctness conditions are of the form
//! `∀ inputs, target-undef ∃ source-undef : ok(...)` (paper §3.1.2). Their
//! negation — what we hand to the solver — is `∃ x ∀ u : ¬ok(x, u)`. With
//! no source `undef` variables the formula is quantifier-free and a single
//! SAT call decides it; otherwise this module runs the classic CEGIS loop:
//!
//! 1. guess a candidate `x*` consistent with all universal instantiations
//!    seen so far;
//! 2. check `∃ u : ok(x*, u)`; if none exists, `x*` is a true witness;
//! 3. otherwise add the instantiation `¬ok(x, u*)` and repeat.
//!
//! Termination is guaranteed because bitvector domains are finite (each
//! counterexample `u*` removes at least `x*` from the candidate space).

use crate::eval::Assignment;
use crate::solver::{ProofTranscript, SatResult, SmtSolver};
use crate::subst::substitute_assignment;
use crate::term::{TermId, TermPool};
use alive_sat::{Budget, Tracer};

/// Result of an exists-forall query.
#[derive(Clone, Debug, PartialEq)]
pub enum EfResult {
    /// A witness for the existential variables such that the matrix holds
    /// for all values of the universal variables.
    Sat(Assignment),
    /// No such witness exists.
    Unsat,
    /// Gave up; the payload says why (iteration limit, budget exhaustion,
    /// cancellation, ...).
    Unknown(String),
}

/// Configuration for [`solve_exists_forall`].
#[derive(Clone, Debug)]
pub struct EfConfig {
    /// Maximum CEGIS refinement iterations.
    pub max_iterations: usize,
    /// SAT conflict budget per sub-query (None = unlimited). Subsumed by
    /// [`EfConfig::budget`]; kept as a convenience knob — it fills
    /// `budget.conflicts` when that is unset.
    pub conflict_budget: Option<u64>,
    /// Resource budget governing the whole query. The deadline and
    /// cancellation token are shared across every sub-solver of the CEGIS
    /// loop (the deadline is absolute), so `deadline_in(t)` bounds the
    /// entire exists-forall solve, not each SAT call.
    pub budget: Budget,
    /// Seed the candidate solver with the all-zeros instantiation of the
    /// universal variables before the first guess. Saves one round trip in
    /// the common case; disable to measure the unseeded loop (ablation).
    pub seed_with_zero: bool,
    /// Structured-trace handle cloned into every sub-solver; the disabled
    /// default costs one branch per emission site. Deliberately excluded
    /// from the journal's config fingerprint — tracing cannot change
    /// verdicts.
    pub tracer: Tracer,
}

impl Default for EfConfig {
    fn default() -> EfConfig {
        EfConfig {
            max_iterations: 4096,
            conflict_budget: None,
            budget: Budget::default(),
            seed_with_zero: true,
            tracer: Tracer::disabled(),
        }
    }
}

impl EfConfig {
    /// The budget actually installed in sub-solvers: [`EfConfig::budget`]
    /// with the legacy `conflict_budget` folded in when no conflict limit
    /// was set there.
    fn effective_budget(&self) -> Budget {
        let mut b = self.budget.clone();
        if b.conflicts.is_none() {
            b.conflicts = self.conflict_budget;
        }
        b
    }
}

/// Counters describing one exists-forall solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EfStats {
    /// Total SAT conflicts across every sub-solver.
    pub conflicts: u64,
    /// CEGIS refinement rounds run (0 for the quantifier-free path).
    pub rounds: usize,
    /// Total literals propagated across every sub-solver.
    pub propagations: u64,
    /// Total decisions taken across every sub-solver.
    pub decisions: u64,
    /// Total restarts performed across every sub-solver.
    pub restarts: u64,
    /// Number of SAT `solve` calls issued across every sub-solver.
    pub sat_calls: u64,
}

impl EfStats {
    /// Folds a sub-solver's cumulative SAT statistics into these totals.
    /// Call exactly once per solver (the stats are lifetime counters).
    fn absorb(&mut self, s: &SmtSolver) {
        let ss = s.sat_stats();
        self.conflicts += ss.conflicts;
        self.propagations += ss.propagations;
        self.decisions += ss.decisions;
        self.restarts += ss.restarts;
        self.sat_calls += ss.sat_calls;
    }
}

/// Everything [`solve_exists_forall_full`] has to say about a query.
#[derive(Clone, Debug)]
pub struct EfOutcome {
    /// The verdict.
    pub result: EfResult,
    /// DRAT transcript on `Unsat` when proof logging was requested.
    pub transcript: Option<ProofTranscript>,
    /// Resource counters for reporting.
    pub stats: EfStats,
}

/// Solves `∃ exist_vars ∀ univ_vars : matrix`.
///
/// `matrix` must be boolean. Variables not listed in either set are
/// treated as existential (they end up in the witness if blasted).
pub fn solve_exists_forall(
    pool: &mut TermPool,
    exist_vars: &[TermId],
    univ_vars: &[TermId],
    matrix: TermId,
    config: &EfConfig,
) -> EfResult {
    solve_exists_forall_full(pool, exist_vars, univ_vars, matrix, config, false).result
}

/// Like [`solve_exists_forall`], but on an `Unsat` answer also returns the
/// DRAT transcript refuting the bit-blasted CNF.
///
/// In the quantifier-free case the transcript refutes the blasted matrix
/// itself, so checking it re-establishes the answer end to end. In the
/// CEGIS case the refuted CNF is the matrix seeded and refined with the
/// universal instantiations discovered during the run (each instantiation
/// appears as axiom clauses): the transcript certifies that the candidate
/// space was genuinely exhausted, though the instantiations themselves are
/// substitutions computed outside the SAT solver.
pub fn solve_exists_forall_with_proof(
    pool: &mut TermPool,
    exist_vars: &[TermId],
    univ_vars: &[TermId],
    matrix: TermId,
    config: &EfConfig,
) -> (EfResult, Option<ProofTranscript>) {
    let outcome = solve_exists_forall_full(pool, exist_vars, univ_vars, matrix, config, true);
    (outcome.result, outcome.transcript)
}

/// Formats why a sub-solver answered `Unknown`.
fn unknown_reason(s: &SmtSolver, what: &str) -> String {
    match s.exhaustion() {
        Some(e) => format!("{what}: {e}"),
        None => format!("{what}: resource budget exhausted"),
    }
}

/// The full-fat entry point: solves `∃ exist_vars ∀ univ_vars : matrix` and
/// reports the verdict together with resource statistics (and, when
/// `want_proof` is set, a DRAT transcript on `Unsat`).
///
/// One [`Budget`] governs the whole query: its deadline and cancellation
/// token are cloned into the candidate solver, every per-round verifier
/// solver, and polled between CEGIS rounds, so a five-second deadline means
/// five seconds for the query — however many SAT calls that turns out to be.
pub fn solve_exists_forall_full(
    pool: &mut TermPool,
    exist_vars: &[TermId],
    univ_vars: &[TermId],
    matrix: TermId,
    config: &EfConfig,
    want_proof: bool,
) -> EfOutcome {
    let budget = config.effective_budget();
    let mut stats = EfStats::default();

    if univ_vars.is_empty() {
        // Quantifier-free: single query.
        let mut s = SmtSolver::new();
        let handle = want_proof.then(|| s.enable_proof_logging());
        s.set_budget(budget);
        s.set_tracer(config.tracer.clone());
        s.assert_term(pool, matrix);
        let check = s.check();
        stats.absorb(&s);
        let (result, transcript) = match check {
            SatResult::Sat => (EfResult::Sat(s.model(pool, exist_vars)), None),
            SatResult::Unsat => {
                let transcript = handle.as_ref().map(|h| s.proof_transcript(h));
                (EfResult::Unsat, transcript)
            }
            SatResult::Unknown => (
                EfResult::Unknown(unknown_reason(&s, "quantifier-free query")),
                None,
            ),
        };
        return EfOutcome {
            result,
            transcript,
            stats,
        };
    }

    let mut candidates = SmtSolver::new();
    let handle = want_proof.then(|| candidates.enable_proof_logging());
    candidates.set_budget(budget.clone());
    candidates.set_tracer(config.tracer.clone());
    if config.seed_with_zero {
        // Seed with one instantiation (all universals zero) so the first
        // candidate is already filtered.
        let zero_env = {
            let mut env = Assignment::new();
            for &u in univ_vars {
                match pool.sort(u) {
                    crate::value::Sort::Bool => env.set(u, false),
                    crate::value::Sort::BitVec(w) => env.set(u, crate::value::BvVal::zero(w)),
                }
            }
            env
        };
        let seeded = substitute_assignment(pool, matrix, &zero_env);
        candidates.assert_term(pool, seeded);
    } else {
        let t = pool.tru();
        candidates.assert_term(pool, t);
    }

    let not_matrix = pool.not(matrix);

    let finish = |result: EfResult, transcript, stats| EfOutcome {
        result,
        transcript,
        stats,
    };

    for _ in 0..config.max_iterations {
        stats.rounds += 1;
        let _round = config
            .tracer
            .span_with("cegis.round", || stats.rounds.to_string());
        config.tracer.counter("cegis.rounds", 1);
        // The inter-round poll: even if every individual SAT call is cheap,
        // a long refinement loop must still observe the shared deadline and
        // cancellation promptly.
        if let Some(e) = budget.check_soft() {
            stats.absorb(&candidates);
            return finish(
                EfResult::Unknown(format!("CEGIS round {}: {e}", stats.rounds)),
                None,
                stats,
            );
        }
        match candidates.check() {
            SatResult::Unsat => {
                let transcript = handle.as_ref().map(|h| candidates.proof_transcript(h));
                stats.absorb(&candidates);
                return finish(EfResult::Unsat, transcript, stats);
            }
            SatResult::Unknown => {
                let reason = unknown_reason(&candidates, "candidate search");
                stats.absorb(&candidates);
                return finish(EfResult::Unknown(reason), None, stats);
            }
            SatResult::Sat => {}
        }
        let x_star = candidates.model(pool, exist_vars);

        // Verify: does some u break the candidate?  ∃u: ¬matrix(x*, u)
        let check_term = substitute_assignment(pool, not_matrix, &x_star);
        let mut verifier = SmtSolver::new();
        verifier.set_budget(budget.clone());
        verifier.set_tracer(config.tracer.clone());
        verifier.assert_term(pool, check_term);
        let verdict = verifier.check();
        stats.absorb(&verifier);
        match verdict {
            SatResult::Unsat => {
                stats.absorb(&candidates);
                return finish(EfResult::Sat(x_star), None, stats);
            }
            SatResult::Unknown => {
                let reason = unknown_reason(&verifier, "counterexample search");
                stats.absorb(&candidates);
                return finish(EfResult::Unknown(reason), None, stats);
            }
            SatResult::Sat => {
                let u_star = verifier.model(pool, univ_vars);
                let refined = substitute_assignment(pool, matrix, &u_star);
                candidates.assert_term(pool, refined);
            }
        }
    }
    stats.absorb(&candidates);
    finish(
        EfResult::Unknown(format!(
            "CEGIS iteration limit of {} reached",
            config.max_iterations
        )),
        None,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{BvVal, Sort};

    #[test]
    fn qf_case_delegates_to_plain_solve() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let seven = p.bv(4, 7);
        let eq = p.eq(x, seven);
        match solve_exists_forall(&mut p, &[x], &[], eq, &EfConfig::default()) {
            EfResult::Sat(m) => assert_eq!(m.get(x).unwrap().as_bv(), BvVal::new(4, 7)),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn exists_x_forall_u_x_and_u_commutative_identity() {
        // ∃x ∀u: x & u == u  has the witness x = 1111.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let u = p.var("u", Sort::BitVec(4));
        let conj = p.bv_and(x, u);
        let matrix = p.eq(conj, u);
        match solve_exists_forall(&mut p, &[x], &[u], matrix, &EfConfig::default()) {
            EfResult::Sat(m) => {
                assert_eq!(m.get(x).unwrap().as_bv(), BvVal::ones(4));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn exists_x_forall_u_x_equals_u_is_unsat() {
        // No x equals every u (width 4 has 16 distinct values).
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let u = p.var("u", Sort::BitVec(4));
        let matrix = p.eq(x, u);
        assert_eq!(
            solve_exists_forall(&mut p, &[x], &[u], matrix, &EfConfig::default()),
            EfResult::Unsat
        );
    }

    #[test]
    fn forall_u_tautology_with_no_existentials() {
        // ∀u: u | !u == ones — trivially true, no existentials to find.
        let mut p = TermPool::new();
        let u = p.var("u", Sort::BitVec(4));
        let nu = p.bv_not(u);
        let or = p.bv_or(u, nu);
        let ones = p.bv(4, 0xF);
        let matrix = p.eq(or, ones);
        match solve_exists_forall(&mut p, &[], &[u], matrix, &EfConfig::default()) {
            EfResult::Sat(_) => {}
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn qf_unsat_comes_with_transcript() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let one = p.bv(4, 1);
        let inc = p.bv_add(x, one);
        let matrix = p.eq(inc, x); // x + 1 == x is unsat
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[], matrix, &EfConfig::default());
        assert_eq!(result, EfResult::Unsat);
        let transcript = proof.expect("unsat must carry a transcript");
        assert!(transcript.num_vars > 0);
        assert!(transcript
            .events
            .iter()
            .any(|e| matches!(e, crate::ProofEvent::Learned(c) if c.is_empty())));
    }

    #[test]
    fn cegis_unsat_comes_with_transcript() {
        // ∃x ∀u: x == u is unsat; the refutation covers the refined CNF.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(3));
        let u = p.var("u", Sort::BitVec(3));
        let matrix = p.eq(x, u);
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[u], matrix, &EfConfig::default());
        assert_eq!(result, EfResult::Unsat);
        let transcript = proof.expect("unsat must carry a transcript");
        assert!(transcript
            .events
            .iter()
            .any(|e| matches!(e, crate::ProofEvent::Learned(c) if c.is_empty())));
    }

    #[test]
    fn sat_answers_have_no_transcript() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let seven = p.bv(4, 7);
        let matrix = p.eq(x, seven);
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[], matrix, &EfConfig::default());
        assert!(matches!(result, EfResult::Sat(_)));
        assert!(proof.is_none());
    }

    #[test]
    fn trivially_false_matrix_still_yields_refutation() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let matrix = p.fls();
        let (result, proof) =
            solve_exists_forall_with_proof(&mut p, &[x], &[], matrix, &EfConfig::default());
        assert_eq!(result, EfResult::Unsat);
        let transcript = proof.expect("unsat must carry a transcript");
        assert!(transcript
            .events
            .iter()
            .any(|e| matches!(e, crate::ProofEvent::Learned(c) if c.is_empty())));
    }

    #[test]
    fn iteration_budget_yields_unknown() {
        // ∃x ∀u: (x ^ u) <u 8  is false at width 4, but give the loop only
        // one iteration so it cannot finish refuting all candidates.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(4));
        let u = p.var("u", Sort::BitVec(4));
        let xu = p.bv_xor(x, u);
        let eight = p.bv(4, 8);
        let matrix = p.bv_ult(xu, eight);
        let config = EfConfig {
            max_iterations: 1,
            conflict_budget: None,
            ..EfConfig::default()
        };
        match solve_exists_forall(&mut p, &[x], &[u], matrix, &config) {
            EfResult::Unknown(reason) => {
                assert!(
                    reason.contains("iteration limit"),
                    "reason should name the iteration limit, got: {reason}"
                );
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_stops_the_whole_query() {
        // The deadline is shared across the CEGIS loop: an already-expired
        // deadline stops the query before the first round, with a reason
        // naming the wall clock.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let u = p.var("u", Sort::BitVec(8));
        let xu = p.bv_xor(x, u);
        let c = p.bv(8, 8);
        let matrix = p.bv_ult(xu, c);
        let config = EfConfig {
            budget: alive_sat::Budget::default().deadline_in(std::time::Duration::ZERO),
            ..EfConfig::default()
        };
        match solve_exists_forall(&mut p, &[x], &[u], matrix, &config) {
            EfResult::Unknown(reason) => {
                assert!(
                    reason.contains("deadline"),
                    "reason should name the deadline, got: {reason}"
                );
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_the_query_with_reason() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let u = p.var("u", Sort::BitVec(8));
        let matrix = p.eq(x, u);
        let token = alive_sat::CancelToken::new();
        token.cancel();
        let config = EfConfig {
            budget: alive_sat::Budget::default().with_cancel(token),
            ..EfConfig::default()
        };
        match solve_exists_forall(&mut p, &[x], &[u], matrix, &config) {
            EfResult::Unknown(reason) => {
                assert!(
                    reason.contains("cancelled"),
                    "reason should say cancelled, got: {reason}"
                );
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn full_outcome_reports_rounds_and_conflicts() {
        // ∃x ∀u: x == u is unsat at width 3 and needs several CEGIS rounds.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(3));
        let u = p.var("u", Sort::BitVec(3));
        let matrix = p.eq(x, u);
        let outcome =
            solve_exists_forall_full(&mut p, &[x], &[u], matrix, &EfConfig::default(), false);
        assert_eq!(outcome.result, EfResult::Unsat);
        assert!(outcome.stats.rounds > 0, "CEGIS must have iterated");
    }

    #[test]
    fn legacy_conflict_budget_feeds_the_effective_budget() {
        let config = EfConfig {
            conflict_budget: Some(7),
            ..EfConfig::default()
        };
        assert_eq!(config.effective_budget().conflicts, Some(7));
        // An explicit budget limit wins over the legacy knob.
        let config = EfConfig {
            conflict_budget: Some(7),
            budget: alive_sat::Budget::default().with_conflicts(9),
            ..EfConfig::default()
        };
        assert_eq!(config.effective_budget().conflicts, Some(9));
    }
}
