//! Hash-consed SMT terms over booleans and bitvectors.
//!
//! All terms live in a [`TermPool`]; a [`TermId`] is an index into it.
//! Constructors perform light simplification (constant folding, identity and
//! annihilator rules) so the formulas handed to the bit-blaster stay small.
//! The simplifications are validated against the reference evaluator by
//! property tests.

use crate::value::{BvVal, Sort, Value};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a term inside a [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Dense index of the term.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operator (and children) of a term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Boolean constant.
    BoolConst(bool),
    /// Bitvector constant.
    BvConst(BvVal),
    /// Free variable (never hash-consed together; carries a unique id).
    Var(u32),

    // Boolean connectives.
    /// Logical negation.
    Not(TermId),
    /// N-ary conjunction.
    And(Vec<TermId>),
    /// N-ary disjunction.
    Or(Vec<TermId>),
    /// Exclusive or.
    Xor(TermId, TermId),
    /// Implication.
    Implies(TermId, TermId),

    /// Equality at either sort.
    Eq(TermId, TermId),
    /// If-then-else; branches at either sort.
    Ite(TermId, TermId, TermId),

    // Bitvector bitwise.
    /// Bitwise complement.
    BvNot(TermId),
    /// Bitwise and.
    BvAnd(TermId, TermId),
    /// Bitwise or.
    BvOr(TermId, TermId),
    /// Bitwise xor.
    BvXor(TermId, TermId),

    // Bitvector arithmetic.
    /// Two's complement negation.
    BvNeg(TermId),
    /// Wrapping addition.
    BvAdd(TermId, TermId),
    /// Wrapping subtraction.
    BvSub(TermId, TermId),
    /// Wrapping multiplication.
    BvMul(TermId, TermId),
    /// Unsigned division (SMT-LIB total semantics).
    BvUdiv(TermId, TermId),
    /// Unsigned remainder.
    BvUrem(TermId, TermId),
    /// Signed division.
    BvSdiv(TermId, TermId),
    /// Signed remainder.
    BvSrem(TermId, TermId),

    // Shifts.
    /// Shift left.
    BvShl(TermId, TermId),
    /// Logical shift right.
    BvLshr(TermId, TermId),
    /// Arithmetic shift right.
    BvAshr(TermId, TermId),

    // Comparisons (result sort Bool).
    /// Unsigned less-than.
    BvUlt(TermId, TermId),
    /// Unsigned less-or-equal.
    BvUle(TermId, TermId),
    /// Signed less-than.
    BvSlt(TermId, TermId),
    /// Signed less-or-equal.
    BvSle(TermId, TermId),

    // Width changes.
    /// Zero-extend to the result width.
    ZExt(TermId),
    /// Sign-extend to the result width.
    SExt(TermId),
    /// Extract bits hi..=lo.
    Extract(TermId, u32, u32),
    /// Concatenation (first operand is the high part).
    Concat(TermId, TermId),
}

impl Op {
    /// Children of the operator, in order.
    pub fn children(&self) -> Vec<TermId> {
        match self {
            Op::BoolConst(_) | Op::BvConst(_) | Op::Var(_) => vec![],
            Op::Not(a)
            | Op::BvNot(a)
            | Op::BvNeg(a)
            | Op::ZExt(a)
            | Op::SExt(a)
            | Op::Extract(a, _, _) => vec![*a],
            Op::And(cs) | Op::Or(cs) => cs.clone(),
            Op::Xor(a, b)
            | Op::Implies(a, b)
            | Op::Eq(a, b)
            | Op::BvAnd(a, b)
            | Op::BvOr(a, b)
            | Op::BvXor(a, b)
            | Op::BvAdd(a, b)
            | Op::BvSub(a, b)
            | Op::BvMul(a, b)
            | Op::BvUdiv(a, b)
            | Op::BvUrem(a, b)
            | Op::BvSdiv(a, b)
            | Op::BvSrem(a, b)
            | Op::BvShl(a, b)
            | Op::BvLshr(a, b)
            | Op::BvAshr(a, b)
            | Op::BvUlt(a, b)
            | Op::BvUle(a, b)
            | Op::BvSlt(a, b)
            | Op::BvSle(a, b)
            | Op::Concat(a, b) => vec![*a, *b],
            Op::Ite(c, t, e) => vec![*c, *t, *e],
        }
    }

    /// Stable SMT-LIB-flavoured name of the operator kind, used to key
    /// per-op metrics (`blast.gates.<kind>`) and profiles.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::BoolConst(_) => "bool-const",
            Op::BvConst(_) => "bv-const",
            Op::Var(_) => "var",
            Op::Not(_) => "not",
            Op::And(_) => "and",
            Op::Or(_) => "or",
            Op::Xor(_, _) => "xor",
            Op::Implies(_, _) => "implies",
            Op::Eq(_, _) => "eq",
            Op::Ite(_, _, _) => "ite",
            Op::BvNot(_) => "bvnot",
            Op::BvAnd(_, _) => "bvand",
            Op::BvOr(_, _) => "bvor",
            Op::BvXor(_, _) => "bvxor",
            Op::BvNeg(_) => "bvneg",
            Op::BvAdd(_, _) => "bvadd",
            Op::BvSub(_, _) => "bvsub",
            Op::BvMul(_, _) => "bvmul",
            Op::BvUdiv(_, _) => "bvudiv",
            Op::BvUrem(_, _) => "bvurem",
            Op::BvSdiv(_, _) => "bvsdiv",
            Op::BvSrem(_, _) => "bvsrem",
            Op::BvShl(_, _) => "bvshl",
            Op::BvLshr(_, _) => "bvlshr",
            Op::BvAshr(_, _) => "bvashr",
            Op::BvUlt(_, _) => "bvult",
            Op::BvUle(_, _) => "bvule",
            Op::BvSlt(_, _) => "bvslt",
            Op::BvSle(_, _) => "bvsle",
            Op::ZExt(_) => "zext",
            Op::SExt(_) => "sext",
            Op::Extract(_, _, _) => "extract",
            Op::Concat(_, _) => "concat",
        }
    }
}

/// A term: operator plus result sort.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Term {
    /// The operator and children.
    pub op: Op,
    /// The result sort.
    pub sort: Sort,
}

/// Arena of hash-consed terms.
///
/// # Examples
///
/// ```
/// use alive_smt::{TermPool, Sort, BvVal};
///
/// let mut p = TermPool::new();
/// let x = p.var("x", Sort::BitVec(8));
/// let zero = p.bv_const(BvVal::zero(8));
/// let sum = p.bv_add(x, zero);
/// assert_eq!(sum, x, "x + 0 simplifies to x");
/// ```
#[derive(Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    dedup: HashMap<Term, TermId>,
    var_names: Vec<String>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of distinct terms allocated.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if no terms exist yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Borrows a term.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// The sort of a term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.terms[id.index()].sort
    }

    /// The bitwidth of a bitvector term.
    ///
    /// # Panics
    ///
    /// Panics if the term is boolean.
    pub fn width(&self, id: TermId) -> u32 {
        self.sort(id).width()
    }

    /// The display name of a variable term, if it is one.
    pub fn var_name(&self, id: TermId) -> Option<&str> {
        match self.term(id).op {
            Op::Var(v) => Some(&self.var_names[v as usize]),
            _ => None,
        }
    }

    /// Is the term a variable?
    pub fn is_var(&self, id: TermId) -> bool {
        matches!(self.term(id).op, Op::Var(_))
    }

    /// The constant value of a term if it is a constant.
    pub fn as_const(&self, id: TermId) -> Option<Value> {
        match self.term(id).op {
            Op::BoolConst(b) => Some(Value::Bool(b)),
            Op::BvConst(v) => Some(Value::Bv(v)),
            _ => None,
        }
    }

    /// The constant bitvector value of a term, if any.
    pub fn as_bv_const(&self, id: TermId) -> Option<BvVal> {
        match self.term(id).op {
            Op::BvConst(v) => Some(v),
            _ => None,
        }
    }

    /// The constant boolean value of a term, if any.
    pub fn as_bool_const(&self, id: TermId) -> Option<bool> {
        match self.term(id).op {
            Op::BoolConst(b) => Some(b),
            _ => None,
        }
    }

    fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.dedup.get(&term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.clone());
        self.dedup.insert(term, id);
        id
    }

    // ---- leaves ----

    /// Creates a fresh free variable of the given sort.
    ///
    /// Each call creates a distinct variable even for equal names; names are
    /// only for diagnostics and models.
    pub fn var(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        let v = self.var_names.len() as u32;
        self.var_names.push(name.into());
        // Vars are unique by id, so interning always creates a new slot.
        self.intern(Term {
            op: Op::Var(v),
            sort,
        })
    }

    /// Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.intern(Term {
            op: Op::BoolConst(b),
            sort: Sort::Bool,
        })
    }

    /// The constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.bool_const(true)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.bool_const(false)
    }

    /// Bitvector constant.
    pub fn bv_const(&mut self, v: BvVal) -> TermId {
        self.intern(Term {
            op: Op::BvConst(v),
            sort: Sort::BitVec(v.width()),
        })
    }

    /// Bitvector constant from width and bits.
    pub fn bv(&mut self, width: u32, bits: u128) -> TermId {
        self.bv_const(BvVal::new(width, bits))
    }

    // ---- boolean connectives ----

    /// Logical negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), Sort::Bool);
        if let Some(b) = self.as_bool_const(a) {
            return self.bool_const(!b);
        }
        if let Op::Not(inner) = self.term(a).op {
            return inner;
        }
        self.intern(Term {
            op: Op::Not(a),
            sort: Sort::Bool,
        })
    }

    /// N-ary conjunction (flattens, drops `true`, annihilates on `false`).
    pub fn and(&mut self, items: impl IntoIterator<Item = TermId>) -> TermId {
        let mut out: Vec<TermId> = Vec::new();
        for t in items {
            debug_assert_eq!(self.sort(t), Sort::Bool);
            match &self.term(t).op {
                Op::BoolConst(true) => {}
                Op::BoolConst(false) => return self.fls(),
                Op::And(inner) => out.extend(inner.iter().copied()),
                _ => out.push(t),
            }
        }
        out.sort_unstable();
        out.dedup();
        // x & !x = false
        for &t in &out {
            if let Op::Not(inner) = self.term(t).op {
                if out.binary_search(&inner).is_ok() {
                    return self.fls();
                }
            }
        }
        match out.len() {
            0 => self.tru(),
            1 => out[0],
            _ => self.intern(Term {
                op: Op::And(out),
                sort: Sort::Bool,
            }),
        }
    }

    /// Binary conjunction.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and([a, b])
    }

    /// N-ary disjunction (flattens, drops `false`, annihilates on `true`).
    pub fn or(&mut self, items: impl IntoIterator<Item = TermId>) -> TermId {
        let mut out: Vec<TermId> = Vec::new();
        for t in items {
            debug_assert_eq!(self.sort(t), Sort::Bool);
            match &self.term(t).op {
                Op::BoolConst(false) => {}
                Op::BoolConst(true) => return self.tru(),
                Op::Or(inner) => out.extend(inner.iter().copied()),
                _ => out.push(t),
            }
        }
        out.sort_unstable();
        out.dedup();
        for &t in &out {
            if let Op::Not(inner) = self.term(t).op {
                if out.binary_search(&inner).is_ok() {
                    return self.tru();
                }
            }
        }
        match out.len() {
            0 => self.fls(),
            1 => out[0],
            _ => self.intern(Term {
                op: Op::Or(out),
                sort: Sort::Bool,
            }),
        }
    }

    /// Binary disjunction.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or([a, b])
    }

    /// Exclusive or of booleans.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), Sort::Bool);
        debug_assert_eq!(self.sort(b), Sort::Bool);
        if a == b {
            return self.fls();
        }
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(x), Some(y)) => return self.bool_const(x ^ y),
            (Some(false), None) => return b,
            (None, Some(false)) => return a,
            (Some(true), None) => return self.not(b),
            (None, Some(true)) => return self.not(a),
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term {
            op: Op::Xor(a, b),
            sort: Sort::Bool,
        })
    }

    /// Implication `a => b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(false), _) | (_, Some(true)) => return self.tru(),
            (Some(true), _) => return b,
            (_, Some(false)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.tru();
        }
        self.intern(Term {
            op: Op::Implies(a, b),
            sort: Sort::Bool,
        })
    }

    /// Equality (both operands must share a sort).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), self.sort(b), "eq sort mismatch");
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(x == y);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term {
            op: Op::Eq(a, b),
            sort: Sort::Bool,
        })
    }

    /// Disequality.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// If-then-else over either sort.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        debug_assert_eq!(self.sort(c), Sort::Bool);
        assert_eq!(self.sort(t), self.sort(e), "ite branch sort mismatch");
        if let Some(b) = self.as_bool_const(c) {
            return if b { t } else { e };
        }
        if t == e {
            return t;
        }
        // Boolean-sorted ite with constant branches folds to connectives.
        if self.sort(t) == Sort::Bool {
            match (self.as_bool_const(t), self.as_bool_const(e)) {
                (Some(true), Some(false)) => return c,
                (Some(false), Some(true)) => return self.not(c),
                (Some(true), None) => return self.or2(c, e),
                (Some(false), None) => {
                    let nc = self.not(c);
                    return self.and2(nc, e);
                }
                (None, Some(true)) => {
                    let nc = self.not(c);
                    return self.or2(nc, t);
                }
                (None, Some(false)) => return self.and2(c, t),
                _ => {}
            }
        }
        let sort = self.sort(t);
        self.intern(Term {
            op: Op::Ite(c, t, e),
            sort,
        })
    }

    // ---- bitvector bitwise ----

    /// Bitwise complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        if let Some(v) = self.as_bv_const(a) {
            return self.bv_const(v.not());
        }
        if let Op::BvNot(inner) = self.term(a).op {
            return inner;
        }
        let sort = self.sort(a);
        self.intern(Term {
            op: Op::BvNot(a),
            sort,
        })
    }

    /// Bitwise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_bitwise(a, b, BvKind::And)
    }

    /// Bitwise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_bitwise(a, b, BvKind::Or)
    }

    /// Bitwise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_bitwise(a, b, BvKind::Xor)
    }

    fn bv_bitwise(&mut self, a: TermId, b: TermId, kind: BvKind) -> TermId {
        self.check_same_bv(a, b);
        let w = self.width(a);
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            let v = match kind {
                BvKind::And => x.and(y),
                BvKind::Or => x.or(y),
                BvKind::Xor => x.xor(y),
            };
            return self.bv_const(v);
        }
        // Identity / annihilator / idempotence rules.
        let zero = BvVal::zero(w);
        let ones = BvVal::ones(w);
        for (x, y) in [(a, b), (b, a)] {
            if let Some(c) = self.as_bv_const(x) {
                match kind {
                    BvKind::And if c == zero => return self.bv_const(zero),
                    BvKind::And if c == ones => return y,
                    BvKind::Or if c == ones => return self.bv_const(ones),
                    BvKind::Or if c == zero => return y,
                    BvKind::Xor if c == zero => return y,
                    BvKind::Xor if c == ones => return self.bv_not(y),
                    _ => {}
                }
            }
        }
        if a == b {
            return match kind {
                BvKind::And | BvKind::Or => a,
                BvKind::Xor => self.bv_const(zero),
            };
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let sort = self.sort(a);
        let op = match kind {
            BvKind::And => Op::BvAnd(a, b),
            BvKind::Or => Op::BvOr(a, b),
            BvKind::Xor => Op::BvXor(a, b),
        };
        self.intern(Term { op, sort })
    }

    // ---- bitvector arithmetic ----

    /// Two's complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        if let Some(v) = self.as_bv_const(a) {
            return self.bv_const(v.neg());
        }
        if let Op::BvNeg(inner) = self.term(a).op {
            return inner;
        }
        let sort = self.sort(a);
        self.intern(Term {
            op: Op::BvNeg(a),
            sort,
        })
    }

    /// Wrapping addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        self.check_same_bv(a, b);
        let w = self.width(a);
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bv_const(x.add(y));
        }
        for (x, y) in [(a, b), (b, a)] {
            if self.as_bv_const(x) == Some(BvVal::zero(w)) {
                return y;
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let sort = self.sort(a);
        self.intern(Term {
            op: Op::BvAdd(a, b),
            sort,
        })
    }

    /// Wrapping subtraction.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.check_same_bv(a, b);
        let w = self.width(a);
        if a == b {
            return self.bv_const(BvVal::zero(w));
        }
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bv_const(x.sub(y));
        }
        if self.as_bv_const(b) == Some(BvVal::zero(w)) {
            return a;
        }
        let sort = self.sort(a);
        self.intern(Term {
            op: Op::BvSub(a, b),
            sort,
        })
    }

    /// Wrapping multiplication.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.check_same_bv(a, b);
        let w = self.width(a);
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bv_const(x.mul(y));
        }
        for (x, y) in [(a, b), (b, a)] {
            if let Some(c) = self.as_bv_const(x) {
                if c.is_zero() {
                    return self.bv_const(BvVal::zero(w));
                }
                if c == BvVal::one(w) {
                    return y;
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let sort = self.sort(a);
        self.intern(Term {
            op: Op::BvMul(a, b),
            sort,
        })
    }

    /// Unsigned division (total, SMT-LIB semantics).
    pub fn bv_udiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_no_fold_by_zero(a, b, BvDivKind::Udiv)
    }

    /// Unsigned remainder.
    pub fn bv_urem(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_no_fold_by_zero(a, b, BvDivKind::Urem)
    }

    /// Signed division.
    pub fn bv_sdiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_no_fold_by_zero(a, b, BvDivKind::Sdiv)
    }

    /// Signed remainder.
    pub fn bv_srem(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_no_fold_by_zero(a, b, BvDivKind::Srem)
    }

    fn binop_no_fold_by_zero(&mut self, a: TermId, b: TermId, kind: BvDivKind) -> TermId {
        self.check_same_bv(a, b);
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            let v = match kind {
                BvDivKind::Udiv => x.udiv(y),
                BvDivKind::Urem => x.urem(y),
                BvDivKind::Sdiv => x.sdiv(y),
                BvDivKind::Srem => x.srem(y),
            };
            return self.bv_const(v);
        }
        let sort = self.sort(a);
        let op = match kind {
            BvDivKind::Udiv => Op::BvUdiv(a, b),
            BvDivKind::Urem => Op::BvUrem(a, b),
            BvDivKind::Sdiv => Op::BvSdiv(a, b),
            BvDivKind::Srem => Op::BvSrem(a, b),
        };
        self.intern(Term { op, sort })
    }

    // ---- shifts ----

    /// Shift left.
    pub fn bv_shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.shift(a, b, ShiftKind::Shl)
    }

    /// Logical shift right.
    pub fn bv_lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.shift(a, b, ShiftKind::Lshr)
    }

    /// Arithmetic shift right.
    pub fn bv_ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.shift(a, b, ShiftKind::Ashr)
    }

    fn shift(&mut self, a: TermId, b: TermId, kind: ShiftKind) -> TermId {
        self.check_same_bv(a, b);
        let w = self.width(a);
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            let v = match kind {
                ShiftKind::Shl => x.shl(y),
                ShiftKind::Lshr => x.lshr(y),
                ShiftKind::Ashr => x.ashr(y),
            };
            return self.bv_const(v);
        }
        if self.as_bv_const(b) == Some(BvVal::zero(w)) {
            return a;
        }
        let sort = self.sort(a);
        let op = match kind {
            ShiftKind::Shl => Op::BvShl(a, b),
            ShiftKind::Lshr => Op::BvLshr(a, b),
            ShiftKind::Ashr => Op::BvAshr(a, b),
        };
        self.intern(Term { op, sort })
    }

    // ---- comparisons ----

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(a, b, CmpKind::Ult)
    }

    /// Unsigned less-or-equal.
    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(a, b, CmpKind::Ule)
    }

    /// Signed less-than.
    pub fn bv_slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(a, b, CmpKind::Slt)
    }

    /// Signed less-or-equal.
    pub fn bv_sle(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(a, b, CmpKind::Sle)
    }

    /// Unsigned greater-than (swapped `ult`).
    pub fn bv_ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ult(b, a)
    }

    /// Unsigned greater-or-equal (swapped `ule`).
    pub fn bv_uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ule(b, a)
    }

    /// Signed greater-than (swapped `slt`).
    pub fn bv_sgt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_slt(b, a)
    }

    /// Signed greater-or-equal (swapped `sle`).
    pub fn bv_sge(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_sle(b, a)
    }

    fn cmp(&mut self, a: TermId, b: TermId, kind: CmpKind) -> TermId {
        self.check_same_bv(a, b);
        if a == b {
            return self.bool_const(matches!(kind, CmpKind::Ule | CmpKind::Sle));
        }
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            let v = match kind {
                CmpKind::Ult => x.ult(y),
                CmpKind::Ule => x.ule(y),
                CmpKind::Slt => x.slt(y),
                CmpKind::Sle => x.sle(y),
            };
            return self.bool_const(v);
        }
        let op = match kind {
            CmpKind::Ult => Op::BvUlt(a, b),
            CmpKind::Ule => Op::BvUle(a, b),
            CmpKind::Slt => Op::BvSlt(a, b),
            CmpKind::Sle => Op::BvSle(a, b),
        };
        self.intern(Term {
            op,
            sort: Sort::Bool,
        })
    }

    // ---- width changes ----

    /// Zero-extension to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is smaller than the operand's width.
    pub fn zext(&mut self, a: TermId, new_width: u32) -> TermId {
        let w = self.width(a);
        assert!(new_width >= w, "zext to smaller width");
        if new_width == w {
            return a;
        }
        if let Some(v) = self.as_bv_const(a) {
            return self.bv_const(v.zext(new_width));
        }
        self.intern(Term {
            op: Op::ZExt(a),
            sort: Sort::BitVec(new_width),
        })
    }

    /// Sign-extension to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is smaller than the operand's width.
    pub fn sext(&mut self, a: TermId, new_width: u32) -> TermId {
        let w = self.width(a);
        assert!(new_width >= w, "sext to smaller width");
        if new_width == w {
            return a;
        }
        if let Some(v) = self.as_bv_const(a) {
            return self.bv_const(v.sext(new_width));
        }
        self.intern(Term {
            op: Op::SExt(a),
            sort: Sort::BitVec(new_width),
        })
    }

    /// Truncation to `new_width` (an `Extract(new_width-1, 0)`).
    pub fn trunc(&mut self, a: TermId, new_width: u32) -> TermId {
        let w = self.width(a);
        assert!(new_width <= w, "trunc to larger width");
        if new_width == w {
            return a;
        }
        self.extract(a, new_width - 1, 0)
    }

    /// Extraction of bits `hi..=lo`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is out of range.
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.width(a);
        assert!(hi >= lo && hi < w, "bad extract range [{hi}:{lo}] on i{w}");
        if lo == 0 && hi == w - 1 {
            return a;
        }
        if let Some(v) = self.as_bv_const(a) {
            return self.bv_const(v.extract(hi, lo));
        }
        self.intern(Term {
            op: Op::Extract(a, hi, lo),
            sort: Sort::BitVec(hi - lo + 1),
        })
    }

    /// Concatenation; `a` supplies the high bits.
    pub fn concat(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width(a) + self.width(b);
        assert!(w <= 128, "concat width {w} exceeds 128");
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bv_const(x.concat(y));
        }
        self.intern(Term {
            op: Op::Concat(a, b),
            sort: Sort::BitVec(w),
        })
    }

    fn check_same_bv(&self, a: TermId, b: TermId) {
        let (sa, sb) = (self.sort(a), self.sort(b));
        assert!(
            matches!(sa, Sort::BitVec(_)) && sa == sb,
            "bitvector sort mismatch: {sa} vs {sb}"
        );
    }

    /// Renders a term as an S-expression for diagnostics.
    pub fn display(&self, id: TermId) -> String {
        let mut s = String::new();
        self.fmt_term(id, &mut s);
        s
    }

    fn fmt_term(&self, id: TermId, out: &mut String) {
        use std::fmt::Write;
        let t = self.term(id);
        let name = match &t.op {
            Op::BoolConst(b) => {
                let _ = write!(out, "{b}");
                return;
            }
            Op::BvConst(v) => {
                let _ = write!(out, "{v:?}");
                return;
            }
            Op::Var(v) => {
                let _ = write!(out, "{}", self.var_names[*v as usize]);
                return;
            }
            Op::Not(_) => "not",
            Op::And(_) => "and",
            Op::Or(_) => "or",
            Op::Xor(..) => "xor",
            Op::Implies(..) => "=>",
            Op::Eq(..) => "=",
            Op::Ite(..) => "ite",
            Op::BvNot(_) => "bvnot",
            Op::BvAnd(..) => "bvand",
            Op::BvOr(..) => "bvor",
            Op::BvXor(..) => "bvxor",
            Op::BvNeg(_) => "bvneg",
            Op::BvAdd(..) => "bvadd",
            Op::BvSub(..) => "bvsub",
            Op::BvMul(..) => "bvmul",
            Op::BvUdiv(..) => "bvudiv",
            Op::BvUrem(..) => "bvurem",
            Op::BvSdiv(..) => "bvsdiv",
            Op::BvSrem(..) => "bvsrem",
            Op::BvShl(..) => "bvshl",
            Op::BvLshr(..) => "bvlshr",
            Op::BvAshr(..) => "bvashr",
            Op::BvUlt(..) => "bvult",
            Op::BvUle(..) => "bvule",
            Op::BvSlt(..) => "bvslt",
            Op::BvSle(..) => "bvsle",
            Op::ZExt(_) => "zext",
            Op::SExt(_) => "sext",
            Op::Extract(_, hi, lo) => {
                let _ = write!(out, "(extract[{hi}:{lo}] ");
                self.fmt_term(t.op.children()[0], out);
                out.push(')');
                return;
            }
            Op::Concat(..) => "concat",
        };
        let _ = write!(out, "({name}");
        for c in t.op.children() {
            out.push(' ');
            self.fmt_term(c, out);
        }
        out.push(')');
    }
}

impl fmt::Display for TermPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TermPool({} terms)", self.terms.len())
    }
}

#[derive(Clone, Copy)]
enum BvKind {
    And,
    Or,
    Xor,
}

#[derive(Clone, Copy)]
enum BvDivKind {
    Udiv,
    Urem,
    Sdiv,
    Srem,
}

#[derive(Clone, Copy)]
enum ShiftKind {
    Shl,
    Lshr,
    Ashr,
}

#[derive(Clone, Copy)]
enum CmpKind {
    Ult,
    Ule,
    Slt,
    Sle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let y = p.var("y", Sort::BitVec(8));
        let a = p.bv_add(x, y);
        let b = p.bv_add(y, x); // commutative canonicalization
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_vars_are_distinct() {
        let mut p = TermPool::new();
        let x1 = p.var("x", Sort::BitVec(8));
        let x2 = p.var("x", Sort::BitVec(8));
        assert_ne!(x1, x2);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.bv(8, 3);
        let b = p.bv(8, 5);
        let s = p.bv_add(a, b);
        assert_eq!(p.as_bv_const(s), Some(BvVal::new(8, 8)));
        let c = p.bv_ult(a, b);
        assert_eq!(p.as_bool_const(c), Some(true));
    }

    #[test]
    fn identities() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let zero = p.bv(8, 0);
        let ones = p.bv(8, 0xFF);
        assert_eq!(p.bv_add(x, zero), x);
        assert_eq!(p.bv_sub(x, zero), x);
        assert_eq!(p.bv_and(x, ones), x);
        assert_eq!(p.bv_or(x, zero), x);
        assert_eq!(p.bv_xor(x, zero), x);
        assert_eq!(p.bv_and(x, zero), zero);
        let notx = p.bv_not(x);
        assert_eq!(p.bv_xor(x, ones), notx);
        assert_eq!(p.bv_not(notx), x);
        assert_eq!(p.bv_sub(x, x), zero);
        let xx = p.bv_xor(x, x);
        assert_eq!(xx, zero);
    }

    #[test]
    fn boolean_simplifications() {
        let mut p = TermPool::new();
        let a = p.var("a", Sort::Bool);
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.and2(a, t), a);
        assert_eq!(p.and2(a, f), f);
        assert_eq!(p.or2(a, f), a);
        assert_eq!(p.or2(a, t), t);
        let na = p.not(a);
        assert_eq!(p.and2(a, na), f);
        assert_eq!(p.or2(a, na), t);
        assert_eq!(p.not(na), a);
        assert_eq!(p.implies(f, a), t);
        assert_eq!(p.implies(t, a), a);
        assert_eq!(p.eq(a, a), t);
    }

    #[test]
    fn ite_simplifications() {
        let mut p = TermPool::new();
        let c = p.var("c", Sort::Bool);
        let x = p.var("x", Sort::BitVec(4));
        let y = p.var("y", Sort::BitVec(4));
        let t = p.tru();
        assert_eq!(p.ite(t, x, y), x);
        assert_eq!(p.ite(c, x, x), x);
        let f = p.fls();
        let b = p.var("b", Sort::Bool);
        assert_eq!(p.ite(c, t, f), c);
        assert_eq!(p.ite(c, f, t), p.not(c));
        assert_eq!(p.ite(c, b, f), p.and2(c, b));
    }

    #[test]
    fn width_change_folding() {
        let mut p = TermPool::new();
        let v = p.bv(4, 0b1010);
        assert_eq!(p.as_bv_const(p.clone_id(v)), Some(BvVal::new(4, 0b1010)));
        let z = p.zext(v, 8);
        assert_eq!(p.as_bv_const(z), Some(BvVal::new(8, 0b1010)));
        let s = p.sext(v, 8);
        assert_eq!(p.as_bv_const(s), Some(BvVal::new(8, 0b1111_1010)));
        let x = p.var("x", Sort::BitVec(8));
        assert_eq!(p.zext(x, 8), x);
        assert_eq!(p.trunc(x, 8), x);
        let e = p.extract(x, 7, 0);
        assert_eq!(e, x);
    }

    impl TermPool {
        fn clone_id(&self, id: TermId) -> TermId {
            id
        }
    }

    #[test]
    fn display_is_readable() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let one = p.bv(8, 1);
        let s = p.bv_add(x, one);
        let d = p.display(s);
        assert!(d.contains("bvadd"), "{d}");
        assert!(d.contains('x'), "{d}");
    }

    #[test]
    #[should_panic(expected = "sort mismatch")]
    fn eq_sort_mismatch_panics() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let b = p.var("b", Sort::Bool);
        let _ = p.eq(x, b);
    }
}
