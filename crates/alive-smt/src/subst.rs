//! Capture-free substitution of variables by terms.

use crate::eval::Assignment;
use crate::term::{Op, TermId, TermPool};
use crate::value::Value;
use std::collections::HashMap;

/// Replaces variables in `root` according to `map`, rebuilding (and
/// re-simplifying) the term bottom-up.
///
/// Variables absent from the map are left untouched. The result may be a
/// constant if enough variables are substituted by constants.
pub fn substitute(pool: &mut TermPool, root: TermId, map: &HashMap<TermId, TermId>) -> TermId {
    let mut memo: HashMap<TermId, TermId> = HashMap::new();
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if memo.contains_key(&id) {
            continue;
        }
        if let Some(&r) = map.get(&id) {
            memo.insert(id, r);
            continue;
        }
        let op = pool.term(id).op.clone();
        if !expanded {
            stack.push((id, true));
            for c in op.children() {
                if !memo.contains_key(&c) {
                    stack.push((c, false));
                }
            }
            continue;
        }
        let g = |t: TermId| memo[&t];
        let out = match &op {
            Op::BoolConst(_) | Op::BvConst(_) | Op::Var(_) => id,
            Op::Not(a) => pool.not(g(*a)),
            Op::And(cs) => {
                let items: Vec<TermId> = cs.iter().map(|&c| g(c)).collect();
                pool.and(items)
            }
            Op::Or(cs) => {
                let items: Vec<TermId> = cs.iter().map(|&c| g(c)).collect();
                pool.or(items)
            }
            Op::Xor(a, b) => pool.xor(g(*a), g(*b)),
            Op::Implies(a, b) => pool.implies(g(*a), g(*b)),
            Op::Eq(a, b) => pool.eq(g(*a), g(*b)),
            Op::Ite(c, t, e) => pool.ite(g(*c), g(*t), g(*e)),
            Op::BvNot(a) => pool.bv_not(g(*a)),
            Op::BvAnd(a, b) => pool.bv_and(g(*a), g(*b)),
            Op::BvOr(a, b) => pool.bv_or(g(*a), g(*b)),
            Op::BvXor(a, b) => pool.bv_xor(g(*a), g(*b)),
            Op::BvNeg(a) => pool.bv_neg(g(*a)),
            Op::BvAdd(a, b) => pool.bv_add(g(*a), g(*b)),
            Op::BvSub(a, b) => pool.bv_sub(g(*a), g(*b)),
            Op::BvMul(a, b) => pool.bv_mul(g(*a), g(*b)),
            Op::BvUdiv(a, b) => pool.bv_udiv(g(*a), g(*b)),
            Op::BvUrem(a, b) => pool.bv_urem(g(*a), g(*b)),
            Op::BvSdiv(a, b) => pool.bv_sdiv(g(*a), g(*b)),
            Op::BvSrem(a, b) => pool.bv_srem(g(*a), g(*b)),
            Op::BvShl(a, b) => pool.bv_shl(g(*a), g(*b)),
            Op::BvLshr(a, b) => pool.bv_lshr(g(*a), g(*b)),
            Op::BvAshr(a, b) => pool.bv_ashr(g(*a), g(*b)),
            Op::BvUlt(a, b) => pool.bv_ult(g(*a), g(*b)),
            Op::BvUle(a, b) => pool.bv_ule(g(*a), g(*b)),
            Op::BvSlt(a, b) => pool.bv_slt(g(*a), g(*b)),
            Op::BvSle(a, b) => pool.bv_sle(g(*a), g(*b)),
            Op::ZExt(a) => {
                let w = pool.sort(id).width();
                pool.zext(g(*a), w)
            }
            Op::SExt(a) => {
                let w = pool.sort(id).width();
                pool.sext(g(*a), w)
            }
            Op::Extract(a, hi, lo) => pool.extract(g(*a), *hi, *lo),
            Op::Concat(a, b) => pool.concat(g(*a), g(*b)),
        };
        memo.insert(id, out);
    }
    memo[&root]
}

/// Substitutes variables by the constant values of an [`Assignment`].
pub fn substitute_assignment(pool: &mut TermPool, root: TermId, env: &Assignment) -> TermId {
    let mut map = HashMap::new();
    for (var, value) in env.iter() {
        let c = match value {
            Value::Bool(b) => pool.bool_const(b),
            Value::Bv(v) => pool.bv_const(v),
        };
        map.insert(var, c);
    }
    substitute(pool, root, &map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{BvVal, Sort};

    #[test]
    fn substitute_folds_to_constant() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let y = p.var("y", Sort::BitVec(8));
        let sum = p.bv_add(x, y);
        let lt = p.bv_ult(sum, y);

        let mut env = Assignment::new();
        env.set(x, BvVal::new(8, 250));
        env.set(y, BvVal::new(8, 10));
        let out = substitute_assignment(&mut p, lt, &env);
        // 250 + 10 wraps to 4, and 4 < 10.
        assert_eq!(p.as_bool_const(out), Some(true));
    }

    #[test]
    fn partial_substitution_leaves_other_vars() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(8));
        let y = p.var("y", Sort::BitVec(8));
        let sum = p.bv_add(x, y);
        let mut map = HashMap::new();
        let zero = p.bv(8, 0);
        map.insert(x, zero);
        let out = substitute(&mut p, sum, &map);
        assert_eq!(out, y, "0 + y simplifies to y");
    }
}
