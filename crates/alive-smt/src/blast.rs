//! Bit-blasting of bitvector terms to CNF.
//!
//! Every term is translated to SAT literals (one per bit) with Tseitin
//! encoding: word-level operators become the usual hardware circuits —
//! ripple-carry adders, barrel shifters, shift-add multipliers and a
//! restoring divider. The translation is cached per term, so shared
//! subterms are encoded once (the term pool is hash-consed, making sharing
//! pervasive).

use crate::term::{Op, TermId, TermPool};
use crate::value::{BvVal, Sort};
use alive_sat::{Exhaustion, Lit, Solver};
use std::collections::HashMap;

/// How many term nodes are encoded between deadline/cancellation polls in
/// [`Blaster::try_blast`]. Wide terms expand to many gates, so polling per
/// few nodes keeps even divider-heavy blasts responsive.
const BLAST_POLL_INTERVAL: usize = 64;

/// The SAT-level image of a term: one literal (Bool) or a little-endian
/// vector of literals (BitVec).
#[derive(Clone, Debug)]
pub enum Blasted {
    /// Image of a boolean term.
    Bool(Lit),
    /// Image of a bitvector term, least-significant bit first.
    Bv(Vec<Lit>),
}

impl Blasted {
    fn as_bool(&self) -> Lit {
        match self {
            Blasted::Bool(l) => *l,
            Blasted::Bv(_) => panic!("expected boolean blasting"),
        }
    }

    fn as_bv(&self) -> &[Lit] {
        match self {
            Blasted::Bv(v) => v,
            Blasted::Bool(_) => panic!("expected bitvector blasting"),
        }
    }
}

/// Incremental bit-blasting context layered over a [`Solver`].
#[derive(Debug, Default)]
pub struct Blaster {
    cache: HashMap<TermId, Blasted>,
    lit_true: Option<Lit>,
    nodes_encoded: u64,
    gates_by_op: HashMap<&'static str, u64>,
}

impl Blaster {
    /// Number of term nodes actually encoded (cache misses) over this
    /// blaster's lifetime. Hash-consing makes sharing pervasive, so this
    /// is usually far below the term count of the asserted formulas.
    pub fn nodes_encoded(&self) -> u64 {
        self.nodes_encoded
    }

    /// Auxiliary SAT variables ("gates") introduced, keyed by the
    /// operator kind ([`Op::kind_name`]) whose encoding created them.
    pub fn gates_by_op(&self) -> &HashMap<&'static str, u64> {
        &self.gates_by_op
    }

    /// Total auxiliary SAT variables introduced across all op kinds.
    pub fn gates_total(&self) -> u64 {
        self.gates_by_op.values().sum()
    }
    /// Creates an empty blaster.
    pub fn new() -> Blaster {
        Blaster::default()
    }

    /// The constant-true literal (created on first use).
    pub fn lit_true(&mut self, sat: &mut Solver) -> Lit {
        match self.lit_true {
            Some(l) => l,
            None => {
                let v = sat.new_var();
                let l = v.positive();
                sat.add_clause([l]);
                self.lit_true = Some(l);
                l
            }
        }
    }

    /// The constant-false literal.
    pub fn lit_false(&mut self, sat: &mut Solver) -> Lit {
        !self.lit_true(sat)
    }

    fn lit_const(&mut self, sat: &mut Solver, b: bool) -> Lit {
        if b {
            self.lit_true(sat)
        } else {
            self.lit_false(sat)
        }
    }

    /// Looks up the cached blasting of a term, if present.
    pub fn cached(&self, id: TermId) -> Option<&Blasted> {
        self.cache.get(&id)
    }

    /// Blasts a boolean term to a single literal.
    pub fn blast_bool(&mut self, pool: &TermPool, sat: &mut Solver, id: TermId) -> Lit {
        debug_assert_eq!(pool.sort(id), Sort::Bool);
        self.blast(pool, sat, id).as_bool()
    }

    /// Budget-aware variant of [`Blaster::blast_bool`].
    ///
    /// # Errors
    ///
    /// Returns the tripped limit when the solver's budget deadline passes
    /// or its cancellation token is raised mid-blast.
    pub fn try_blast_bool(
        &mut self,
        pool: &TermPool,
        sat: &mut Solver,
        id: TermId,
    ) -> Result<Lit, Exhaustion> {
        debug_assert_eq!(pool.sort(id), Sort::Bool);
        Ok(self.try_blast(pool, sat, id)?.as_bool())
    }

    /// Blasts a bitvector term to its bit literals.
    pub fn blast_bv(&mut self, pool: &TermPool, sat: &mut Solver, id: TermId) -> Vec<Lit> {
        self.blast(pool, sat, id).as_bv().to_vec()
    }

    /// Blasts any term, memoized, ignoring any installed budget.
    pub fn blast(&mut self, pool: &TermPool, sat: &mut Solver, root: TermId) -> Blasted {
        self.blast_inner(pool, sat, root, false)
            .expect("unbudgeted blast cannot be exhausted")
    }

    /// Blasts any term, memoized, polling the solver's [`alive_sat::Budget`]
    /// (deadline and cancellation) every few encoded nodes.
    ///
    /// Aborting mid-blast is safe: the cache only ever holds fully encoded
    /// terms, so a later retry resumes from consistent state.
    ///
    /// # Errors
    ///
    /// Returns the tripped limit when the budget's soft checks fire.
    pub fn try_blast(
        &mut self,
        pool: &TermPool,
        sat: &mut Solver,
        root: TermId,
    ) -> Result<Blasted, Exhaustion> {
        self.blast_inner(pool, sat, root, true)
    }

    fn blast_inner(
        &mut self,
        pool: &TermPool,
        sat: &mut Solver,
        root: TermId,
        poll_budget: bool,
    ) -> Result<Blasted, Exhaustion> {
        if poll_budget {
            if let Some(e) = sat.budget().check_soft() {
                return Err(e);
            }
        }
        // Iterative post-order to avoid deep recursion on ite-chains.
        let mut stack = vec![(root, false)];
        let mut encoded = 0usize;
        while let Some((id, expanded)) = stack.pop() {
            if self.cache.contains_key(&id) {
                continue;
            }
            if !expanded {
                stack.push((id, true));
                for c in pool.term(id).op.children() {
                    if !self.cache.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            if poll_budget {
                encoded += 1;
                if encoded.is_multiple_of(BLAST_POLL_INTERVAL) {
                    if let Some(e) = sat.budget().check_soft() {
                        return Err(e);
                    }
                }
            }
            let vars_before = sat.num_vars();
            let b = self.encode(pool, sat, id);
            self.nodes_encoded += 1;
            let gates = (sat.num_vars() - vars_before) as u64;
            if gates > 0 {
                *self
                    .gates_by_op
                    .entry(pool.term(id).op.kind_name())
                    .or_insert(0) += gates;
            }
            self.cache.insert(id, b);
        }
        Ok(self.cache[&root].clone())
    }

    /// Encodes one term whose children are already cached.
    fn encode(&mut self, pool: &TermPool, sat: &mut Solver, id: TermId) -> Blasted {
        let term = pool.term(id).clone();
        let width = match term.sort {
            Sort::BitVec(w) => w,
            Sort::Bool => 0,
        };
        match &term.op {
            Op::BoolConst(b) => Blasted::Bool(self.lit_const(sat, *b)),
            Op::BvConst(v) => {
                let bits = (0..v.width())
                    .map(|i| self.lit_const(sat, v.bit(i)))
                    .collect();
                Blasted::Bv(bits)
            }
            Op::Var(_) => match term.sort {
                Sort::Bool => Blasted::Bool(sat.new_var().positive()),
                Sort::BitVec(w) => Blasted::Bv((0..w).map(|_| sat.new_var().positive()).collect()),
            },
            Op::Not(a) => Blasted::Bool(!self.get_bool(*a)),
            Op::And(cs) => {
                let lits: Vec<Lit> = cs.iter().map(|&c| self.get_bool(c)).collect();
                Blasted::Bool(self.mk_and_many(sat, &lits))
            }
            Op::Or(cs) => {
                let lits: Vec<Lit> = cs.iter().map(|&c| self.get_bool(c)).collect();
                Blasted::Bool(self.mk_or_many(sat, &lits))
            }
            Op::Xor(a, b) => {
                let (a, b) = (self.get_bool(*a), self.get_bool(*b));
                Blasted::Bool(self.mk_xor(sat, a, b))
            }
            Op::Implies(a, b) => {
                let (a, b) = (self.get_bool(*a), self.get_bool(*b));
                Blasted::Bool(self.mk_or(sat, !a, b))
            }
            Op::Eq(a, b) => match pool.sort(*a) {
                Sort::Bool => {
                    let (a, b) = (self.get_bool(*a), self.get_bool(*b));
                    let x = self.mk_xor(sat, a, b);
                    Blasted::Bool(!x)
                }
                Sort::BitVec(_) => {
                    let av = self.get_bv(*a);
                    let bv = self.get_bv(*b);
                    let mut eqs = Vec::with_capacity(av.len());
                    for (x, y) in av.iter().zip(&bv) {
                        let xo = self.mk_xor(sat, *x, *y);
                        eqs.push(!xo);
                    }
                    Blasted::Bool(self.mk_and_many(sat, &eqs))
                }
            },
            Op::Ite(c, t, e) => {
                let cl = self.get_bool(*c);
                match pool.sort(*t) {
                    Sort::Bool => {
                        let (tl, el) = (self.get_bool(*t), self.get_bool(*e));
                        Blasted::Bool(self.mk_mux(sat, cl, tl, el))
                    }
                    Sort::BitVec(_) => {
                        let tv = self.get_bv(*t);
                        let ev = self.get_bv(*e);
                        let bits = tv
                            .iter()
                            .zip(&ev)
                            .map(|(&x, &y)| self.mk_mux(sat, cl, x, y))
                            .collect();
                        Blasted::Bv(bits)
                    }
                }
            }
            Op::BvNot(a) => Blasted::Bv(self.get_bv(*a).iter().map(|&l| !l).collect()),
            Op::BvAnd(a, b) => self.bitwise(sat, *a, *b, BitOp::And),
            Op::BvOr(a, b) => self.bitwise(sat, *a, *b, BitOp::Or),
            Op::BvXor(a, b) => self.bitwise(sat, *a, *b, BitOp::Xor),
            Op::BvNeg(a) => {
                let av = self.get_bv(*a);
                let inv: Vec<Lit> = av.iter().map(|&l| !l).collect();
                let t = self.lit_true(sat);
                let one: Vec<Lit> = std::iter::once(t)
                    .chain(std::iter::repeat(!t))
                    .take(inv.len())
                    .collect();
                Blasted::Bv(self.adder(sat, &inv, &one, !t).0)
            }
            Op::BvAdd(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let f = self.lit_false(sat);
                Blasted::Bv(self.adder(sat, &av, &bv, f).0)
            }
            Op::BvSub(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let binv: Vec<Lit> = bv.iter().map(|&l| !l).collect();
                let t = self.lit_true(sat);
                Blasted::Bv(self.adder(sat, &av, &binv, t).0)
            }
            Op::BvMul(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                Blasted::Bv(self.multiplier(sat, &av, &bv))
            }
            Op::BvUdiv(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let (q, _r) = self.divider(sat, &av, &bv);
                Blasted::Bv(q)
            }
            Op::BvUrem(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let (_q, r) = self.divider(sat, &av, &bv);
                Blasted::Bv(r)
            }
            Op::BvSdiv(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                Blasted::Bv(self.signed_divrem(sat, &av, &bv).0)
            }
            Op::BvSrem(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                Blasted::Bv(self.signed_divrem(sat, &av, &bv).1)
            }
            Op::BvShl(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let f = self.lit_false(sat);
                Blasted::Bv(self.barrel_shift(sat, &av, &bv, ShiftDir::Left, f))
            }
            Op::BvLshr(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let f = self.lit_false(sat);
                Blasted::Bv(self.barrel_shift(sat, &av, &bv, ShiftDir::Right, f))
            }
            Op::BvAshr(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let sign = *av.last().expect("non-empty bv");
                Blasted::Bv(self.barrel_shift(sat, &av, &bv, ShiftDir::Right, sign))
            }
            Op::BvUlt(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                Blasted::Bool(self.mk_ult(sat, &av, &bv))
            }
            Op::BvUle(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let gt = self.mk_ult(sat, &bv, &av);
                Blasted::Bool(!gt)
            }
            Op::BvSlt(a, b) => {
                let (mut av, mut bv) = (self.get_bv(*a), self.get_bv(*b));
                // Flip sign bits to reduce signed compare to unsigned.
                let n = av.len();
                av[n - 1] = !av[n - 1];
                bv[n - 1] = !bv[n - 1];
                Blasted::Bool(self.mk_ult(sat, &av, &bv))
            }
            Op::BvSle(a, b) => {
                let (mut av, mut bv) = (self.get_bv(*a), self.get_bv(*b));
                let n = av.len();
                av[n - 1] = !av[n - 1];
                bv[n - 1] = !bv[n - 1];
                let gt = self.mk_ult(sat, &bv, &av);
                Blasted::Bool(!gt)
            }
            Op::ZExt(a) => {
                let av = self.get_bv(*a);
                let f = self.lit_false(sat);
                let mut bits = av;
                bits.resize(width as usize, f);
                Blasted::Bv(bits)
            }
            Op::SExt(a) => {
                let av = self.get_bv(*a);
                let sign = *av.last().expect("non-empty bv");
                let mut bits = av;
                bits.resize(width as usize, sign);
                Blasted::Bv(bits)
            }
            Op::Extract(a, hi, lo) => {
                let av = self.get_bv(*a);
                Blasted::Bv(av[*lo as usize..=*hi as usize].to_vec())
            }
            Op::Concat(a, b) => {
                let (av, bv) = (self.get_bv(*a), self.get_bv(*b));
                let mut bits = bv; // low part first (little endian)
                bits.extend(av);
                Blasted::Bv(bits)
            }
        }
    }

    #[inline]
    fn get_bool(&self, id: TermId) -> Lit {
        self.cache[&id].as_bool()
    }

    #[inline]
    fn get_bv(&self, id: TermId) -> Vec<Lit> {
        self.cache[&id].as_bv().to_vec()
    }

    fn bitwise(&mut self, sat: &mut Solver, a: TermId, b: TermId, op: BitOp) -> Blasted {
        let (av, bv) = (self.get_bv(a), self.get_bv(b));
        let bits = av
            .iter()
            .zip(&bv)
            .map(|(&x, &y)| match op {
                BitOp::And => self.mk_and(sat, x, y),
                BitOp::Or => self.mk_or(sat, x, y),
                BitOp::Xor => self.mk_xor(sat, x, y),
            })
            .collect();
        Blasted::Bv(bits)
    }

    // ---- gates ----

    /// `g <-> a & b`, with constant/structural short-circuits.
    pub fn mk_and(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        let t = self.lit_true(sat);
        let f = !t;
        if a == f || b == f || a == !b {
            return f;
        }
        if a == t {
            return b;
        }
        if b == t || a == b {
            return a;
        }
        let g = sat.new_var().positive();
        sat.add_clause([!g, a]);
        sat.add_clause([!g, b]);
        sat.add_clause([g, !a, !b]);
        g
    }

    /// `g <-> a | b`.
    pub fn mk_or(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        let g = self.mk_and(sat, !a, !b);
        !g
    }

    /// `g <-> a ^ b`.
    pub fn mk_xor(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        let t = self.lit_true(sat);
        let f = !t;
        if a == f {
            return b;
        }
        if b == f {
            return a;
        }
        if a == t {
            return !b;
        }
        if b == t {
            return !a;
        }
        if a == b {
            return f;
        }
        if a == !b {
            return t;
        }
        let g = sat.new_var().positive();
        sat.add_clause([!g, a, b]);
        sat.add_clause([!g, !a, !b]);
        sat.add_clause([g, !a, b]);
        sat.add_clause([g, a, !b]);
        g
    }

    /// `g <-> (s ? t : e)`.
    pub fn mk_mux(&mut self, sat: &mut Solver, s: Lit, t: Lit, e: Lit) -> Lit {
        let tt = self.lit_true(sat);
        let f = !tt;
        if s == tt {
            return t;
        }
        if s == f {
            return e;
        }
        if t == e {
            return t;
        }
        if t == tt && e == f {
            return s;
        }
        if t == f && e == tt {
            return !s;
        }
        let g = sat.new_var().positive();
        sat.add_clause([!g, !s, t]);
        sat.add_clause([g, !s, !t]);
        sat.add_clause([!g, s, e]);
        sat.add_clause([g, s, !e]);
        // Redundant but propagation-friendly clauses.
        sat.add_clause([!g, t, e]);
        sat.add_clause([g, !t, !e]);
        g
    }

    fn mk_and_many(&mut self, sat: &mut Solver, lits: &[Lit]) -> Lit {
        let mut acc = self.lit_true(sat);
        for &l in lits {
            acc = self.mk_and(sat, acc, l);
        }
        acc
    }

    fn mk_or_many(&mut self, sat: &mut Solver, lits: &[Lit]) -> Lit {
        let mut acc = self.lit_false(sat);
        for &l in lits {
            acc = self.mk_or(sat, acc, l);
        }
        acc
    }

    // ---- word-level circuits ----

    /// Ripple-carry adder; returns (sum bits, carry out).
    fn adder(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit], carry_in: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.mk_xor(sat, x, y);
            let s = self.mk_xor(sat, xy, carry);
            let c1 = self.mk_and(sat, x, y);
            let c2 = self.mk_and(sat, xy, carry);
            carry = self.mk_or(sat, c1, c2);
            sum.push(s);
        }
        (sum, carry)
    }

    /// Shift-add multiplier (low `w` bits of the product).
    fn multiplier(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let f = self.lit_false(sat);
        let mut acc: Vec<Lit> = vec![f; w];
        for i in 0..w {
            // Partial product: (a << i) & replicate(b[i]), but only the
            // affected upper bits need adding.
            let bi = b[i];
            if bi == f {
                continue;
            }
            let mut pp = vec![f; w];
            for j in i..w {
                pp[j] = self.mk_and(sat, a[j - i], bi);
            }
            let (s, _c) = self.adder(sat, &acc, &pp, f);
            acc = s;
        }
        acc
    }

    /// Unsigned comparator: `a <u b`.
    fn mk_ult(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut lt = self.lit_false(sat);
        for (&x, &y) in a.iter().zip(b) {
            // From LSB to MSB: lt = (x == y) ? lt : (!x & y)
            let xo = self.mk_xor(sat, x, y);
            let here = self.mk_and(sat, !x, y);
            lt = self.mk_mux(sat, xo, here, lt);
        }
        lt
    }

    /// Barrel shifter with overflow handling; `fill` supplies shifted-in /
    /// saturated bits (false for shl/lshr, the sign for ashr).
    fn barrel_shift(
        &mut self,
        sat: &mut Solver,
        a: &[Lit],
        amount: &[Lit],
        dir: ShiftDir,
        fill: Lit,
    ) -> Vec<Lit> {
        let w = a.len();
        let f = self.lit_false(sat);
        let stages = (0..).take_while(|&k| (1u128 << k) < w as u128).count();
        let mut cur: Vec<Lit> = a.to_vec();
        for (k, &bit) in amount.iter().enumerate().take(stages) {
            let s = 1usize << k;
            let mut next = Vec::with_capacity(w);
            for j in 0..w {
                let shifted = match dir {
                    ShiftDir::Left => {
                        if j >= s {
                            cur[j - s]
                        } else {
                            fill_for(dir, fill, f)
                        }
                    }
                    ShiftDir::Right => {
                        if j + s < w {
                            cur[j + s]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.mk_mux(sat, bit, shifted, cur[j]));
            }
            cur = next;
        }
        // Any amount bit at or above `stages` makes the shift >= w... unless
        // those bits exactly encode a value < w. Since 2^stages >= w, any
        // set bit in positions stages.. means amount >= 2^stages >= w.
        let high: Vec<Lit> = amount[stages..].to_vec();
        let overflow = self.mk_or_many(sat, &high);
        // Within-range amounts below 2^stages can still reach >= w when w is
        // not a power of two, but then the barrel stages have already
        // saturated the result to the fill pattern, so no extra check is
        // needed.
        let fill_bit = fill_for(dir, fill, f);
        cur.iter()
            .map(|&l| self.mk_mux(sat, overflow, fill_bit, l))
            .collect()
    }

    /// Restoring divider; returns `(quotient, remainder)` with SMT-LIB
    /// division-by-zero semantics (q = ones, r = dividend).
    fn divider(&mut self, sat: &mut Solver, a: &[Lit], d: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let f = self.lit_false(sat);
        // (w+1)-bit remainder register and zero-extended divisor.
        let mut r: Vec<Lit> = vec![f; w + 1];
        let mut dext: Vec<Lit> = d.to_vec();
        dext.push(f);
        let mut q = vec![f; w];
        for i in (0..w).rev() {
            // r = (r << 1) | a[i]
            let mut shifted = Vec::with_capacity(w + 1);
            shifted.push(a[i]);
            shifted.extend_from_slice(&r[..w]);
            // ge = shifted >= dext
            let lt = self.mk_ult(sat, &shifted, &dext);
            let ge = !lt;
            // r = ge ? shifted - dext : shifted
            let dinv: Vec<Lit> = dext.iter().map(|&l| !l).collect();
            let t = self.lit_true(sat);
            let (diff, _) = self.adder(sat, &shifted, &dinv, t);
            r = shifted
                .iter()
                .zip(&diff)
                .map(|(&s, &dl)| self.mk_mux(sat, ge, dl, s))
                .collect();
            q[i] = ge;
        }
        r.truncate(w);
        (q, r)
    }

    /// Signed division and remainder via sign fix-up around the unsigned
    /// divider (SMT-LIB `bvsdiv`/`bvsrem` semantics).
    fn signed_divrem(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let sign_a = a[w - 1];
        let sign_b = b[w - 1];
        let abs_a = self.abs(sat, a);
        let abs_b = self.abs(sat, b);
        let (uq, ur) = self.divider(sat, &abs_a, &abs_b);
        let q_sign = self.mk_xor(sat, sign_a, sign_b);
        let neg_q = self.negate(sat, &uq);
        let q: Vec<Lit> = uq
            .iter()
            .zip(&neg_q)
            .map(|(&p, &n)| self.mk_mux(sat, q_sign, n, p))
            .collect();
        let neg_r = self.negate(sat, &ur);
        let r: Vec<Lit> = ur
            .iter()
            .zip(&neg_r)
            .map(|(&p, &n)| self.mk_mux(sat, sign_a, n, p))
            .collect();
        (q, r)
    }

    fn abs(&mut self, sat: &mut Solver, a: &[Lit]) -> Vec<Lit> {
        let sign = a[a.len() - 1];
        let neg = self.negate(sat, a);
        a.iter()
            .zip(&neg)
            .map(|(&p, &n)| self.mk_mux(sat, sign, n, p))
            .collect()
    }

    fn negate(&mut self, sat: &mut Solver, a: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = a.iter().map(|&l| !l).collect();
        let t = self.lit_true(sat);
        let one: Vec<Lit> = std::iter::once(t)
            .chain(std::iter::repeat(!t))
            .take(a.len())
            .collect();
        self.adder(sat, &inv, &one, !t).0
    }

    /// Reads the value of a blasted bitvector term from the SAT model.
    pub fn model_bv(&self, sat: &Solver, id: TermId, width: u32) -> Option<BvVal> {
        match self.cache.get(&id)? {
            Blasted::Bv(bits) => {
                let mut v = 0u128;
                for (i, &l) in bits.iter().enumerate() {
                    if sat.lit_model(l) {
                        v |= 1 << i;
                    }
                }
                Some(BvVal::new(width, v))
            }
            Blasted::Bool(_) => None,
        }
    }

    /// Reads the value of a blasted boolean term from the SAT model.
    pub fn model_bool(&self, sat: &Solver, id: TermId) -> Option<bool> {
        match self.cache.get(&id)? {
            Blasted::Bool(l) => Some(sat.lit_model(*l)),
            Blasted::Bv(_) => None,
        }
    }
}

#[derive(Clone, Copy)]
enum BitOp {
    And,
    Or,
    Xor,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftDir {
    Left,
    Right,
}

#[inline]
fn fill_for(dir: ShiftDir, fill: Lit, false_lit: Lit) -> Lit {
    match dir {
        ShiftDir::Left => false_lit,
        ShiftDir::Right => fill,
    }
}
