//! The bit-blaster must agree with the reference semantics ([`BvVal`]) on
//! every operation: for concrete inputs a, b and every operator `op`, the
//! formula `op(x, y) == op_ref(a, b) ∧ x == a ∧ y == b` must be SAT, and
//! `op(x, y) != op_ref(a, b) ∧ x == a ∧ y == b` must be UNSAT.
//!
//! Because inputs go through *variables*, the term simplifier cannot
//! constant-fold the operator away — the circuit itself is exercised.

use alive_smt::{BvVal, SatResult, SmtSolver, Sort, TermId, TermPool};
use proptest::prelude::*;

type BinOp = (
    &'static str,
    fn(&mut TermPool, TermId, TermId) -> TermId,
    fn(BvVal, BvVal) -> BvVal,
);

fn binops() -> Vec<BinOp> {
    vec![
        ("add", TermPool::bv_add, BvVal::add),
        ("sub", TermPool::bv_sub, BvVal::sub),
        ("mul", TermPool::bv_mul, BvVal::mul),
        ("udiv", TermPool::bv_udiv, BvVal::udiv),
        ("urem", TermPool::bv_urem, BvVal::urem),
        ("sdiv", TermPool::bv_sdiv, BvVal::sdiv),
        ("srem", TermPool::bv_srem, BvVal::srem),
        ("and", TermPool::bv_and, BvVal::and),
        ("or", TermPool::bv_or, BvVal::or),
        ("xor", TermPool::bv_xor, BvVal::xor),
        ("shl", TermPool::bv_shl, BvVal::shl),
        ("lshr", TermPool::bv_lshr, BvVal::lshr),
        ("ashr", TermPool::bv_ashr, BvVal::ashr),
    ]
}

type CmpOp = (
    &'static str,
    fn(&mut TermPool, TermId, TermId) -> TermId,
    fn(BvVal, BvVal) -> bool,
);

fn cmpops() -> Vec<CmpOp> {
    vec![
        ("ult", TermPool::bv_ult, BvVal::ult),
        ("ule", TermPool::bv_ule, BvVal::ule),
        ("slt", TermPool::bv_slt, BvVal::slt),
        ("sle", TermPool::bv_sle, BvVal::sle),
    ]
}

/// Checks one operator instance both ways (SAT on agreement, UNSAT on
/// disagreement).
fn check_binop(op: &BinOp, width: u32, a: u128, b: u128) {
    let (name, build, reference) = op;
    let va = BvVal::new(width, a);
    let vb = BvVal::new(width, b);
    let expect = reference(va, vb);

    let mut p = TermPool::new();
    let x = p.var("x", Sort::BitVec(width));
    let y = p.var("y", Sort::BitVec(width));
    let r = build(&mut p, x, y);
    let ca = p.bv_const(va);
    let cb = p.bv_const(vb);
    let ce = p.bv_const(expect);
    let bind_x = p.eq(x, ca);
    let bind_y = p.eq(y, cb);

    // Agreement must be satisfiable.
    let agree = p.eq(r, ce);
    let mut s = SmtSolver::new();
    s.assert_term(&p, bind_x);
    s.assert_term(&p, bind_y);
    s.assert_term(&p, agree);
    assert_eq!(
        s.check(),
        SatResult::Sat,
        "{name}(i{width}: {a}, {b}) circuit disagrees with reference {expect:?}"
    );

    // Disagreement must be unsatisfiable.
    let differ = p.ne(r, ce);
    let mut s2 = SmtSolver::new();
    s2.assert_term(&p, bind_x);
    s2.assert_term(&p, bind_y);
    s2.assert_term(&p, differ);
    assert_eq!(
        s2.check(),
        SatResult::Unsat,
        "{name}(i{width}: {a}, {b}) circuit nondeterministic vs {expect:?}"
    );
}

fn check_cmpop(op: &CmpOp, width: u32, a: u128, b: u128) {
    let (name, build, reference) = op;
    let va = BvVal::new(width, a);
    let vb = BvVal::new(width, b);
    let expect = reference(va, vb);

    let mut p = TermPool::new();
    let x = p.var("x", Sort::BitVec(width));
    let y = p.var("y", Sort::BitVec(width));
    let r = build(&mut p, x, y);
    let ca = p.bv_const(va);
    let cb = p.bv_const(vb);
    let bind_x = p.eq(x, ca);
    let bind_y = p.eq(y, cb);
    let want = p.bool_const(expect);
    let agree = p.eq(r, want);
    let mut s = SmtSolver::new();
    s.assert_term(&p, bind_x);
    s.assert_term(&p, bind_y);
    s.assert_term(&p, agree);
    assert_eq!(
        s.check(),
        SatResult::Sat,
        "{name}(i{width}: {a}, {b}) != reference {expect}"
    );
    let differ = p.ne(r, want);
    let mut s2 = SmtSolver::new();
    s2.assert_term(&p, bind_x);
    s2.assert_term(&p, bind_y);
    s2.assert_term(&p, differ);
    assert_eq!(s2.check(), SatResult::Unsat, "{name} nondeterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binops_match_reference(a in any::<u64>(), b in any::<u64>(), w in 1u32..=8) {
        for op in binops() {
            check_binop(&op, w, a as u128, b as u128);
        }
    }

    #[test]
    fn cmpops_match_reference(a in any::<u64>(), b in any::<u64>(), w in 1u32..=8) {
        for op in cmpops() {
            check_cmpop(&op, w, a as u128, b as u128);
        }
    }

    #[test]
    fn extensions_match_reference(a in any::<u64>(), w in 1u32..=8, extra in 1u32..=8) {
        let va = BvVal::new(w, a as u128);
        let mut p = TermPool::new();
        let x = p.var("x", Sort::BitVec(w));
        let ca = p.bv_const(va);
        let bind = p.eq(x, ca);

        let z = p.zext(x, w + extra);
        let sx = p.sext(x, w + extra);
        let zc = p.bv_const(va.zext(w + extra));
        let sc = p.bv_const(va.sext(w + extra));
        let ez = p.eq(z, zc);
        let es = p.eq(sx, sc);
        let both = p.and2(ez, es);
        let mut s = SmtSolver::new();
        s.assert_term(&p, bind);
        let neg = p.not(both);
        s.assert_term(&p, neg);
        prop_assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn concat_extract_roundtrip(a in any::<u64>(), wa in 1u32..=6, wb in 1u32..=6) {
        let hi_val = BvVal::new(wa, a as u128);
        let lo_val = BvVal::new(wb, (a >> 7) as u128);
        let mut p = TermPool::new();
        let hi = p.var("hi", Sort::BitVec(wa));
        let lo = p.var("lo", Sort::BitVec(wb));
        let chv = p.bv_const(hi_val);
        let clv = p.bv_const(lo_val);
        let bh = p.eq(hi, chv);
        let bl = p.eq(lo, clv);
        let cat = p.concat(hi, lo);
        let back_hi = p.extract(cat, wa + wb - 1, wb);
        let back_lo = p.extract(cat, wb - 1, 0);
        let ok1 = p.eq(back_hi, hi);
        let ok2 = p.eq(back_lo, lo);
        let ok = p.and2(ok1, ok2);
        let bad = p.not(ok);
        let mut s = SmtSolver::new();
        s.assert_term(&p, bh);
        s.assert_term(&p, bl);
        s.assert_term(&p, bad);
        prop_assert_eq!(s.check(), SatResult::Unsat);
    }
}

/// Exhaustive check of every binop at width 3: 8×8 inputs × 13 ops.
#[test]
fn exhaustive_width3() {
    for a in 0..8u128 {
        for b in 0..8u128 {
            for op in binops() {
                check_binop(&op, 3, a, b);
            }
            for op in cmpops() {
                check_cmpop(&op, 3, a, b);
            }
        }
    }
}

/// The divider must implement SMT-LIB division-by-zero semantics so that
/// the circuit and the evaluator can never disagree.
#[test]
fn division_by_zero_circuit_semantics() {
    for a in [0u128, 1, 5, 7] {
        for op in binops() {
            if matches!(op.0, "udiv" | "urem" | "sdiv" | "srem") {
                check_binop(&op, 3, a, 0);
            }
        }
    }
}

/// INT_MIN / -1 must wrap in the circuit exactly as in the reference.
#[test]
fn int_min_division_overflow() {
    for op in binops() {
        if matches!(op.0, "sdiv" | "srem") {
            check_binop(&op, 4, 8, 0xF); // -8 / -1 at width 4
        }
    }
}
