//! Property test: the simplifying term constructors never change meaning.
//!
//! Random deep expression trees are built twice: once as [`TermPool`] terms
//! (with constructor-time simplification) and once as a shadow computation
//! over concrete [`BvVal`]s. For every random input assignment the term
//! must evaluate to the shadow result — and the same equivalence must hold
//! through the bit-blaster via an SMT query.

use alive_smt::{eval, Assignment, BvVal, SatResult, SmtSolver, Sort, TermId, TermPool};
use proptest::prelude::*;

/// A tiny expression AST for generating random terms.
#[derive(Clone, Debug)]
enum E {
    Var(usize),
    Const(u64),
    Not(Box<E>),
    Neg(Box<E>),
    Bin(u8, Box<E>, Box<E>),
    Ite(Box<E>, Box<E>, Box<E>), // cond: lhs <u rhs of first two children
}

fn expr_strategy(depth: u32) -> BoxedStrategy<E> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(E::Var),
        any::<u64>().prop_map(E::Const),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| E::Not(Box::new(e))),
            inner.clone().prop_map(|e| E::Neg(Box::new(e))),
            (0u8..10, inner.clone(), inner.clone()).prop_map(|(op, a, b)| E::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| E::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
    .boxed()
}

fn build_term(pool: &mut TermPool, e: &E, vars: &[TermId], w: u32) -> TermId {
    match e {
        E::Var(i) => vars[i % vars.len()],
        E::Const(c) => pool.bv(w, *c as u128),
        E::Not(a) => {
            let at = build_term(pool, a, vars, w);
            pool.bv_not(at)
        }
        E::Neg(a) => {
            let at = build_term(pool, a, vars, w);
            pool.bv_neg(at)
        }
        E::Bin(op, a, b) => {
            let at = build_term(pool, a, vars, w);
            let bt = build_term(pool, b, vars, w);
            match op {
                0 => pool.bv_add(at, bt),
                1 => pool.bv_sub(at, bt),
                2 => pool.bv_mul(at, bt),
                3 => pool.bv_and(at, bt),
                4 => pool.bv_or(at, bt),
                5 => pool.bv_xor(at, bt),
                6 => pool.bv_shl(at, bt),
                7 => pool.bv_lshr(at, bt),
                8 => pool.bv_udiv(at, bt),
                _ => pool.bv_urem(at, bt),
            }
        }
        E::Ite(c, a, b) => {
            let ct1 = build_term(pool, c, vars, w);
            let ct2 = build_term(pool, a, vars, w);
            let cond = pool.bv_ult(ct1, ct2);
            let at = build_term(pool, a, vars, w);
            let bt = build_term(pool, b, vars, w);
            pool.ite(cond, at, bt)
        }
    }
}

fn shadow_eval(e: &E, inputs: &[BvVal], w: u32) -> BvVal {
    match e {
        E::Var(i) => inputs[i % inputs.len()],
        E::Const(c) => BvVal::new(w, *c as u128),
        E::Not(a) => shadow_eval(a, inputs, w).not(),
        E::Neg(a) => shadow_eval(a, inputs, w).neg(),
        E::Bin(op, a, b) => {
            let x = shadow_eval(a, inputs, w);
            let y = shadow_eval(b, inputs, w);
            match op {
                0 => x.add(y),
                1 => x.sub(y),
                2 => x.mul(y),
                3 => x.and(y),
                4 => x.or(y),
                5 => x.xor(y),
                6 => x.shl(y),
                7 => x.lshr(y),
                8 => x.udiv(y),
                _ => x.urem(y),
            }
        }
        E::Ite(c, a, b) => {
            let cv = shadow_eval(c, inputs, w);
            let av = shadow_eval(a, inputs, w);
            if cv.ult(av) {
                av
            } else {
                shadow_eval(b, inputs, w)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Constructor simplification preserves the evaluator's semantics.
    #[test]
    fn simplified_terms_evaluate_like_the_shadow(
        e in expr_strategy(5),
        raw in proptest::collection::vec(any::<u64>(), 3),
        w in 1u32..=16,
    ) {
        let mut pool = TermPool::new();
        let vars: Vec<TermId> = (0..3)
            .map(|i| pool.var(format!("v{i}"), Sort::BitVec(w)))
            .collect();
        let term = build_term(&mut pool, &e, &vars, w);
        let inputs: Vec<BvVal> = raw.iter().map(|&r| BvVal::new(w, r as u128)).collect();
        let mut env = Assignment::new();
        for (v, val) in vars.iter().zip(&inputs) {
            env.set(*v, *val);
        }
        let got = eval(&pool, term, &env).unwrap().as_bv();
        let expect = shadow_eval(&e, &inputs, w);
        prop_assert_eq!(got, expect);
    }

    /// The bit-blasted circuit agrees with the evaluator on pinned inputs.
    #[test]
    fn blasted_terms_agree_with_evaluator(
        e in expr_strategy(3),
        raw in proptest::collection::vec(any::<u64>(), 3),
        w in 1u32..=6,
    ) {
        let mut pool = TermPool::new();
        let vars: Vec<TermId> = (0..3)
            .map(|i| pool.var(format!("v{i}"), Sort::BitVec(w)))
            .collect();
        let term = build_term(&mut pool, &e, &vars, w);
        let inputs: Vec<BvVal> = raw.iter().map(|&r| BvVal::new(w, r as u128)).collect();
        let expect = shadow_eval(&e, &inputs, w);

        let mut solver = SmtSolver::new();
        for (v, val) in vars.iter().zip(&inputs) {
            let c = pool.bv_const(*val);
            let eq = pool.eq(*v, c);
            solver.assert_term(&pool, eq);
        }
        let ce = pool.bv_const(expect);
        let differs = pool.ne(term, ce);
        solver.assert_term(&pool, differs);
        prop_assert_eq!(solver.check(), SatResult::Unsat);
    }
}
