//! Overload and lifecycle tests for the crash-only daemon: admission
//! control, connection shedding, idle-connection closing, graceful
//! drain, socket-path probing, and the client's retry policy.

use alive_ir::parse_transform;
use alive_serve::{ServeConfig, ServeLimits, Server};
use alive_verifier::{DriverConfig, OutcomeKind, TransformOutcome, VerifyConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("alive-robust-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_config(store_path: PathBuf, limits: ServeLimits) -> ServeConfig {
    ServeConfig {
        driver: DriverConfig {
            verify: VerifyConfig::fast(),
            ..Default::default()
        },
        store_path,
        limits,
        ..Default::default()
    }
}

const GOOD: &str = "%r = add %x, 0\n=>\n%r = %x";
const OTHER: &str = "%r = sub %x, 0\n=>\n%r = %x";
const THIRD: &str = "%r = or %x, 0\n=>\n%r = %x";

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A verifier stand-in that blocks every verification until `release`
/// is flipped, so tests can hold the queue full deterministically.
fn gated_verifier(
    release: Arc<AtomicBool>,
) -> impl Fn(&str, &alive_ir::Transform, &DriverConfig) -> TransformOutcome + Send + Sync + 'static
{
    move |name, _, _| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !release.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "verifier gate never released");
            std::thread::sleep(Duration::from_millis(1));
        }
        TransformOutcome::synthetic(name, OutcomeKind::Valid, "valid".to_string())
    }
}

/// The admission-control contract: a request that would start a
/// verification past `queue_depth` is refused `busy`, while store hits
/// and in-flight joins — which cost no worker — are always admitted.
#[test]
fn queue_depth_refuses_fresh_work_but_admits_hits_and_joins() {
    let dir = temp_dir("queue-depth");
    let limits = ServeLimits {
        queue_depth: 1,
        ..ServeLimits::default()
    };
    let (mut server, _) = Server::open(fast_config(dir.join("store.jsonl"), limits)).unwrap();

    // Pre-warm the store with one verdict while nothing is in flight.
    let warm = parse_transform(THIRD).unwrap();
    let release_warm = Arc::new(AtomicBool::new(true));
    server.set_verifier(gated_verifier(Arc::clone(&release_warm)));
    assert_eq!(
        server.try_check("warm", &warm).unwrap().verdict,
        OutcomeKind::Valid
    );

    // Now gate the verifier shut and fill the single queue slot.
    let release = Arc::new(AtomicBool::new(false));
    server.set_verifier(gated_verifier(Arc::clone(&release)));
    let server = server;
    let slow = parse_transform(GOOD).unwrap();
    let leader = {
        let server = server.clone();
        let slow = slow.clone();
        std::thread::spawn(move || server.try_check("slow", &slow))
    };
    wait_until("leader in flight", || server.stats().inflight == 1);

    // Fresh work past the cap: refused with a sane retry hint.
    let fresh = parse_transform(OTHER).unwrap();
    let busy = server.try_check("fresh", &fresh).unwrap_err();
    assert!(
        (100..=5_000).contains(&busy.retry_after_ms),
        "retry hint {} out of range",
        busy.retry_after_ms
    );

    // A store hit is always admitted, even with the queue full.
    let hit = server.try_check("warm-again", &warm).unwrap();
    assert!(hit.cached);

    // A join to the in-flight run is always admitted.
    let joiner = {
        let server = server.clone();
        let slow = slow.clone();
        std::thread::spawn(move || server.try_check("slow-too", &slow))
    };
    wait_until("joiner parked", || server.stats().waiters == 1);
    release.store(true, Ordering::SeqCst);
    assert_eq!(leader.join().unwrap().unwrap().verdict, OutcomeKind::Valid);
    assert_eq!(joiner.join().unwrap().unwrap().verdict, OutcomeKind::Valid);

    // The slot is free again: fresh work is admitted.
    assert_eq!(
        server.try_check("fresh", &fresh).unwrap().verdict,
        OutcomeKind::Valid
    );
    let s = server.stats();
    assert_eq!(s.busy, 1, "exactly one busy refusal");
    assert_eq!(s.joins, 1);
    // check() (the embedding API) never refuses, whatever the queue says.
    let _ = server.check("embedded", &parse_transform(GOOD).unwrap());
}

#[cfg(unix)]
mod unix {
    use super::*;
    use alive_serve::proto::{parse_flat_object, parse_response, JsonValue, Response};
    use alive_serve::serve_unix;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};

    /// Starts `serve_unix` on a background thread and waits for the
    /// socket to accept connections.
    fn spawn_daemon(server: &Server, sock: &Path) -> std::thread::JoinHandle<std::io::Result<()>> {
        let handle = {
            let server = server.clone();
            let sock = sock.to_path_buf();
            std::thread::spawn(move || serve_unix(&server, &sock))
        };
        let sock = sock.to_path_buf();
        wait_until("socket to appear", || sock.exists());
        handle
    }

    /// One connection past `--max-connections` is told `busy` and closed
    /// instead of being queued behind work the daemon cannot take.
    #[test]
    fn connection_cap_sheds_with_a_busy_line() {
        let dir = temp_dir("conn-cap");
        let limits = ServeLimits {
            max_connections: 1,
            ..ServeLimits::default()
        };
        let (server, _) = Server::open(fast_config(dir.join("store.jsonl"), limits)).unwrap();
        let handle = spawn_daemon(&server, &dir.join("serve.sock"));

        let first = UnixStream::connect(dir.join("serve.sock")).unwrap();
        wait_until("first connection registered", || {
            server.stats().connections == 1
        });

        // The second connection is shed: busy line, then EOF.
        let second = UnixStream::connect(dir.join("serve.sock")).unwrap();
        let mut reader = BufReader::new(second);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match parse_response(line.trim_end()).unwrap() {
            Response::Busy { retry_after_ms, .. } => assert!(retry_after_ms > 0),
            other => panic!("expected busy, got {other:?}"),
        }
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "shed then closed");
        wait_until("shed counted", || server.stats().shed == 1);

        drop(first);
        wait_until("first connection gone", || server.stats().connections == 0);
        server.begin_stop();
        handle.join().unwrap().unwrap();
    }

    /// The slow-loris defense: a client that connects and goes silent is
    /// closed after `idle_timeout`, freeing its connection slot.
    #[test]
    fn silent_connection_is_idle_closed() {
        let dir = temp_dir("idle");
        let limits = ServeLimits {
            idle_timeout: Duration::from_millis(300),
            ..ServeLimits::default()
        };
        let (server, _) = Server::open(fast_config(dir.join("store.jsonl"), limits)).unwrap();
        let handle = spawn_daemon(&server, &dir.join("serve.sock"));

        let silent = UnixStream::connect(dir.join("serve.sock")).unwrap();
        let mut reader = BufReader::new(silent);
        let mut line = String::new();
        // The daemon hangs up on us: EOF without a byte sent.
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "idle close is EOF");
        wait_until("idle close counted", || server.stats().idle_closed == 1);
        wait_until("slot released", || server.stats().connections == 0);

        server.begin_stop();
        handle.join().unwrap().unwrap();
    }

    /// Graceful drain: after `begin_stop` the daemon stops accepting but
    /// the in-flight request still gets its verdict before the socket
    /// goes away.
    #[test]
    fn drain_delivers_the_inflight_verdict() {
        let dir = temp_dir("drain");
        let (mut server, _) =
            Server::open(fast_config(dir.join("store.jsonl"), ServeLimits::default())).unwrap();
        let release = Arc::new(AtomicBool::new(false));
        server.set_verifier(gated_verifier(Arc::clone(&release)));
        let server = server;
        let sock = dir.join("serve.sock");
        let handle = spawn_daemon(&server, &sock);

        let mut stream = UnixStream::connect(&sock).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        writeln!(
            stream,
            "{{\"op\":\"verify\",\"id\":\"d1\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}}"
        )
        .unwrap();
        wait_until("request in flight", || server.stats().inflight == 1);

        server.begin_stop();
        release.store(true, Ordering::SeqCst);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let fields = parse_flat_object(line.trim_end()).unwrap();
        assert_eq!(fields["id"], JsonValue::Str("d1".to_string()));
        assert_eq!(fields["verdict"], JsonValue::Str("valid".to_string()));

        drop(reader);
        drop(stream);
        handle.join().unwrap().unwrap();
        assert!(!sock.exists(), "socket removed after drain");
    }

    /// A socket path with a live daemon behind it is refused; a stale
    /// socket file left by a crashed daemon is reclaimed.
    #[test]
    fn socket_probe_refuses_live_daemon_and_reclaims_stale_file() {
        let dir = temp_dir("probe");
        let sock = dir.join("serve.sock");

        // Stale file: bind a listener, drop it, leave the inode behind.
        drop(UnixListener::bind(&sock).unwrap());
        assert!(sock.exists(), "stale socket file survives its listener");

        let (server, _) =
            Server::open(fast_config(dir.join("store.jsonl"), ServeLimits::default())).unwrap();
        let handle = spawn_daemon(&server, &sock); // reclaims the stale file

        // Live daemon: a second server on the same path must refuse
        // rather than steal the socket out from under it.
        let (second, _) = Server::open(fast_config(
            dir.join("store2.jsonl"),
            ServeLimits::default(),
        ))
        .unwrap();
        let err = serve_unix(&second, &sock).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
        assert!(sock.exists(), "refusal must not remove the live socket");

        server.begin_stop();
        handle.join().unwrap().unwrap();
    }

    /// The client absorbs a `busy` refusal and a daemon restart with
    /// backoff and reconnect, and gives up with `Unavailable` only when
    /// the retries are exhausted.
    #[test]
    fn client_retries_through_busy_and_reconnect() {
        use alive_serve::client::{Client, ClientConfig, ClientError};

        let dir = temp_dir("client-retry");
        let sock = dir.join("serve.sock");

        // A hand-rolled daemon: first connection answers busy, second
        // connection drops without a byte (a crash), third serves.
        let listener = UnixListener::bind(&sock).unwrap();
        let fake = std::thread::spawn(move || {
            for round in 0..3 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                match round {
                    0 => {
                        writeln!(
                            stream,
                            "{{\"id\":\"x\",\"busy\":true,\"retry_after_ms\":1}}"
                        )
                        .unwrap();
                    }
                    1 => {} // crash: close without answering
                    _ => {
                        writeln!(
                            stream,
                            "{{\"id\":\"x\",\"index\":0,\"name\":\"n\",\"hash\":\"00\",\
                             \"verdict\":\"valid\",\"cached\":true,\"coalesced\":false,\
                             \"reason\":\"\",\"wall_us\":1,\"cert\":\"\"}}"
                        )
                        .unwrap();
                    }
                }
            }
        });

        let mut client = Client::new(ClientConfig {
            socket: sock,
            max_retries: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            ..ClientConfig::default()
        });
        let verdict = client.verify(GOOD).unwrap();
        assert_eq!(verdict.verdict, "valid");
        assert_eq!(client.busy_seen(), 1, "one busy absorbed");
        assert!(client.retries() >= 2, "busy + reconnect both backed off");
        fake.join().unwrap();

        // No daemon at all: bounded retries, then Unavailable.
        let mut orphan = Client::new(ClientConfig {
            socket: dir.join("nobody-home.sock"),
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..ClientConfig::default()
        });
        match orphan.verify(GOOD) {
            Err(ClientError::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert_eq!(orphan.retries(), 2);
    }

    /// The client surfaces request-level errors without retrying them:
    /// re-asking a parse failure re-earns the same answer.
    #[test]
    fn client_does_not_retry_request_errors() {
        use alive_serve::client::{Client, ClientConfig, ClientError};

        let dir = temp_dir("client-error");
        let (server, _) =
            Server::open(fast_config(dir.join("store.jsonl"), ServeLimits::default())).unwrap();
        let sock = dir.join("serve.sock");
        let handle = spawn_daemon(&server, &sock);

        let mut client = Client::new(ClientConfig {
            socket: sock,
            base_backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        });
        match client.verify("%r = bogus") {
            Err(ClientError::Request(m)) => assert!(!m.is_empty()),
            other => panic!("expected Request error, got {other:?}"),
        }
        assert_eq!(client.retries(), 0, "request errors are not retried");

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}
