//! Fault-injection tests for the daemon (`--features fault-injection`):
//! store appends that fail or tear mid-write, and request handling that
//! hangs or dies mid-response. The crash-only contract under test: the
//! requester still gets an answer (or a clean close), the daemon
//! survives, and the store never replays a damaged record.

#![cfg(feature = "fault-injection")]

use alive_ir::parse_transform;
use alive_sat::fault::{self, FailurePlan};
use alive_serve::{ServeConfig, ServeLimits, Server};
use alive_trace::{serve as metric, MetricsSink, Tracer};
use alive_verifier::store::StoreOpen;
use alive_verifier::{DriverConfig, OutcomeKind, VerifyConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// The fault plan is process-global; these tests must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `spec` for one closure, then clears it.
fn with_plan<T>(spec: &str, f: impl FnOnce() -> T) -> T {
    fault::install(Some(FailurePlan::parse(spec).expect(spec)));
    let out = f();
    fault::install(None);
    out
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("alive-serve-faults").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn metered_config(store_path: PathBuf, sink: &Arc<MetricsSink>) -> ServeConfig {
    ServeConfig {
        driver: DriverConfig {
            verify: VerifyConfig::fast(),
            ..Default::default()
        },
        store_path,
        tracer: Tracer::new(Box::new(Arc::clone(sink))),
        limits: ServeLimits::default(),
        ..Default::default()
    }
}

const GOOD: &str = "%r = add %x, 0\n=>\n%r = %x";
const OTHER: &str = "%r = sub %x, 0\n=>\n%r = %x";

/// The disk-full path: the store append fails, but the requester still
/// gets its verdict — losing persistence must not lose the answer. The
/// next daemon start simply re-verifies.
#[test]
fn failed_store_append_still_serves_the_verdict() {
    let _g = serial();
    let dir = temp_dir("disk-full");
    let store = dir.join("store.jsonl");
    let sink = Arc::new(MetricsSink::new());
    {
        let (server, _) = Server::open(metered_config(store.clone(), &sink)).unwrap();
        let t = parse_transform(GOOD).unwrap();
        let answer = with_plan("store:io-error@1", || server.check("good", &t));
        assert_eq!(answer.verdict, OutcomeKind::Valid, "verdict survives");
        let s = server.stats();
        assert_eq!(s.errors, 1, "the lost append is counted");
        assert_eq!(s.stored, 0, "nothing landed in the store");
        assert_eq!(sink.counter(metric::ERROR), 1, "serve.error incremented");
    }
    // Restart: the verdict was never persisted, so it is re-verified —
    // not silently missing, not corrupt.
    let (server, how) = Server::open(metered_config(store, &sink)).unwrap();
    assert_eq!(
        how,
        StoreOpen::Loaded {
            records: 0,
            discarded: 0
        }
    );
    let again = server.check("good", &parse_transform(GOOD).unwrap());
    assert!(!again.cached, "lost append means a fresh verification");
    assert_eq!(again.verdict, OutcomeKind::Valid);
}

/// A torn append (power loss mid-write) is rolled back in place: the
/// store stays clean, later appends land, and a restart replays only
/// the intact record.
#[test]
fn torn_store_append_is_rolled_back_and_later_appends_land() {
    let _g = serial();
    let dir = temp_dir("torn");
    let store = dir.join("store.jsonl");
    let sink = Arc::new(MetricsSink::new());
    {
        let (server, _) = Server::open(metered_config(store.clone(), &sink)).unwrap();
        let torn = with_plan("store:torn@1", || {
            server.check("good", &parse_transform(GOOD).unwrap())
        });
        assert_eq!(torn.verdict, OutcomeKind::Valid);
        let ok = server.check("other", &parse_transform(OTHER).unwrap());
        assert_eq!(ok.verdict, OutcomeKind::Valid);
        let s = server.stats();
        assert_eq!(s.errors, 1, "the torn append is counted");
        assert_eq!(s.stored, 1, "the clean append landed after the tear");
    }
    let (server, how) = Server::open(metered_config(store, &sink)).unwrap();
    assert_eq!(
        how,
        StoreOpen::Loaded {
            records: 1,
            discarded: 0
        },
        "the rolled-back tear leaves no torn line to discard"
    );
    assert!(!server.check("good", &parse_transform(GOOD).unwrap()).cached);
    assert!(
        server
            .check("other", &parse_transform(OTHER).unwrap())
            .cached
    );
}

/// An injected hang in request handling resolves on its own bound — the
/// daemon still answers, and a begin_stop cuts the stall short.
#[test]
fn injected_request_hang_is_bounded_by_stop() {
    let _g = serial();
    let dir = temp_dir("hang");
    let sink = Arc::new(MetricsSink::new());
    let (server, _) = Server::open(metered_config(dir.join("store.jsonl"), &sink)).unwrap();
    // Cut the stall short: the hang polls `stopping` every 10ms.
    let stopper = {
        let server = server.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            server.begin_stop();
        })
    };
    let mut out = Vec::new();
    let started = std::time::Instant::now();
    let keep_going = with_plan("serve:hang@1", || {
        server.handle_line(
            "{\"op\":\"verify\",\"id\":\"h1\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}",
            &mut out,
        )
    })
    .unwrap();
    stopper.join().unwrap();
    assert!(
        keep_going,
        "a hung-then-served request keeps the connection"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "begin_stop must cut the injected hang short"
    );
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("\"verdict\":\"valid\""), "{out}");
}

/// A response write that dies mid-line closes that connection with an
/// error; the daemon survives and the next connection is served.
#[test]
fn torn_response_kills_the_connection_not_the_daemon() {
    let _g = serial();
    let dir = temp_dir("torn-response");
    let sink = Arc::new(MetricsSink::new());
    let (server, _) = Server::open(metered_config(dir.join("store.jsonl"), &sink)).unwrap();
    let request = "{\"op\":\"verify\",\"id\":\"t1\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}";

    let mut out = Vec::new();
    let err = with_plan("serve:torn@1", || server.handle_line(request, &mut out))
        .expect_err("a torn response must surface as an I/O error");
    assert!(err.to_string().contains("torn response"), "{err}");
    // The tear left a partial line — exactly what a crashed daemon
    // leaves on the wire; the client treats it as a connection failure.
    assert_eq!(String::from_utf8(out).unwrap(), "{\"id\":\"");

    let mut out = Vec::new();
    let err = with_plan("serve:io-error@1", || server.handle_line(request, &mut out))
        .expect_err("an injected write error must surface");
    assert!(err.to_string().contains("response write error"), "{err}");
    assert!(out.is_empty());

    // The daemon itself is fine: a retry on a fresh connection serves.
    let mut out = Vec::new();
    assert!(server.handle_line(request, &mut out).unwrap());
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("\"verdict\":\"valid\""), "{out}");
}
