//! End-to-end tests for the verification service: cache discipline,
//! persistence, protocol handling, in-flight coalescing under real
//! concurrency, and the unix-socket transport.

use alive_ir::parse_transform;
use alive_serve::proto::{parse_flat_object, JsonValue};
use alive_serve::{handle_connection, ServeConfig, Server};
use alive_verifier::store::StoreOpen;
use alive_verifier::{DriverConfig, OutcomeKind, TransformOutcome, VerifyConfig};
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("alive-serve-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_config(store_path: PathBuf) -> ServeConfig {
    ServeConfig {
        driver: DriverConfig {
            verify: VerifyConfig::fast(),
            ..Default::default()
        },
        store_path,
        ..Default::default()
    }
}

const GOOD: &str = "%r = add %x, 0\n=>\n%r = %x";
const GOOD_VARIANT: &str = "%out = add 0, %a\n=>\n%out = %a";
const BAD: &str = "%r = add %x, 0\n=>\n%r = add %x, 1";

#[test]
fn hit_after_miss_and_across_restart() {
    let dir = temp_dir("restart");
    let store = dir.join("store.jsonl");
    {
        let (server, how) = Server::open(fast_config(store.clone())).unwrap();
        assert_eq!(how, StoreOpen::Created);
        let t = parse_transform(GOOD).unwrap();
        let first = server.check("good", &t);
        assert_eq!(first.verdict, OutcomeKind::Valid);
        assert!(!first.cached);
        // Alpha-renamed + commuted variant: same canonical identity.
        let v = parse_transform(GOOD_VARIANT).unwrap();
        let second = server.check("variant", &v);
        assert!(second.cached);
        assert_eq!(second.hash, first.hash);
        assert_eq!(second.verdict, OutcomeKind::Valid);
        let s = server.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }
    // A fresh daemon over the same store file answers without verifying.
    let (server, how) = Server::open(fast_config(store)).unwrap();
    assert_eq!(
        how,
        StoreOpen::Loaded {
            records: 1,
            discarded: 0
        }
    );
    let t = parse_transform(GOOD).unwrap();
    let again = server.check("good", &t);
    assert!(again.cached);
    assert_eq!(again.verdict, OutcomeKind::Valid);
}

#[test]
fn invalid_verdicts_are_cached_with_their_counterexample() {
    let dir = temp_dir("invalid");
    let (server, _) = Server::open(fast_config(dir.join("store.jsonl"))).unwrap();
    let t = parse_transform(BAD).unwrap();
    let first = server.check("bad", &t);
    assert_eq!(first.verdict, OutcomeKind::Invalid);
    let second = server.check("bad", &t);
    assert!(second.cached);
    assert_eq!(second.verdict, OutcomeKind::Invalid);
    assert_eq!(second.reason, first.reason);
    assert!(!second.reason.is_empty(), "counterexample text survives");
}

#[test]
fn epoch_bump_evicts() {
    let dir = temp_dir("epoch");
    let store = dir.join("store.jsonl");
    {
        let (server, _) = Server::open(fast_config(store.clone())).unwrap();
        server.check("good", &parse_transform(GOOD).unwrap());
    }
    let mut config = fast_config(store);
    config.epoch = 1;
    let (server, how) = Server::open(config).unwrap();
    assert!(matches!(how, StoreOpen::Evicted { prior_epoch: 0, .. }));
    let answer = server.check("good", &parse_transform(GOOD).unwrap());
    assert!(!answer.cached, "bumped epoch must re-verify");
}

/// A store that is mostly dead records (superseded re-verifications) is
/// compacted automatically when the daemon opens it: the report is
/// surfaced, the file shrinks, and every live verdict still answers as a
/// cached hit.
#[test]
fn mostly_dead_store_is_compacted_at_open() {
    let dir = temp_dir("autocompact");
    let store = dir.join("store.jsonl");
    {
        let (server, _) = Server::open(fast_config(store.clone())).unwrap();
        assert_eq!(
            server
                .check("good", &parse_transform(GOOD).unwrap())
                .verdict,
            OutcomeKind::Valid
        );
    }
    // Supersede the record twice, daemon-side style (same canonical key,
    // same store identity) — 3 replayed, 1 live.
    let fp = alive_verifier::config_fingerprint(&VerifyConfig::fast());
    let desc = alive_verifier::config_description(&VerifyConfig::fast());
    {
        let (mut vs, _) = alive_verifier::VerdictStore::open(&store, fp, 0, Some(&desc)).unwrap();
        let live: Vec<_> = vs
            .live_records()
            .map(|r| (r.canon.clone(), r.verdict, r.reason.clone()))
            .collect();
        for _ in 0..2 {
            for (canon, verdict, reason) in &live {
                vs.insert(canon, *verdict, reason, 1, "").unwrap();
            }
        }
        assert_eq!(vs.replayed(), 3);
    }
    let bloated = std::fs::metadata(&store).unwrap().len();
    let (server, how) = Server::open(fast_config(store.clone())).unwrap();
    assert!(matches!(how, StoreOpen::Loaded { records: 1, .. }));
    let report = server.compaction().expect("open-time compaction ran");
    assert_eq!((report.replayed, report.live, report.dropped), (3, 1, 2));
    assert!(std::fs::metadata(&store).unwrap().len() < bloated);
    let answer = server.check("good", &parse_transform(GOOD).unwrap());
    assert!(answer.cached, "live verdict survives compaction");
    assert_eq!(answer.verdict, OutcomeKind::Valid);
    drop(server);
    // A clean store is left alone on the next open.
    let (server, _) = Server::open(fast_config(store)).unwrap();
    assert!(server.compaction().is_none());
}

/// The satellite-task race: two clients submit the same uncached
/// transform concurrently. Exactly one verification must run; both must
/// receive the identical verdict. Deterministic: the injected verifier
/// refuses to finish until the second client has joined the in-flight
/// entry, so the coalescing path cannot be skipped by lucky timing.
#[test]
fn two_racing_clients_one_verification() {
    let dir = temp_dir("race");
    let (mut server, _) = Server::open(fast_config(dir.join("store.jsonl"))).unwrap();
    let calls = Arc::new(AtomicUsize::new(0));
    let calls_in_verifier = Arc::clone(&calls);
    server.set_verifier(move |name, t, driver| {
        calls_in_verifier.fetch_add(1, Ordering::SeqCst);
        alive_verifier::verify_single(name, t, driver)
    });
    let server = server; // shared from here on
                         // Deterministic overlap: client B blocks on the inflight entry while
                         // client A is still verifying, because A's verifier (above) runs a
                         // real proof and B is released only by A's notify. To make the
                         // overlap certain rather than probable, hold A at a barrier until B
                         // has started.
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let t = parse_transform(GOOD).unwrap();
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let server = server.clone();
                let barrier = Arc::clone(&barrier);
                let t = t.clone();
                scope.spawn(move || {
                    barrier.wait();
                    server.check("raced", &t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one verification");
    assert_eq!(answers[0].verdict, answers[1].verdict);
    assert_eq!(answers[0].hash, answers[1].hash);
    assert_eq!(answers[0].reason, answers[1].reason);
    let s = server.stats();
    assert_eq!(s.misses, 1, "one miss");
    assert_eq!(
        s.hits + s.joins,
        1,
        "the other client hit the store or joined in flight"
    );
    assert_eq!(s.stored, 1, "one store record");
}

/// Same race, but forced through the coalescing path: the verifier spins
/// until the sibling client has joined, so a sequentialized execution
/// (join after leader finishes → store hit) cannot satisfy it.
#[test]
fn racing_client_joins_in_flight_verification() {
    let dir = temp_dir("race-join");
    let (mut server, _) = Server::open(fast_config(dir.join("store.jsonl"))).unwrap();
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    let probe = server.clone();
    server.set_verifier(move |_, _, _| {
        calls2.fetch_add(1, Ordering::SeqCst);
        // Refuse to finish until the sibling client is parked on this
        // verification's in-flight entry: the coalescing path is then the
        // only way it can be answered.
        let deadline = Instant::now() + Duration::from_secs(30);
        while probe.stats().waiters == 0 {
            assert!(Instant::now() < deadline, "joiner never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        TransformOutcome::synthetic("raced", OutcomeKind::Valid, "valid".to_string())
    });
    let server = server;
    let t = parse_transform(GOOD).unwrap();
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let server = server.clone();
                let t = t.clone();
                scope.spawn(move || server.check("raced", &t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one verification");
    assert_eq!(answers[0].verdict, OutcomeKind::Valid);
    assert_eq!(answers[1].verdict, OutcomeKind::Valid);
    let s = server.stats();
    assert_eq!((s.misses, s.joins), (1, 1), "leader missed, sibling joined");
    // Either thread may have won leadership; exactly one of the two
    // answers came from the coalescing (or store-hit) path.
    let joined = answers.iter().filter(|a| a.coalesced || a.cached).count();
    assert_eq!(joined, 1, "exactly one answer joined or hit");
}

#[test]
fn protocol_verify_batch_stats_shutdown() {
    let dir = temp_dir("proto");
    let (server, _) = Server::open(fast_config(dir.join("store.jsonl"))).unwrap();
    let requests = format!(
        concat!(
            "{{\"op\":\"verify\",\"id\":\"a\",\"text\":\"{good}\"}}\n",
            "{{\"op\":\"verify\",\"id\":\"b\",\"text\":\"{good}\"}}\n",
            "{{\"op\":\"batch\",\"id\":\"c\",\"text\":\"Name: g\\n{good}\\nName: b\\n{bad}\"}}\n",
            "{{\"op\":\"verify\",\"id\":\"d\",\"text\":\"%r = bogus\"}}\n",
            "{{\"op\":\"stats\",\"id\":\"e\"}}\n",
            "{{\"op\":\"shutdown\",\"id\":\"f\"}}\n",
            "{{\"op\":\"verify\",\"id\":\"never\",\"text\":\"{good}\"}}\n",
        ),
        good = "%r = add %x, 0\\n=>\\n%r = %x",
        bad = "%r = add %x, 0\\n=>\\n%r = add %x, 1",
    );
    let mut out = Vec::new();
    handle_connection(&server, Cursor::new(requests), &mut out).unwrap();
    let out = String::from_utf8(out).unwrap();
    let lines: Vec<_> = out.lines().collect();
    // a, b, two batch verdicts + done, error for d, stats, shutdown ack.
    assert_eq!(lines.len(), 8, "unexpected response count:\n{out}");
    let a = parse_flat_object(lines[0]).unwrap();
    assert_eq!(a["verdict"], JsonValue::Str("valid".to_string()));
    assert_eq!(a["cached"], JsonValue::Bool(false));
    let b = parse_flat_object(lines[1]).unwrap();
    assert_eq!(b["cached"], JsonValue::Bool(true));
    assert_eq!(a["hash"], b["hash"]);
    // Batch: first item cached (same canonical transform as "a"), second
    // is the invalid one, fresh.
    let c0 = parse_flat_object(lines[2]).unwrap();
    assert_eq!(c0["index"], JsonValue::Num(0));
    assert_eq!(c0["cached"], JsonValue::Bool(true));
    let c1 = parse_flat_object(lines[3]).unwrap();
    assert_eq!(c1["verdict"], JsonValue::Str("invalid".to_string()));
    let done = parse_flat_object(lines[4]).unwrap();
    assert_eq!(done["done"], JsonValue::Bool(true));
    assert_eq!(done["count"], JsonValue::Num(2));
    assert_eq!(done["hits"], JsonValue::Num(1));
    assert_eq!(done["misses"], JsonValue::Num(1));
    let err = parse_flat_object(lines[5]).unwrap();
    assert!(matches!(&err["error"], JsonValue::Str(_)));
    let stats = parse_flat_object(lines[6]).unwrap();
    assert_eq!(stats["stats"], JsonValue::Bool(true));
    let shutdown = parse_flat_object(lines[7]).unwrap();
    assert_eq!(shutdown["shutdown"], JsonValue::Bool(true));
    // handle_connection stops at shutdown: the trailing request with id
    // "never" must not have been served.
    assert!(
        !lines.iter().any(|l| l.contains("\"id\":\"never\"")),
        "request after shutdown must not be served:\n{out}"
    );
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let dir = temp_dir("unix");
    let (server, _) = Server::open(fast_config(dir.join("store.jsonl"))).unwrap();
    let sock = dir.join("serve.sock");
    let handle = {
        let server = server.clone();
        let sock = sock.clone();
        std::thread::spawn(move || alive_serve::serve_unix(&server, &sock))
    };
    // Wait for the socket to appear.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut stream = UnixStream::connect(&sock).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(
        stream,
        "{{\"op\":\"verify\",\"id\":\"u1\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}}"
    )
    .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let fields = parse_flat_object(&line).unwrap();
    assert_eq!(fields["id"], JsonValue::Str("u1".to_string()));
    assert_eq!(fields["verdict"], JsonValue::Str("valid".to_string()));
    // Second connection: the verdict is now cached.
    let mut stream2 = UnixStream::connect(&sock).unwrap();
    let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
    writeln!(
        stream2,
        "{{\"op\":\"verify\",\"id\":\"u2\",\"text\":\"%q = add 0, %z\\n=>\\n%q = %z\"}}"
    )
    .unwrap();
    let mut line2 = String::new();
    reader2.read_line(&mut line2).unwrap();
    let fields2 = parse_flat_object(&line2).unwrap();
    assert_eq!(fields2["cached"], JsonValue::Bool(true));
    assert_eq!(fields["hash"], fields2["hash"]);
    // Close the first connection so its handler thread sees EOF — the
    // server joins connection threads on shutdown.
    drop(reader);
    drop(stream);
    // Shut the daemon down over the wire.
    writeln!(stream2, "{{\"op\":\"shutdown\",\"id\":\"u3\"}}").unwrap();
    let mut ack = String::new();
    reader2.read_line(&mut ack).unwrap();
    assert!(ack.contains("\"shutdown\":true"));
    handle.join().unwrap().unwrap();
    assert!(!sock.exists(), "socket file removed on shutdown");
}
