//! End-to-end telemetry tests: known-latency fake verifications shape
//! the stats-op percentiles, slow misses land in the slow-query log,
//! and a request id submitted over the wire is traceable down to its
//! verification spans.

use alive_ir::parse_transform;
use alive_serve::proto::{parse_response, Response};
use alive_serve::slowlog::read_slowlog;
use alive_serve::{handle_connection, ServeConfig, Server};
use alive_trace::{read_trace, JsonlSink, TraceStats, Tracer};
use alive_verifier::{DriverConfig, OutcomeKind, TransformOutcome, VerifyConfig};
use std::io::Cursor;
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("alive-telemetry-tests")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_config(store_path: PathBuf) -> ServeConfig {
    ServeConfig {
        driver: DriverConfig {
            verify: VerifyConfig::fast(),
            ..Default::default()
        },
        store_path,
        ..Default::default()
    }
}

/// Distinct canonical transforms: the constant varies.
fn transform(i: u64) -> alive_ir::Transform {
    parse_transform(&format!("%r = add %x, {i}\n=>\n%r = %x")).unwrap()
}

/// Fake verifications with known latencies must shape the telemetry:
/// the miss series sees every sleep, the percentile estimates bound the
/// injected latencies, and a hit lands in the hit series.
#[test]
fn known_latency_fakes_shape_the_percentiles() {
    let dir = temp_dir("latency");
    let (mut server, _) = Server::open(fast_config(dir.join("store.jsonl"))).unwrap();
    // Sleep the number of milliseconds encoded in the transform name.
    server.set_verifier(|name, _, _| {
        let ms: u64 = name.trim_start_matches("sleep").parse().unwrap();
        std::thread::sleep(Duration::from_millis(ms));
        TransformOutcome::synthetic(name, OutcomeKind::Valid, "valid".to_string())
    });
    let server = server;
    // Nine 5 ms misses and one 80 ms straggler.
    for i in 0..10u64 {
        let ms = if i == 9 { 80 } else { 5 };
        let a = server.check_rid(&format!("sleep{ms}"), &transform(i), "rq-test");
        assert!(!a.cached);
        assert!(
            a.timing.verify_us >= ms * 1_000,
            "verify span covers the sleep"
        );
    }
    // One hit: re-ask the first transform.
    let hit = server.check("sleep5", &transform(0));
    assert!(hit.cached);

    let tel = server.telemetry();
    assert_eq!(tel.miss.count, 10);
    assert_eq!(tel.hit.count, 1);
    // Every miss slept at least 5 ms; the log2 estimate is an upper
    // bound, so p50 must be >= the exact median (>= 5 ms).
    assert!(
        tel.miss.p50_us >= 5_000,
        "p50 {} too small",
        tel.miss.p50_us
    );
    assert!(
        tel.miss.p99_us >= 80_000,
        "p99 {} misses straggler",
        tel.miss.p99_us
    );
    assert!(tel.miss.max_us >= 80_000);
    // The estimate never exceeds the observed maximum.
    assert!(tel.miss.p99_us <= tel.miss.max_us);
    assert!(
        tel.hit.max_us < tel.miss.p50_us,
        "hits ({}) skip verification, misses ({}) sleep",
        tel.hit.max_us,
        tel.miss.p50_us
    );
    // All ten misses happened within the first window.
    assert_eq!(tel.miss.window_count, 10);
    assert!(tel.miss.rate_x1000 > 0);

    // The same numbers travel the wire as the proto-2 telemetry block.
    let mut out = Vec::new();
    handle_connection(
        &server,
        Cursor::new("{\"op\":\"stats\",\"id\":\"s\"}\n"),
        &mut out,
    )
    .unwrap();
    let line = String::from_utf8(out).unwrap();
    let Response::Stats(s) = parse_response(line.lines().next().unwrap()).unwrap() else {
        panic!("not a stats line: {line}");
    };
    assert_eq!(s.proto, 2);
    let block = s.telemetry.expect("proto-2 stats carries telemetry");
    assert_eq!(block.v, 1);
    assert_eq!(block.miss.count, 10);
    assert_eq!(block.miss.p50_us, tel.miss.p50_us);
    assert_eq!(block.miss.p99_us, tel.miss.p99_us);
    assert_eq!(block.hit.count, 1);
    assert_eq!(block.window_ms, tel.window_ms);
}

/// With `--slow-ms`, misses at or over the threshold append sealed
/// records to `<store>.slowlog`, readable and rankable afterwards.
#[test]
fn slow_misses_land_in_the_slowlog() {
    let dir = temp_dir("slowlog");
    let store = dir.join("store.jsonl");
    let mut config = fast_config(store.clone());
    config.slow_ms = Some(25);
    let (mut server, _) = Server::open(config).unwrap();
    server.set_verifier(|name, _, _| {
        // Synthetic outcomes with a chosen wall time: "fast" stays under
        // the 25 ms threshold, "slow" crosses it.
        let mut o = TransformOutcome::synthetic(name, OutcomeKind::Valid, "valid".to_string());
        o.wall = if name == "slow" {
            Duration::from_millis(40)
        } else {
            Duration::from_millis(1)
        };
        o.phases.solve = Duration::from_millis(30);
        o.conflicts = 7;
        o
    });
    let server = server;
    let fast = server.check_rid("fast", &transform(1), "rq-fast");
    let slow = server.check_rid("slow", &transform(2), "rq-slow");
    assert!(!fast.cached && !slow.cached);

    let mut slowlog_path = store.into_os_string();
    slowlog_path.push(".slowlog");
    let (records, skipped) = read_slowlog(&PathBuf::from(slowlog_path)).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(records.len(), 1, "only the over-threshold miss is logged");
    let r = &records[0];
    assert_eq!(r.rid, "rq-slow");
    assert_eq!(r.name, "slow");
    assert_eq!(r.hash, slow.hash);
    assert_eq!(r.verdict, "valid");
    assert_eq!(r.wall_ms, 40);
    assert_eq!(r.threshold_ms, 25);
    assert_eq!(r.solve_us, 30_000);
    assert_eq!(r.conflicts, 7);
    let offenders = alive_serve::slowlog::rank(&records);
    assert_eq!(offenders.len(), 1);
    assert_eq!(offenders[0].hash, slow.hash);
    assert_eq!(offenders[0].max_ms, 40);
}

/// A request id submitted over the wire is traceable: the daemon trace
/// contains a serve.request span tagged with the id, and
/// `TraceStats::for_request` reconstructs that one request's phase
/// breakdown (the `alive stats --request` path).
#[test]
fn request_id_threads_through_the_trace() {
    let dir = temp_dir("trace");
    let trace_path = dir.join("daemon.trace");
    let mut config = fast_config(dir.join("store.jsonl"));
    config.tracer = Tracer::new(Box::new(JsonlSink::create(&trace_path).unwrap()));
    let (server, _) = Server::open(config).unwrap();
    let requests = concat!(
        "{\"op\":\"verify\",\"id\":\"my-req\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}\n",
        "{\"op\":\"verify\",\"id\":\"other\",\"text\":\"%r = add %x, 1\\n=>\\n%r = %x\"}\n",
    );
    let mut out = Vec::new();
    handle_connection(&server, Cursor::new(requests), &mut out).unwrap();
    // The verdict line echoes the rid it was traced under.
    let line = String::from_utf8(out).unwrap();
    let Response::Verdict(v) = parse_response(line.lines().next().unwrap()).unwrap() else {
        panic!("not a verdict line: {line}");
    };
    assert_eq!(v.rid, "my-req");
    drop(server); // flush the trace file

    let events = read_trace(&trace_path).unwrap();
    let stats = TraceStats::for_request(&events, "my-req")
        .unwrap()
        .expect("request subtree found in the trace");
    let phases: Vec<&String> = stats.phases.keys().collect();
    assert!(
        stats.phases.contains_key("serve.request"),
        "phases: {phases:?}"
    );
    assert!(
        stats.phases.contains_key("serve.lookup"),
        "phases: {phases:?}"
    );
    // The verification ran on the connection thread, nested under the
    // request span — solver-level spans belong to this request.
    assert!(
        stats.phases.contains_key("sat.solve") || stats.phases.contains_key("encode"),
        "verification spans nest under the request: {phases:?}"
    );
    // One request's subtree only: the sibling request is excluded.
    let other = TraceStats::for_request(&events, "other").unwrap().unwrap();
    assert!(TraceStats::for_request(&events, "absent")
        .unwrap()
        .is_none());
    assert_ne!(stats.phases.len(), 0);
    assert_ne!(other.phases.len(), 0);
}

/// Daemon-minted request ids: a wire request without an id still gets a
/// traceable `rq-<n>` identity echoed on its verdict line.
#[test]
fn daemon_mints_request_ids_when_the_client_sends_none() {
    let dir = temp_dir("mint");
    let (server, _) = Server::open(fast_config(dir.join("store.jsonl"))).unwrap();
    let requests = concat!(
        "{\"op\":\"verify\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}\n",
        "{\"op\":\"verify\",\"text\":\"%r = add %x, 0\\n=>\\n%r = %x\"}\n",
    );
    let mut out = Vec::new();
    handle_connection(&server, Cursor::new(requests), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let rids: Vec<String> = text
        .lines()
        .map(|l| match parse_response(l).unwrap() {
            Response::Verdict(v) => v.rid,
            other => panic!("unexpected response: {other:?}"),
        })
        .collect();
    assert_eq!(rids, vec!["rq-1".to_string(), "rq-2".to_string()]);
}
