//! The retrying client half of the `alive serve` protocol.
//!
//! A daemon built for crash-only operation makes three promises the
//! client must exploit: every refusal is an explicit `busy` line with a
//! retry hint, every verdict is idempotent (re-asking a question the
//! store already answered costs microseconds), and a killed daemon's
//! socket closes rather than wedging. [`Client`] therefore treats every
//! failure the same way — drop the connection, back off with jitter,
//! reconnect, resubmit — bounded by [`ClientConfig::max_retries`].
//!
//! Backoff is exponential (`base_backoff * 2^attempt`, capped at
//! `max_backoff`) with a multiplicative jitter in `[0.5, 1.5)` from a
//! deterministic splitmix64 stream, so a fleet of clients created with
//! different seeds does not stampede a restarting daemon in lockstep.
//! A `busy` hint raises the floor: the client waits at least
//! `retry_after_ms`, jitter included.
//!
//! ```no_run
//! use alive_serve::client::{Client, ClientConfig};
//!
//! let mut client = Client::new(ClientConfig {
//!     socket: "/tmp/alive.sock".into(),
//!     ..ClientConfig::default()
//! });
//! let verdict = client.verify("%r = add %x, 0\n=>\n%r = %x").unwrap();
//! assert_eq!(verdict.verdict, "valid");
//! ```

use crate::proto::{json_escape, parse_response, Response, StatsLine, VerdictLine};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Settings for [`Client::new`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Path of the daemon's unix socket.
    pub socket: PathBuf,
    /// Retries after the first attempt before giving up (`Unavailable`).
    pub max_retries: u32,
    /// First backoff step; doubles every retry.
    pub base_backoff: Duration,
    /// Backoff ceiling (before jitter).
    pub max_backoff: Duration,
    /// Read timeout per response line; a daemon that answers nothing for
    /// this long counts as a connection failure and is retried.
    pub io_timeout: Duration,
    /// Jitter seed. Give every fleet member its own.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            socket: PathBuf::from("alive.sock"),
            max_retries: 8,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(120),
            seed: 0x5eed_a11e,
        }
    }
}

/// Why a client call gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Could not get an answer within `max_retries` (daemon down,
    /// perpetually busy, or answering garbage).
    Unavailable(String),
    /// The daemon answered with a request-level error (parse failure,
    /// invalid transform). Retrying would re-earn the same answer.
    Request(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unavailable(m) => write!(f, "server unavailable: {m}"),
            ClientError::Request(m) => write!(f, "request failed: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

struct Conn {
    reader: BufReader<std::os::unix::net::UnixStream>,
    writer: std::os::unix::net::UnixStream,
}

/// A reconnecting, backoff-retrying connection to one daemon socket.
pub struct Client {
    config: ClientConfig,
    conn: Option<Conn>,
    rng: u64,
    next_id: u64,
    retries: u64,
    busy_seen: u64,
    attempts: u64,
    backoff_total: Duration,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("socket", &self.config.socket)
            .field("connected", &self.conn.is_some())
            .field("retries", &self.retries)
            .finish()
    }
}

/// One round's outcome, before retry policy is applied.
enum Round<T> {
    Done(T),
    RequestError(String),
    Busy(u64),
    ConnFailed,
}

impl Client {
    /// Builds a client. No I/O happens until the first call — a daemon
    /// that is still starting up costs retries, not a constructor error.
    pub fn new(config: ClientConfig) -> Client {
        let rng = config.seed | 1;
        Client {
            config,
            conn: None,
            rng,
            next_id: 0,
            retries: 0,
            busy_seen: 0,
            attempts: 0,
            backoff_total: Duration::ZERO,
        }
    }

    /// Total reconnect/backoff retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total `busy` refusals absorbed so far.
    pub fn busy_seen(&self) -> u64 {
        self.busy_seen
    }

    /// Total request rounds attempted (first tries plus retries).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Total time spent sleeping in backoff, milliseconds.
    pub fn backoff_total_ms(&self) -> u64 {
        self.backoff_total.as_millis() as u64
    }

    /// Verifies one transform, retrying through `busy`, disconnects, and
    /// malformed responses.
    ///
    /// # Errors
    ///
    /// [`ClientError::Request`] for answers that would not change on
    /// retry; [`ClientError::Unavailable`] when retries run out.
    pub fn verify(&mut self, text: &str) -> Result<VerdictLine, ClientError> {
        let id = self.fresh_id();
        let request = format!(
            "{{\"op\":\"verify\",\"id\":\"{}\",\"text\":\"{}\"}}",
            json_escape(&id),
            json_escape(text)
        );
        self.with_retries(|client| {
            let round = client.round_trip(&request, |response, _: &mut ()| match response {
                Response::Verdict(v) => Some(Round::Done(v)),
                Response::Busy { retry_after_ms, .. } => Some(Round::Busy(retry_after_ms)),
                Response::Error { message, .. } => Some(Round::RequestError(message)),
                // Any other line here is protocol confusion: re-ask.
                _ => Some(Round::ConnFailed),
            });
            round.unwrap_or(Round::ConnFailed)
        })
    }

    /// Verifies every transform in a multi-transform text, returning
    /// verdicts in submission order. A mid-batch disconnect retries the
    /// whole batch — idempotent, and the repeats are store hits.
    ///
    /// # Errors
    ///
    /// As for [`Client::verify`].
    pub fn batch(&mut self, text: &str) -> Result<Vec<VerdictLine>, ClientError> {
        let id = self.fresh_id();
        let request = format!(
            "{{\"op\":\"batch\",\"id\":\"{}\",\"text\":\"{}\"}}",
            json_escape(&id),
            json_escape(text)
        );
        self.with_retries(|client| {
            client
                .round_trip(&request, |response, acc: &mut Vec<VerdictLine>| {
                    match response {
                        Response::Verdict(v) => {
                            acc.push(v);
                            None // keep reading until the done line
                        }
                        Response::Done { .. } => {
                            let mut out = std::mem::take(acc);
                            out.sort_by_key(|v| v.index);
                            Some(Round::Done(out))
                        }
                        Response::Busy { retry_after_ms, .. } => Some(Round::Busy(retry_after_ms)),
                        Response::Error { message, .. } => Some(Round::RequestError(message)),
                        _ => Some(Round::ConnFailed),
                    }
                })
                .unwrap_or(Round::ConnFailed)
        })
    }

    /// Fetches the daemon's counter snapshot.
    ///
    /// # Errors
    ///
    /// As for [`Client::verify`].
    pub fn stats(&mut self) -> Result<StatsLine, ClientError> {
        let id = self.fresh_id();
        let request = format!("{{\"op\":\"stats\",\"id\":\"{}\"}}", json_escape(&id));
        self.with_retries(|client| {
            let round = client.round_trip(&request, |response, _: &mut ()| match response {
                Response::Stats(s) => Some(Round::Done(*s)),
                Response::Busy { retry_after_ms, .. } => Some(Round::Busy(retry_after_ms)),
                Response::Error { message, .. } => Some(Round::RequestError(message)),
                _ => Some(Round::ConnFailed),
            });
            round.unwrap_or(Round::ConnFailed)
        })
    }

    /// Asks the daemon to shut down. One attempt, no retries: if the
    /// connection fails there is nothing left to stop.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unavailable`] when no daemon answered the socket.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        let request = format!("{{\"op\":\"shutdown\",\"id\":\"{}\"}}", json_escape(&id));
        match self.round_trip(&request, |response, _: &mut ()| match response {
            Response::Shutdown { .. } => Some(Round::Done(())),
            _ => Some(Round::ConnFailed),
        }) {
            Some(Round::Done(())) => Ok(()),
            _ => Err(ClientError::Unavailable(
                "no shutdown acknowledgement".to_string(),
            )),
        }
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("c{:x}-{}", self.config.seed & 0xffff, self.next_id)
    }

    /// Runs `attempt` until it yields a terminal outcome, applying the
    /// backoff policy between rounds.
    fn with_retries<T>(
        &mut self,
        mut attempt: impl FnMut(&mut Client) -> Round<T>,
    ) -> Result<T, ClientError> {
        let mut tries = 0u32;
        loop {
            self.attempts += 1;
            match attempt(self) {
                Round::Done(v) => return Ok(v),
                Round::RequestError(m) => return Err(ClientError::Request(m)),
                Round::Busy(hint_ms) => {
                    self.busy_seen += 1;
                    self.backoff(&mut tries, Some(hint_ms))?;
                }
                Round::ConnFailed => {
                    self.conn = None;
                    self.backoff(&mut tries, None)?;
                }
            }
        }
    }

    fn backoff(&mut self, tries: &mut u32, hint_ms: Option<u64>) -> Result<(), ClientError> {
        if *tries >= self.config.max_retries {
            return Err(ClientError::Unavailable(format!(
                "gave up after {} retries to {}",
                tries,
                self.config.socket.display()
            )));
        }
        let exp = self
            .config
            .base_backoff
            .saturating_mul(1u32 << (*tries).min(16));
        let jittered = exp.min(self.config.max_backoff).mul_f64(self.jitter());
        let wait = match hint_ms {
            Some(ms) => jittered.max(Duration::from_millis(ms)),
            None => jittered,
        };
        std::thread::sleep(wait);
        self.backoff_total += wait;
        *tries += 1;
        self.retries += 1;
        Ok(())
    }

    /// Multiplicative jitter in `[0.5, 1.5)` (splitmix64).
    fn jitter(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn connect(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = std::os::unix::net::UnixStream::connect(&self.config.socket)?;
            stream.set_read_timeout(Some(self.config.io_timeout))?;
            let writer = stream.try_clone()?;
            self.conn = Some(Conn {
                reader: BufReader::new(stream),
                writer,
            });
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends one request line and feeds response lines to `step` until it
    /// yields an outcome. `None` means the connection failed (connect,
    /// write, EOF, timeout, or an unparseable line).
    fn round_trip<T, A: Default>(
        &mut self,
        request: &str,
        mut step: impl FnMut(Response, &mut A) -> Option<Round<T>>,
    ) -> Option<Round<T>> {
        let scratch = &mut A::default();
        let conn = self.connect().ok()?;
        writeln!(conn.writer, "{request}").ok()?;
        conn.writer.flush().ok()?;
        loop {
            let mut line = String::new();
            match conn.reader.read_line(&mut line) {
                Ok(0) => return None, // daemon closed the connection
                Ok(_) => {}
                Err(_) => return None, // timeout or hard error
            }
            if line.trim().is_empty() {
                continue;
            }
            // A torn response line fails to parse: connection failure.
            let response = parse_response(line.trim_end()).ok()?;
            if let Some(outcome) = step(response, scratch) {
                return Some(outcome);
            }
        }
    }
}
