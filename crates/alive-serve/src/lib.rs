//! `alive serve` — verification as a long-running service.
//!
//! The paper's workflow is batch: hand Alive a file, wait ~1.5 s per
//! query, read the verdicts. A CI fleet auditing InstCombine patches
//! mostly re-submits transforms it has already seen. This crate turns the
//! verifier into a daemon that never proves the same optimization twice:
//!
//! * every request is **canonicalized** ([`alive_ir::canon`]) so naming,
//!   commutative operand order, and precondition shuffling all collapse
//!   to one identity;
//! * a persistent **content-addressed verdict store**
//!   ([`alive_verifier::store`]) answers repeats in microseconds;
//! * concurrent requests for the same uncached transform **coalesce** —
//!   one verification runs, every waiter gets its verdict;
//! * misses fall through to the real resilient driver
//!   ([`alive_verifier::verify_single`]) under the caller's budgets.
//!
//! Transports: a unix socket ([`serve_unix`]) for daemon use and
//! stdin/stdout ([`serve_stdio`]) for tests, CI, and pipelines. The wire
//! protocol is line-delimited JSON ([`proto`]).
//!
//! # Example
//!
//! ```
//! use alive_serve::{Server, ServeConfig};
//! use alive_verifier::{DriverConfig, VerifyConfig};
//!
//! let dir = std::env::temp_dir().join("alive-serve-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! std::fs::remove_file(dir.join("store.jsonl")).ok(); // fresh cache for the demo
//! let config = ServeConfig {
//!     driver: DriverConfig { verify: VerifyConfig::fast(), ..Default::default() },
//!     store_path: dir.join("store.jsonl"),
//!     ..Default::default()
//! };
//! let (server, _how) = Server::open(config).unwrap();
//!
//! let t = alive_ir::parse_transform("%r = add %x, 0\n=>\n%r = %x").unwrap();
//! let first = server.check("opt0", &t);
//! assert!(!first.cached);
//! // The alpha-renamed, operand-commuted variant is the same optimization.
//! let v = alive_ir::parse_transform("%q = add 0, %z\n=>\n%q = %z").unwrap();
//! let second = server.check("opt0-variant", &v);
//! assert!(second.cached);
//! assert_eq!(first.verdict, second.verdict);
//! # std::fs::remove_file(dir.join("store.jsonl")).ok();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod proto;

use alive_ir::canon::{canonical_text, fnv1a64};
use alive_ir::{parse_transforms, validate, Transform};
use alive_trace::{serve as metric, Tracer};
use alive_verifier::store::{StoreOpen, VerdictStore};
use alive_verifier::{verify_single, DriverConfig, OutcomeKind, TransformOutcome};
use proto::{render_done, render_error, render_shutdown, render_stats, Request, VerdictLine};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Settings for [`Server::open`].
#[derive(Debug)]
pub struct ServeConfig {
    /// Verifier settings for cache misses (budgets, retries, certificates).
    pub driver: DriverConfig,
    /// Path of the persistent verdict store.
    pub store_path: PathBuf,
    /// Eviction epoch: bump to distrust every cached verdict (toolchain
    /// change, config change you want re-proven, ...).
    pub epoch: u64,
    /// Worker threads for `batch` requests (0 = available parallelism).
    pub workers: usize,
    /// When set, certificates produced on a miss are written here as
    /// `<hash>.<k>.cert` and the verdict carries the reference.
    pub cert_dir: Option<PathBuf>,
    /// Metrics/trace destination (disabled by default).
    pub tracer: Tracer,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            driver: DriverConfig::default(),
            store_path: PathBuf::from("alive-store.jsonl"),
            epoch: 0,
            workers: 0,
            cert_dir: None,
            tracer: Tracer::disabled(),
        }
    }
}

/// A cached-or-fresh verdict for one request.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Canonical content hash, 16 lower-case hex digits.
    pub hash: String,
    /// Final classification.
    pub verdict: OutcomeKind,
    /// Verdict detail.
    pub reason: String,
    /// Wall milliseconds of the *original* verification (not this lookup).
    pub wall_ms: u64,
    /// Certificate reference, empty when none.
    pub cert: String,
    /// True when answered from the store.
    pub cached: bool,
    /// True when this request joined another's in-flight verification.
    pub coalesced: bool,
}

/// Counter snapshot ([`Server::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered from the store.
    pub hits: u64,
    /// Requests that ran a verification.
    pub misses: u64,
    /// Requests that joined an in-flight verification.
    pub joins: u64,
    /// Requests rejected before verification.
    pub errors: u64,
    /// Verifications in flight right now.
    pub inflight: usize,
    /// Clients currently parked on an in-flight verification.
    pub waiters: usize,
    /// Distinct verdicts in the store.
    pub stored: usize,
}

/// The result slot a coalesced waiter blocks on.
#[derive(Default)]
struct Inflight {
    slot: Mutex<Option<Answer>>,
    ready: Condvar,
    /// Clients parked on `ready` (observable progress for tests and the
    /// `stats` op — a condvar itself cannot be asked who is waiting).
    waiters: std::sync::atomic::AtomicUsize,
}

struct ServerInner {
    driver: DriverConfig,
    tracer: Tracer,
    store: Mutex<VerdictStore>,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    cert_dir: Option<PathBuf>,
    workers: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    joins: AtomicU64,
    errors: AtomicU64,
    stopping: AtomicBool,
    /// Test/embedding seam: the function that actually verifies a miss.
    /// Behind `RwLock<Arc<..>>` so it can be swapped on a shared server
    /// and called without holding any lock (the read guard only lives
    /// long enough to clone the `Arc`).
    verifier: std::sync::RwLock<Arc<VerifyFn>>,
}

type VerifyFn = dyn Fn(&str, &Transform, &DriverConfig) -> TransformOutcome + Send + Sync;

impl std::fmt::Debug for ServerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerInner")
            .field("driver", &self.driver)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

/// The verification service: shared verdict store, in-flight coalescing,
/// and the request handlers behind both transports. Cheap to clone
/// ([`Server`] is an `Arc` handle) — every connection thread holds one.
#[derive(Clone, Debug)]
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Opens the verdict store and builds the service. The store is bound
    /// to the driver's config fingerprint and `config.epoch`; a mismatch
    /// evicts stale verdicts (the returned [`StoreOpen`] says what
    /// happened, for logging).
    pub fn open(config: ServeConfig) -> std::io::Result<(Server, StoreOpen)> {
        let fingerprint = alive_verifier::config_fingerprint(&config.driver.verify);
        let description = alive_verifier::config_description(&config.driver.verify);
        let (store, how) = VerdictStore::open(
            &config.store_path,
            fingerprint,
            config.epoch,
            Some(&description),
        )?;
        if let Some(dir) = &config.cert_dir {
            std::fs::create_dir_all(dir)?;
        }
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.workers
        };
        Ok((
            Server {
                inner: Arc::new(ServerInner {
                    driver: config.driver,
                    tracer: config.tracer,
                    store: Mutex::new(store),
                    inflight: Mutex::new(HashMap::new()),
                    cert_dir: config.cert_dir,
                    workers,
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    joins: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                    stopping: AtomicBool::new(false),
                    verifier: std::sync::RwLock::new(Arc::new(
                        |name: &str, t: &Transform, driver: &DriverConfig| {
                            verify_single(name, t, driver)
                        },
                    )),
                }),
            },
            how,
        ))
    }

    /// Replaces the miss-path verification function. The default is the
    /// real [`verify_single`]; tests inject deterministic stand-ins (e.g.
    /// one that blocks until a second client joins).
    pub fn set_verifier(
        &mut self,
        f: impl Fn(&str, &Transform, &DriverConfig) -> TransformOutcome + Send + Sync + 'static,
    ) {
        *self
            .inner
            .verifier
            .write()
            .unwrap_or_else(|e| e.into_inner()) = Arc::new(f);
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        let inner = &self.inner;
        let (inflight, waiters) = {
            let map = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
            let waiters = map.values().map(|e| e.waiters.load(Ordering::SeqCst)).sum();
            (map.len(), waiters)
        };
        ServeStats {
            hits: inner.hits.load(Ordering::Relaxed),
            misses: inner.misses.load(Ordering::Relaxed),
            joins: inner.joins.load(Ordering::Relaxed),
            errors: inner.errors.load(Ordering::Relaxed),
            inflight,
            waiters,
            stored: inner.store.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }

    /// True once a `shutdown` request has been accepted.
    pub fn stopping(&self) -> bool {
        self.inner.stopping.load(Ordering::SeqCst)
    }

    /// Answers one transform: store hit, in-flight join, or fresh
    /// verification (in that order). This is the whole cache discipline —
    /// both transports and the `--dedupe` client reduce to calls of this.
    pub fn check(&self, name: &str, t: &Transform) -> Answer {
        let start = Instant::now();
        let inner = &self.inner;
        let canon = canonical_text(t);
        let hash = format!("{:016x}", fnv1a64(canon.as_bytes()));
        loop {
            // Fast path: the store already knows.
            {
                let store = inner.store.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(rec) = store.lookup(&canon) {
                    inner.hits.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::HIT, 1);
                    inner
                        .tracer
                        .sample(metric::HIT_US, start.elapsed().as_micros() as u64);
                    return Answer {
                        hash,
                        verdict: rec.verdict,
                        reason: rec.reason.clone(),
                        wall_ms: rec.wall_ms,
                        cert: rec.cert.clone(),
                        cached: true,
                        coalesced: false,
                    };
                }
            }
            // Not cached: become the leader for this canonical form, or
            // join whoever already is.
            let (entry, leader) = {
                let mut inflight = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
                match inflight.get(&canon) {
                    Some(e) => (Arc::clone(e), false),
                    None => {
                        let e = Arc::new(Inflight::default());
                        inflight.insert(canon.clone(), Arc::clone(&e));
                        inner.tracer.gauge(metric::INFLIGHT, inflight.len() as u64);
                        (e, true)
                    }
                }
            };
            if leader {
                // Double-check the store: between this request's store
                // miss and winning leadership, the previous leader may
                // have finished (verdict persisted, entry removed). Verify
                // again and the race test's "exactly one verification"
                // guarantee is gone.
                let cached = {
                    let store = inner.store.lock().unwrap_or_else(|e| e.into_inner());
                    store.lookup(&canon).map(|rec| Answer {
                        hash: hash.clone(),
                        verdict: rec.verdict,
                        reason: rec.reason.clone(),
                        wall_ms: rec.wall_ms,
                        cert: rec.cert.clone(),
                        cached: true,
                        coalesced: false,
                    })
                };
                let (answer, was_hit) = match cached {
                    Some(a) => (a, true),
                    None => (self.verify_and_store(name, t, &canon, &hash), false),
                };
                {
                    let mut slot = entry.slot.lock().unwrap_or_else(|e| e.into_inner());
                    *slot = Some(answer.clone());
                }
                entry.ready.notify_all();
                let mut inflight = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
                inflight.remove(&canon);
                inner.tracer.gauge(metric::INFLIGHT, inflight.len() as u64);
                drop(inflight);
                let us = start.elapsed().as_micros() as u64;
                if was_hit {
                    inner.hits.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::HIT, 1);
                    inner.tracer.sample(metric::HIT_US, us);
                } else {
                    inner.misses.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::MISS, 1);
                    inner.tracer.sample(metric::MISS_US, us);
                }
                return answer;
            }
            // Joiner: wait for the leader's verdict.
            entry.waiters.fetch_add(1, Ordering::SeqCst);
            let mut slot = entry.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(answer) = slot.clone() {
                    drop(slot);
                    entry.waiters.fetch_sub(1, Ordering::SeqCst);
                    inner.joins.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::JOIN, 1);
                    inner
                        .tracer
                        .sample(metric::HIT_US, start.elapsed().as_micros() as u64);
                    return Answer {
                        coalesced: true,
                        cached: true,
                        ..answer
                    };
                }
                let (guard, timeout) = entry
                    .ready
                    .wait_timeout(slot, Duration::from_secs(1))
                    .unwrap_or_else(|e| e.into_inner());
                slot = guard;
                if timeout.timed_out() && slot.is_none() {
                    // Leader vanished without filling the slot (should be
                    // impossible — verify_single isolates panics — but a
                    // service must not hang on "impossible"). Retry from
                    // the top: the store or a new leader will answer.
                    drop(slot);
                    entry.waiters.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
    }

    /// The miss path: verify, persist certificates, persist the verdict.
    fn verify_and_store(&self, name: &str, t: &Transform, canon: &str, hash: &str) -> Answer {
        let inner = &self.inner;
        let verifier = Arc::clone(&inner.verifier.read().unwrap_or_else(|e| e.into_inner()));
        let outcome = verifier(name, t, &inner.driver);
        let cert = match (&inner.cert_dir, outcome.certificates.is_empty()) {
            (Some(dir), false) => {
                let mut names = Vec::new();
                for (k, cert) in outcome.certificates.iter().enumerate() {
                    let file = dir.join(format!("{hash}.{k}.cert"));
                    if std::fs::write(&file, cert.to_text()).is_ok() {
                        names.push(format!("{hash}.{k}.cert"));
                    }
                }
                names.join(";")
            }
            _ => String::new(),
        };
        let wall_ms = outcome.wall.as_millis() as u64;
        {
            let mut store = inner.store.lock().unwrap_or_else(|e| e.into_inner());
            // A failed append leaves the verdict un-persisted but still
            // correct for this request; the next daemon start re-verifies.
            let _ = store.insert(canon, outcome.kind, &outcome.detail, wall_ms, &cert);
        }
        Answer {
            hash: hash.to_string(),
            verdict: outcome.kind,
            reason: outcome.detail,
            wall_ms,
            cert,
            cached: false,
            coalesced: false,
        }
    }

    /// Parses `text` and answers every transform in it, returning one
    /// [`VerdictLine`] per transform in submission order. Misses are
    /// verified on up to `workers` threads; duplicates within the batch
    /// coalesce through the in-flight map like concurrent clients would.
    pub fn check_batch(&self, id: &str, text: &str) -> Result<Vec<VerdictLine>, String> {
        let transforms = parse_transforms(text).map_err(|e| format!("parse error: {e}"))?;
        let mut items: Vec<(usize, String, Transform)> = Vec::new();
        for (i, t) in transforms.into_iter().enumerate() {
            validate(&t).map_err(|e| format!("transform {i}: {e}"))?;
            let name = t.name.clone().unwrap_or_else(|| format!("opt{i}"));
            items.push((i, name, t));
        }
        let results: Mutex<Vec<Option<VerdictLine>>> = Mutex::new(vec![None; items.len()]);
        let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.inner.workers.min(items.len().max(1)) {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some((index, name, t)) = items.get(k) else {
                        return;
                    };
                    let start = Instant::now();
                    let answer = self.check(name, t);
                    let line = VerdictLine {
                        id: id.to_string(),
                        index: *index,
                        name: name.clone(),
                        hash: answer.hash,
                        verdict: answer.verdict.as_str().to_string(),
                        cached: answer.cached,
                        coalesced: answer.coalesced,
                        reason: answer.reason,
                        wall_us: start.elapsed().as_micros() as u64,
                        cert: answer.cert,
                    };
                    results.lock().unwrap_or_else(|e| e.into_inner())[k] = Some(line);
                });
            }
        });
        Ok(results
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|r| r.expect("every batch item produces a line"))
            .collect())
    }

    /// Handles one request line, writing response line(s) to `out`.
    /// Returns `false` when the connection should close (shutdown).
    pub fn handle_line(&self, line: &str, out: &mut impl Write) -> std::io::Result<bool> {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.inner.errors.fetch_add(1, Ordering::Relaxed);
                self.inner.tracer.counter(metric::ERROR, 1);
                writeln!(out, "{}", render_error("", &e))?;
                return Ok(true);
            }
        };
        match request {
            Request::Verify { id, text } => {
                let start = Instant::now();
                let parsed = parse_transforms(&text)
                    .map_err(|e| format!("parse error: {e}"))
                    .and_then(|ts| match ts.len() {
                        1 => Ok(ts.into_iter().next().unwrap()),
                        n => Err(format!("expected exactly one transform, got {n}")),
                    })
                    .and_then(|t| {
                        validate(&t).map_err(|e| e.to_string())?;
                        Ok(t)
                    });
                match parsed {
                    Ok(t) => {
                        let name = t.name.clone().unwrap_or_else(|| "opt0".to_string());
                        let answer = self.check(&name, &t);
                        let lineout = VerdictLine {
                            id,
                            index: 0,
                            name,
                            hash: answer.hash,
                            verdict: answer.verdict.as_str().to_string(),
                            cached: answer.cached,
                            coalesced: answer.coalesced,
                            reason: answer.reason,
                            wall_us: start.elapsed().as_micros() as u64,
                            cert: answer.cert,
                        };
                        writeln!(out, "{}", lineout.render())?;
                    }
                    Err(e) => {
                        self.inner.errors.fetch_add(1, Ordering::Relaxed);
                        self.inner.tracer.counter(metric::ERROR, 1);
                        writeln!(out, "{}", render_error(&id, &e))?;
                    }
                }
                Ok(true)
            }
            Request::Batch { id, text } => {
                match self.check_batch(&id, &text) {
                    Ok(lines) => {
                        let hits = lines.iter().filter(|l| l.cached).count();
                        let misses = lines.len() - hits;
                        for l in &lines {
                            writeln!(out, "{}", l.render())?;
                        }
                        writeln!(out, "{}", render_done(&id, lines.len(), hits, misses))?;
                    }
                    Err(e) => {
                        self.inner.errors.fetch_add(1, Ordering::Relaxed);
                        self.inner.tracer.counter(metric::ERROR, 1);
                        writeln!(out, "{}", render_error(&id, &e))?;
                    }
                }
                Ok(true)
            }
            Request::Stats { id } => {
                let s = self.stats();
                writeln!(
                    out,
                    "{}",
                    render_stats(&id, s.hits, s.misses, s.joins, s.errors, s.inflight, s.stored)
                )?;
                Ok(true)
            }
            Request::Shutdown { id } => {
                self.inner.stopping.store(true, Ordering::SeqCst);
                writeln!(out, "{}", render_shutdown(&id))?;
                Ok(false)
            }
        }
    }
}

/// Runs one connection to completion: request lines in, response lines
/// out, flushed per request so pipelined clients see answers promptly.
pub fn handle_connection(
    server: &Server,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let keep_going = server.handle_line(&line, &mut writer)?;
        writer.flush()?;
        if !keep_going {
            break;
        }
    }
    Ok(())
}

/// Serves requests from stdin to stdout until EOF or `shutdown` (the
/// test/pipeline transport: `alive serve --stdio`).
pub fn serve_stdio(server: &Server) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    handle_connection(server, stdin.lock(), stdout.lock())
}

/// Binds a unix socket at `path` and serves until a `shutdown` request.
/// Each connection gets its own thread; they all share the server's
/// store and in-flight map, so clients racing on one transform coalesce.
#[cfg(unix)]
pub fn serve_unix(server: &Server, path: &std::path::Path) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a dead daemon would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let mut threads = Vec::new();
    while !server.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let server = server.clone();
                threads.push(std::thread::spawn(move || {
                    let reader = std::io::BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    let _ = handle_connection(&server, reader, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for t in threads {
        let _ = t.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
