//! `alive serve` — verification as a long-running service.
//!
//! The paper's workflow is batch: hand Alive a file, wait ~1.5 s per
//! query, read the verdicts. A CI fleet auditing InstCombine patches
//! mostly re-submits transforms it has already seen. This crate turns the
//! verifier into a daemon that never proves the same optimization twice:
//!
//! * every request is **canonicalized** ([`alive_ir::canon`]) so naming,
//!   commutative operand order, and precondition shuffling all collapse
//!   to one identity;
//! * a persistent **content-addressed verdict store**
//!   ([`alive_verifier::store`]) answers repeats in microseconds;
//! * concurrent requests for the same uncached transform **coalesce** —
//!   one verification runs, every waiter gets its verdict;
//! * misses fall through to the real resilient driver
//!   ([`alive_verifier::verify_single`]) under the caller's budgets.
//!
//! Transports: a unix socket ([`serve_unix`]) for daemon use and
//! stdin/stdout ([`serve_stdio`]) for tests, CI, and pipelines. The wire
//! protocol is line-delimited JSON ([`proto`]); [`client`] is the
//! retrying client half.
//!
//! The daemon is **crash-only and overload-safe** ([`ServeLimits`]):
//! past `max_connections` or `queue_depth` it answers a structured
//! `busy` refusal instead of queueing unbounded work, silent connections
//! are closed after an idle timeout, every miss runs under a per-request
//! deadline, and shutdown drains in-flight requests before force-closing.
//! The store beneath it takes a single-writer lock and refuses corrupt
//! state rather than guessing (see `alive_verifier::store`).
//!
//! # Example
//!
//! ```
//! use alive_serve::{Server, ServeConfig};
//! use alive_verifier::{DriverConfig, VerifyConfig};
//!
//! let dir = std::env::temp_dir().join("alive-serve-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! std::fs::remove_file(dir.join("store.jsonl")).ok(); // fresh cache for the demo
//! let config = ServeConfig {
//!     driver: DriverConfig { verify: VerifyConfig::fast(), ..Default::default() },
//!     store_path: dir.join("store.jsonl"),
//!     ..Default::default()
//! };
//! let (server, _how) = Server::open(config).unwrap();
//!
//! let t = alive_ir::parse_transform("%r = add %x, 0\n=>\n%r = %x").unwrap();
//! let first = server.check("opt0", &t);
//! assert!(!first.cached);
//! // The alpha-renamed, operand-commuted variant is the same optimization.
//! let v = alive_ir::parse_transform("%q = add 0, %z\n=>\n%q = %z").unwrap();
//! let second = server.check("opt0-variant", &v);
//! assert!(second.cached);
//! assert_eq!(first.verdict, second.verdict);
//! # std::fs::remove_file(dir.join("store.jsonl")).ok();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(unix)]
pub mod client;
pub mod proto;
pub mod slowlog;

/// The shared durable-I/O seam (re-exported from `alive-verifier`): every
/// artifact the daemon persists — store, slowlog, journal — writes through
/// it, and the crash-point torture harness counts its operations.
pub use alive_verifier::durable;

use alive_ir::canon::{canonical_text, fnv1a64};
use alive_ir::{parse_transforms, validate, Transform};
use alive_trace::{serve as metric, Telemetry, Tracer};
use alive_verifier::store::{needs_compaction, CompactReport, StoreOpen, VerdictStore};
use alive_verifier::{verify_single, DriverConfig, OutcomeKind, TransformOutcome};
use proto::{
    render_busy, render_done, render_error, render_shutdown, Request, StatsLine, VerdictLine,
    PROTO_VERSION,
};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Overload and lifecycle limits for the daemon. Zero disables a cap;
/// the defaults are deliberately finite — a daemon that accepts
/// unbounded work does not degrade, it falls over.
#[derive(Clone, Debug)]
pub struct ServeLimits {
    /// Concurrent socket connections; one past the cap is answered with
    /// a `busy` line and closed (`serve.shed`). 0 = unlimited.
    pub max_connections: usize,
    /// In-flight verifications; a request that would *start* one past
    /// the cap is refused `busy` (`serve.busy`). Store hits and joins to
    /// an existing in-flight run cost no worker and are always admitted.
    /// 0 = unlimited.
    pub queue_depth: usize,
    /// Deadline for each miss verification, applied when the driver has
    /// no timeout of its own, so one pathological transform cannot
    /// monopolize a worker forever.
    pub request_timeout: Option<Duration>,
    /// How long a graceful shutdown waits for in-flight connections
    /// before cancelling their verifications and force-closing.
    pub drain_timeout: Duration,
    /// Close a socket connection that sends nothing for this long
    /// (`serve.idle_close` — the slow-loris defense). Zero disables.
    pub idle_timeout: Duration,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_connections: 256,
            queue_depth: 64,
            request_timeout: Some(Duration::from_secs(60)),
            drain_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
        }
    }
}

/// Settings for [`Server::open`].
#[derive(Debug)]
pub struct ServeConfig {
    /// Verifier settings for cache misses (budgets, retries, certificates).
    pub driver: DriverConfig,
    /// Path of the persistent verdict store.
    pub store_path: PathBuf,
    /// Eviction epoch: bump to distrust every cached verdict (toolchain
    /// change, config change you want re-proven, ...).
    pub epoch: u64,
    /// Worker threads for `batch` requests (0 = available parallelism).
    pub workers: usize,
    /// When set, certificates produced on a miss are written here as
    /// `<hash>.<k>.cert` and the verdict carries the reference.
    pub cert_dir: Option<PathBuf>,
    /// Metrics/trace destination (disabled by default).
    pub tracer: Tracer,
    /// Overload and lifecycle limits.
    pub limits: ServeLimits,
    /// Slow-query log threshold: a miss whose verification takes at
    /// least this many milliseconds appends a sealed record to
    /// `<store_path>.slowlog` (0 logs every miss). `None` disables the
    /// log entirely.
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            driver: DriverConfig::default(),
            store_path: PathBuf::from("alive-store.jsonl"),
            epoch: 0,
            workers: 0,
            cert_dir: None,
            tracer: Tracer::disabled(),
            limits: ServeLimits::default(),
            slow_ms: None,
        }
    }
}

/// Admission refusal from [`Server::try_check`]: the verification queue
/// is at [`ServeLimits::queue_depth`], and taking more work would only
/// grow latency for everyone already in line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Hint: wait at least this long (plus jitter) before retrying.
    pub retry_after_ms: u64,
}

/// Server-side phase timings for one request, echoed on proto-2
/// verdict lines so a client can see where its latency went without a
/// trace file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// Canonicalization + hashing, microseconds.
    pub canon_us: u64,
    /// Verdict-store lookups (all attempts), microseconds.
    pub lookup_us: u64,
    /// Wait before verification started (leader) or the joined verdict
    /// arrived (follower), microseconds.
    pub queue_us: u64,
    /// Verification paid by this request (0 on hits and joins),
    /// microseconds.
    pub verify_us: u64,
}

/// A cached-or-fresh verdict for one request.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Canonical content hash, 16 lower-case hex digits.
    pub hash: String,
    /// Final classification.
    pub verdict: OutcomeKind,
    /// Verdict detail.
    pub reason: String,
    /// Wall milliseconds of the *original* verification (not this lookup).
    pub wall_ms: u64,
    /// Certificate reference, empty when none.
    pub cert: String,
    /// True when answered from the store.
    pub cached: bool,
    /// True when this request joined another's in-flight verification.
    pub coalesced: bool,
    /// Where this request's latency went.
    pub timing: RequestTiming,
}

/// Counter snapshot ([`Server::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered from the store.
    pub hits: u64,
    /// Requests that ran a verification.
    pub misses: u64,
    /// Requests that joined an in-flight verification.
    pub joins: u64,
    /// Requests rejected before verification.
    pub errors: u64,
    /// Requests refused `busy` at the verification queue.
    pub busy: u64,
    /// Connections shed at the connection cap.
    pub shed: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Verifications in flight right now.
    pub inflight: usize,
    /// Clients currently parked on an in-flight verification.
    pub waiters: usize,
    /// Distinct verdicts in the store.
    pub stored: usize,
    /// Socket connections open right now.
    pub connections: usize,
    /// Milliseconds since the server opened.
    pub uptime_ms: u64,
}

/// The result slot a coalesced waiter blocks on.
#[derive(Default)]
struct Inflight {
    slot: Mutex<Option<Answer>>,
    ready: Condvar,
    /// Clients parked on `ready` (observable progress for tests and the
    /// `stats` op — a condvar itself cannot be asked who is waiting).
    waiters: std::sync::atomic::AtomicUsize,
}

struct ServerInner {
    driver: DriverConfig,
    tracer: Tracer,
    /// Windowed latency registry: always on (recording is a few relaxed
    /// atomic adds), feeds the proto-2 `telemetry` stats block.
    telemetry: Telemetry,
    store: Mutex<VerdictStore>,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    cert_dir: Option<PathBuf>,
    workers: usize,
    limits: ServeLimits,
    started: Instant,
    /// Mints `rq-<n>` request ids for clients that send an empty `id`.
    next_rid: AtomicU64,
    /// The slow-query log and its threshold, when `slow_ms` was set.
    slowlog: Option<(Mutex<slowlog::SlowLog>, u64)>,
    /// What the automatic open-time compaction did, if it ran (for the
    /// startup banner; `None` when the store was below threshold).
    compaction: Option<CompactReport>,
    hits: AtomicU64,
    misses: AtomicU64,
    joins: AtomicU64,
    errors: AtomicU64,
    busy: AtomicU64,
    shed: AtomicU64,
    idle_closed: AtomicU64,
    /// Socket connections currently open (owned by `serve_unix`).
    connections: AtomicUsize,
    stopping: AtomicBool,
    /// Test/embedding seam: the function that actually verifies a miss.
    /// Behind `RwLock<Arc<..>>` so it can be swapped on a shared server
    /// and called without holding any lock (the read guard only lives
    /// long enough to clone the `Arc`).
    verifier: std::sync::RwLock<Arc<VerifyFn>>,
}

type VerifyFn = dyn Fn(&str, &Transform, &DriverConfig) -> TransformOutcome + Send + Sync;

impl std::fmt::Debug for ServerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerInner")
            .field("driver", &self.driver)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

/// The verification service: shared verdict store, in-flight coalescing,
/// and the request handlers behind both transports. Cheap to clone
/// ([`Server`] is an `Arc` handle) — every connection thread holds one.
#[derive(Clone, Debug)]
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Opens the verdict store and builds the service. The store is bound
    /// to the driver's config fingerprint and `config.epoch`; a mismatch
    /// evicts stale verdicts (the returned [`StoreOpen`] says what
    /// happened, for logging).
    pub fn open(config: ServeConfig) -> std::io::Result<(Server, StoreOpen)> {
        let fingerprint = alive_verifier::config_fingerprint(&config.driver.verify);
        let description = alive_verifier::config_description(&config.driver.verify);
        let (mut store, how) = VerdictStore::open(
            &config.store_path,
            fingerprint,
            config.epoch,
            Some(&description),
        )?;
        // A store that is mostly dead records (superseded re-verifications)
        // pays replay cost forever; compact it now, while no request is in
        // flight. Failure is tolerated — the uncompacted store is still
        // correct — but a failure that poisoned the write handle will
        // surface on the first insert, which is the honest place for it.
        let compaction = if needs_compaction(store.replayed(), store.len()) {
            store.compact().ok()
        } else {
            None
        };
        if let Some(dir) = &config.cert_dir {
            std::fs::create_dir_all(dir)?;
        }
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.workers
        };
        if let StoreOpen::Loaded { discarded, .. } = &how {
            if *discarded > 0 {
                config
                    .tracer
                    .counter(metric::QUARANTINED, *discarded as u64);
            }
        }
        let slowlog = match config.slow_ms {
            Some(threshold) => {
                let mut path = config.store_path.as_os_str().to_owned();
                path.push(".slowlog");
                let log = slowlog::SlowLog::open(&PathBuf::from(path), 0)?;
                Some((Mutex::new(log), threshold))
            }
            None => None,
        };
        Ok((
            Server {
                inner: Arc::new(ServerInner {
                    driver: config.driver,
                    tracer: config.tracer,
                    telemetry: Telemetry::default(),
                    store: Mutex::new(store),
                    inflight: Mutex::new(HashMap::new()),
                    cert_dir: config.cert_dir,
                    workers,
                    limits: config.limits,
                    started: Instant::now(),
                    next_rid: AtomicU64::new(0),
                    slowlog,
                    compaction,
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    joins: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                    busy: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                    idle_closed: AtomicU64::new(0),
                    connections: AtomicUsize::new(0),
                    stopping: AtomicBool::new(false),
                    verifier: std::sync::RwLock::new(Arc::new(
                        |name: &str, t: &Transform, driver: &DriverConfig| {
                            verify_single(name, t, driver)
                        },
                    )),
                }),
            },
            how,
        ))
    }

    /// What the automatic open-time compaction did, if it ran: `None`
    /// when the store's dead-record ratio was below threshold (or the
    /// rewrite failed and the store was kept as-is).
    pub fn compaction(&self) -> Option<&CompactReport> {
        self.inner.compaction.as_ref()
    }

    /// Replaces the miss-path verification function. The default is the
    /// real [`verify_single`]; tests inject deterministic stand-ins (e.g.
    /// one that blocks until a second client joins).
    pub fn set_verifier(
        &mut self,
        f: impl Fn(&str, &Transform, &DriverConfig) -> TransformOutcome + Send + Sync + 'static,
    ) {
        *self
            .inner
            .verifier
            .write()
            .unwrap_or_else(|e| e.into_inner()) = Arc::new(f);
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        let inner = &self.inner;
        let (inflight, waiters) = {
            let map = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
            let waiters = map.values().map(|e| e.waiters.load(Ordering::SeqCst)).sum();
            (map.len(), waiters)
        };
        ServeStats {
            hits: inner.hits.load(Ordering::Relaxed),
            misses: inner.misses.load(Ordering::Relaxed),
            joins: inner.joins.load(Ordering::Relaxed),
            errors: inner.errors.load(Ordering::Relaxed),
            busy: inner.busy.load(Ordering::Relaxed),
            shed: inner.shed.load(Ordering::Relaxed),
            idle_closed: inner.idle_closed.load(Ordering::Relaxed),
            inflight,
            waiters,
            stored: inner.store.lock().unwrap_or_else(|e| e.into_inner()).len(),
            connections: inner.connections.load(Ordering::SeqCst),
            uptime_ms: inner.started.elapsed().as_millis() as u64,
        }
    }

    /// True once a `shutdown` request has been accepted.
    pub fn stopping(&self) -> bool {
        self.inner.stopping.load(Ordering::SeqCst)
    }

    /// Begins a graceful shutdown: transports stop accepting, idle
    /// connections close on their next read tick, and [`serve_unix`]
    /// enters its drain. The signal handlers' entry point — equivalent to
    /// a `shutdown` wire request, minus the acknowledgement line.
    pub fn begin_stop(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
    }

    /// Cancels every in-flight verification through the driver's shared
    /// cancel token. The force-close half of drain: cooperative
    /// cancellation points in the solvers unwind the work within
    /// milliseconds, and waiters get their (cancelled) verdicts instead
    /// of hanging.
    pub fn cancel_inflight(&self) {
        self.inner.driver.cancel.cancel();
    }

    /// The overload and lifecycle limits this server runs under.
    pub fn limits(&self) -> &ServeLimits {
        &self.inner.limits
    }

    /// Answers one transform: store hit, in-flight join, or fresh
    /// verification (in that order). This is the whole cache discipline —
    /// both transports and the `--dedupe` client reduce to calls of this.
    ///
    /// Embedding API: never refuses. The daemon transports go through
    /// [`Server::try_check`], which applies admission control.
    pub fn check(&self, name: &str, t: &Transform) -> Answer {
        self.check_rid(name, t, "")
    }

    /// [`Server::check`] with an explicit request id, recorded on any
    /// slow-query log entry this request produces.
    pub fn check_rid(&self, name: &str, t: &Transform, rid: &str) -> Answer {
        self.check_admit(name, t, false, rid)
            .unwrap_or_else(|_| unreachable!("check() never applies admission control"))
    }

    /// Like [`Server::check`], but refuses with [`Busy`] when the request
    /// would *start* a verification past [`ServeLimits::queue_depth`].
    /// Hits and joins are always admitted — they cost no worker.
    pub fn try_check(&self, name: &str, t: &Transform) -> Result<Answer, Busy> {
        self.check_admit(name, t, true, "")
    }

    /// [`Server::try_check`] with an explicit request id.
    pub fn try_check_rid(&self, name: &str, t: &Transform, rid: &str) -> Result<Answer, Busy> {
        self.check_admit(name, t, true, rid)
    }

    /// The request id for one wire request: the client's `id` when it
    /// sent one, otherwise a daemon-minted `rq-<n>` — every request is
    /// traceable either way.
    fn mint_rid(&self, id: &str) -> String {
        if id.is_empty() {
            format!(
                "rq-{}",
                self.inner.next_rid.fetch_add(1, Ordering::Relaxed) + 1
            )
        } else {
            id.to_string()
        }
    }

    /// A point-in-time snapshot of the windowed latency telemetry (what
    /// the `stats` wire op reports as the `telemetry` block).
    pub fn telemetry(&self) -> alive_trace::TelemetrySnapshot {
        self.inner.telemetry.snapshot()
    }

    fn check_admit(
        &self,
        name: &str,
        t: &Transform,
        admit: bool,
        rid: &str,
    ) -> Result<Answer, Busy> {
        let start = Instant::now();
        let inner = &self.inner;
        let canon = canonical_text(t);
        let hash = format!("{:016x}", fnv1a64(canon.as_bytes()));
        let canon_us = start.elapsed().as_micros() as u64;
        inner.tracer.sample(metric::CANON_US, canon_us);
        inner
            .telemetry
            .canon
            .record_at(canon_us, inner.telemetry.now_ms());
        let mut timing = RequestTiming {
            canon_us,
            ..RequestTiming::default()
        };
        loop {
            // Fast path: the store already knows.
            {
                let lookup_start = Instant::now();
                let _lookup_span = inner.tracer.span(metric::LOOKUP);
                let store = inner.store.lock().unwrap_or_else(|e| e.into_inner());
                let found = store.lookup(&canon).map(|rec| Answer {
                    hash: hash.clone(),
                    verdict: rec.verdict,
                    reason: rec.reason.clone(),
                    wall_ms: rec.wall_ms,
                    cert: rec.cert.clone(),
                    cached: true,
                    coalesced: false,
                    timing: RequestTiming::default(),
                });
                drop(store);
                timing.lookup_us += lookup_start.elapsed().as_micros() as u64;
                if let Some(mut answer) = found {
                    let us = start.elapsed().as_micros() as u64;
                    inner.hits.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::HIT, 1);
                    inner.tracer.sample(metric::HIT_US, us);
                    inner.telemetry.hit.record_at(us, inner.telemetry.now_ms());
                    answer.timing = timing;
                    return Ok(answer);
                }
            }
            // Not cached: become the leader for this canonical form, or
            // join whoever already is.
            let (entry, leader) = {
                let mut inflight = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
                match inflight.get(&canon) {
                    Some(e) => (Arc::clone(e), false),
                    None => {
                        let depth = inner.limits.queue_depth;
                        if admit && depth != 0 && inflight.len() >= depth {
                            // Taking the work would start verification
                            // number depth+1; refuse with a hint scaled
                            // to the queue we would have joined.
                            drop(inflight);
                            inner.busy.fetch_add(1, Ordering::Relaxed);
                            inner.tracer.counter(metric::BUSY, 1);
                            return Err(Busy {
                                retry_after_ms: (depth as u64 * 250).clamp(100, 5_000),
                            });
                        }
                        let e = Arc::new(Inflight::default());
                        inflight.insert(canon.clone(), Arc::clone(&e));
                        inner.tracer.gauge(metric::INFLIGHT, inflight.len() as u64);
                        (e, true)
                    }
                }
            };
            if leader {
                // Double-check the store: between this request's store
                // miss and winning leadership, the previous leader may
                // have finished (verdict persisted, entry removed). Verify
                // again and the race test's "exactly one verification"
                // guarantee is gone.
                let lookup_start = Instant::now();
                let cached = {
                    let _lookup_span = inner.tracer.span(metric::LOOKUP);
                    let store = inner.store.lock().unwrap_or_else(|e| e.into_inner());
                    store.lookup(&canon).map(|rec| Answer {
                        hash: hash.clone(),
                        verdict: rec.verdict,
                        reason: rec.reason.clone(),
                        wall_ms: rec.wall_ms,
                        cert: rec.cert.clone(),
                        cached: true,
                        coalesced: false,
                        timing: RequestTiming::default(),
                    })
                };
                timing.lookup_us += lookup_start.elapsed().as_micros() as u64;
                // Everything before the verification starts is queue time
                // from this request's point of view.
                let queue_us = start.elapsed().as_micros() as u64;
                timing.queue_us = queue_us;
                inner.tracer.sample(metric::QUEUE_WAIT_US, queue_us);
                inner
                    .telemetry
                    .queue_wait
                    .record_at(queue_us, inner.telemetry.now_ms());
                let (answer, was_hit) = match cached {
                    Some(a) => (a, true),
                    None => {
                        let verify_start = Instant::now();
                        let a = self.verify_and_store(name, t, &canon, &hash, rid);
                        timing.verify_us = verify_start.elapsed().as_micros() as u64;
                        (a, false)
                    }
                };
                {
                    let mut slot = entry.slot.lock().unwrap_or_else(|e| e.into_inner());
                    *slot = Some(answer.clone());
                }
                entry.ready.notify_all();
                let mut inflight = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
                inflight.remove(&canon);
                inner.tracer.gauge(metric::INFLIGHT, inflight.len() as u64);
                drop(inflight);
                let us = start.elapsed().as_micros() as u64;
                if was_hit {
                    inner.hits.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::HIT, 1);
                    inner.tracer.sample(metric::HIT_US, us);
                    inner.telemetry.hit.record_at(us, inner.telemetry.now_ms());
                } else {
                    inner.misses.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::MISS, 1);
                    inner.tracer.sample(metric::MISS_US, us);
                    inner.telemetry.miss.record_at(us, inner.telemetry.now_ms());
                }
                return Ok(Answer { timing, ..answer });
            }
            // Joiner: wait for the leader's verdict.
            let coalesce_start = Instant::now();
            let coalesce_span = inner.tracer.span(metric::COALESCE);
            entry.waiters.fetch_add(1, Ordering::SeqCst);
            let mut slot = entry.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(answer) = slot.clone() {
                    drop(slot);
                    drop(coalesce_span);
                    entry.waiters.fetch_sub(1, Ordering::SeqCst);
                    let queue_us = coalesce_start.elapsed().as_micros() as u64;
                    timing.queue_us += queue_us;
                    let us = start.elapsed().as_micros() as u64;
                    inner.joins.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::JOIN, 1);
                    inner.tracer.sample(metric::HIT_US, us);
                    inner.tracer.sample(metric::JOIN_US, us);
                    inner.tracer.sample(metric::QUEUE_WAIT_US, queue_us);
                    let now = inner.telemetry.now_ms();
                    inner.telemetry.join.record_at(us, now);
                    inner.telemetry.queue_wait.record_at(queue_us, now);
                    return Ok(Answer {
                        coalesced: true,
                        cached: true,
                        timing,
                        ..answer
                    });
                }
                let (guard, timeout) = entry
                    .ready
                    .wait_timeout(slot, Duration::from_secs(1))
                    .unwrap_or_else(|e| e.into_inner());
                slot = guard;
                if timeout.timed_out() && slot.is_none() {
                    // Leader vanished without filling the slot (should be
                    // impossible — verify_single isolates panics — but a
                    // service must not hang on "impossible"). Retry from
                    // the top: the store or a new leader will answer.
                    drop(slot);
                    entry.waiters.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
    }

    /// The miss path: verify, persist certificates, persist the verdict.
    /// Misses at or above the configured `--slow-ms` threshold also
    /// append a record to the slow-query log.
    fn verify_and_store(
        &self,
        name: &str,
        t: &Transform,
        canon: &str,
        hash: &str,
        rid: &str,
    ) -> Answer {
        let inner = &self.inner;
        let verifier = Arc::clone(&inner.verifier.read().unwrap_or_else(|e| e.into_inner()));
        // Per-request deadline: a driver with no timeout of its own runs
        // under the serve limit, so one pathological transform times out
        // (an honest `unknown`) instead of monopolizing a worker.
        let mut driver = inner.driver.clone();
        if driver.timeout.is_none() {
            driver.timeout = inner.limits.request_timeout;
        }
        // Thread the daemon's tracer into the verifier so solver spans
        // (typeck/encode/sat.solve) nest under this request's
        // serve.request span — unless the driver brought its own.
        if !driver.verify.ef.tracer.enabled() {
            driver.verify.ef.tracer = inner.tracer.clone();
        }
        let outcome = verifier(name, t, &driver);
        let cert = match (&inner.cert_dir, outcome.certificates.is_empty()) {
            (Some(dir), false) => {
                let mut names = Vec::new();
                for (k, cert) in outcome.certificates.iter().enumerate() {
                    let file = dir.join(format!("{hash}.{k}.cert"));
                    if std::fs::write(&file, cert.to_text()).is_ok() {
                        names.push(format!("{hash}.{k}.cert"));
                    }
                }
                names.join(";")
            }
            _ => String::new(),
        };
        let wall_ms = outcome.wall.as_millis() as u64;
        {
            let append_start = Instant::now();
            let mut store = inner.store.lock().unwrap_or_else(|e| e.into_inner());
            // A failed append (disk full, injected fault) leaves the
            // verdict un-persisted but still correct for this request;
            // the next daemon start re-verifies. Operators see it as
            // `serve.error` without a tracer attached.
            if store
                .insert(canon, outcome.kind, &outcome.detail, wall_ms, &cert)
                .is_err()
            {
                inner.errors.fetch_add(1, Ordering::Relaxed);
                inner.tracer.counter(metric::ERROR, 1);
            }
            drop(store);
            let append_us = append_start.elapsed().as_micros() as u64;
            inner.tracer.sample(metric::APPEND_US, append_us);
            inner
                .telemetry
                .append
                .record_at(append_us, inner.telemetry.now_ms());
        }
        if let Some((log, threshold)) = &inner.slowlog {
            if wall_ms >= *threshold {
                inner.tracer.counter(metric::SLOW, 1);
                let record = slowlog::SlowRecord {
                    rid: rid.to_string(),
                    name: name.to_string(),
                    hash: hash.to_string(),
                    verdict: outcome.kind.as_str().to_string(),
                    wall_ms,
                    threshold_ms: *threshold,
                    typeck_us: outcome.phases.typeck.as_micros() as u64,
                    encode_us: outcome.phases.encode.as_micros() as u64,
                    solve_us: outcome.phases.solve.as_micros() as u64,
                    check_us: outcome.phases.check.as_micros() as u64,
                    conflicts: outcome.conflicts,
                    retries: u64::from(outcome.retries),
                };
                let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
                // A slowlog write failure is observability loss, not a
                // verification failure; count it and move on.
                if log.append(&record).is_err() {
                    inner.errors.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::ERROR, 1);
                }
            }
        }
        Answer {
            hash: hash.to_string(),
            verdict: outcome.kind,
            reason: outcome.detail,
            wall_ms,
            cert,
            cached: false,
            coalesced: false,
            timing: RequestTiming::default(),
        }
    }

    /// Parses `text` and answers every transform in it, returning one
    /// [`VerdictLine`] per transform in submission order. Misses are
    /// verified on up to `workers` threads; duplicates within the batch
    /// coalesce through the in-flight map like concurrent clients would.
    pub fn check_batch(&self, id: &str, rid: &str, text: &str) -> Result<Vec<VerdictLine>, String> {
        let transforms = parse_transforms(text).map_err(|e| format!("parse error: {e}"))?;
        let mut items: Vec<(usize, String, Transform)> = Vec::new();
        for (i, t) in transforms.into_iter().enumerate() {
            validate(&t).map_err(|e| format!("transform {i}: {e}"))?;
            let name = t.name.clone().unwrap_or_else(|| format!("opt{i}"));
            items.push((i, name, t));
        }
        let results: Mutex<Vec<Option<VerdictLine>>> = Mutex::new(vec![None; items.len()]);
        let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.inner.workers.min(items.len().max(1)) {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some((index, name, t)) = items.get(k) else {
                        return;
                    };
                    // Each batch item is its own traceable work unit:
                    // `<rid>#<index>` keys the item's span subtree so
                    // `alive stats --request` can pull out one item.
                    let item_rid = format!("{rid}#{index}");
                    let span = self
                        .inner
                        .tracer
                        .span_with(metric::REQUEST, || item_rid.clone());
                    let start = Instant::now();
                    let answer = self.check_rid(name, t, &item_rid);
                    drop(span);
                    let line = VerdictLine {
                        id: id.to_string(),
                        index: *index,
                        name: name.clone(),
                        hash: answer.hash,
                        verdict: answer.verdict.as_str().to_string(),
                        cached: answer.cached,
                        coalesced: answer.coalesced,
                        reason: answer.reason,
                        wall_us: start.elapsed().as_micros() as u64,
                        cert: answer.cert,
                        rid: item_rid,
                        canon_us: answer.timing.canon_us,
                        lookup_us: answer.timing.lookup_us,
                        queue_us: answer.timing.queue_us,
                        verify_us: answer.timing.verify_us,
                    };
                    results.lock().unwrap_or_else(|e| e.into_inner())[k] = Some(line);
                });
            }
        });
        Ok(results
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|r| r.expect("every batch item produces a line"))
            .collect())
    }

    /// Checks the verification queue without taking work: `Some(Busy)`
    /// when at `queue_depth`, counting the refusal.
    fn admission_refusal(&self) -> Option<Busy> {
        let inner = &self.inner;
        let depth = inner.limits.queue_depth;
        if depth == 0 {
            return None;
        }
        let len = inner
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        if len < depth {
            return None;
        }
        inner.busy.fetch_add(1, Ordering::Relaxed);
        inner.tracer.counter(metric::BUSY, 1);
        Some(Busy {
            retry_after_ms: (depth as u64 * 250).clamp(100, 5_000),
        })
    }

    /// Fires the `serve` fault site for one verify/batch request: a
    /// bounded hang (a stuck handler), a clean response-write error, or a
    /// torn response (half a line on the wire, then the connection dies).
    /// The error returns propagate out of `handle_line`, which closes the
    /// connection — exactly what a real broken pipe does.
    #[cfg(feature = "fault-injection")]
    fn serve_fault(&self, out: &mut impl Write) -> std::io::Result<()> {
        use alive_sat::fault::{fire, FaultKind, FaultSite};
        match fire(FaultSite::Serve) {
            Some(FaultKind::Hang) => {
                // Bounded so an un-killed daemon still answers: stall
                // until shutdown begins or the cap elapses, then proceed.
                let start = Instant::now();
                while !self.stopping() && start.elapsed() < Duration::from_secs(2) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Ok(())
            }
            Some(FaultKind::IoError) => Err(std::io::Error::other(
                "injected fault: response write error",
            )),
            Some(FaultKind::TornWrite) => {
                out.write_all(b"{\"id\":\"")?;
                out.flush()?;
                Err(std::io::Error::other("injected fault: torn response"))
            }
            _ => Ok(()),
        }
    }

    /// Handles one request line, writing response line(s) to `out`.
    /// Returns `false` when the connection should close (shutdown).
    pub fn handle_line(&self, line: &str, out: &mut impl Write) -> std::io::Result<bool> {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.inner.errors.fetch_add(1, Ordering::Relaxed);
                self.inner.tracer.counter(metric::ERROR, 1);
                writeln!(out, "{}", render_error("", &e))?;
                return Ok(true);
            }
        };
        match request {
            Request::Verify { id, text } => {
                #[cfg(feature = "fault-injection")]
                self.serve_fault(out)?;
                // The request id: client-supplied when non-empty, minted
                // otherwise, so every wire request is traceable.
                let rid = self.mint_rid(&id);
                let span = self.inner.tracer.span_with(metric::REQUEST, || rid.clone());
                let start = Instant::now();
                let parsed = parse_transforms(&text)
                    .map_err(|e| format!("parse error: {e}"))
                    .and_then(|ts| match ts.len() {
                        1 => Ok(ts.into_iter().next().unwrap()),
                        n => Err(format!("expected exactly one transform, got {n}")),
                    })
                    .and_then(|t| {
                        validate(&t).map_err(|e| e.to_string())?;
                        Ok(t)
                    });
                match parsed {
                    Ok(t) => {
                        let name = t.name.clone().unwrap_or_else(|| "opt0".to_string());
                        // Verification runs on this connection thread, so
                        // its SAT-level spans nest under serve.request.
                        let answer = match self.try_check_rid(&name, &t, &rid) {
                            Ok(a) => a,
                            Err(b) => {
                                drop(span);
                                writeln!(out, "{}", render_busy(&id, b.retry_after_ms))?;
                                return Ok(true);
                            }
                        };
                        let lineout = VerdictLine {
                            id,
                            index: 0,
                            name,
                            hash: answer.hash,
                            verdict: answer.verdict.as_str().to_string(),
                            cached: answer.cached,
                            coalesced: answer.coalesced,
                            reason: answer.reason,
                            wall_us: start.elapsed().as_micros() as u64,
                            cert: answer.cert,
                            rid,
                            canon_us: answer.timing.canon_us,
                            lookup_us: answer.timing.lookup_us,
                            queue_us: answer.timing.queue_us,
                            verify_us: answer.timing.verify_us,
                        };
                        drop(span);
                        writeln!(out, "{}", lineout.render())?;
                    }
                    Err(e) => {
                        drop(span);
                        self.inner.errors.fetch_add(1, Ordering::Relaxed);
                        self.inner.tracer.counter(metric::ERROR, 1);
                        writeln!(out, "{}", render_error(&id, &e))?;
                    }
                }
                Ok(true)
            }
            Request::Batch { id, text } => {
                #[cfg(feature = "fault-injection")]
                self.serve_fault(out)?;
                // Coarse up-front admission for the whole batch: inside
                // it, the bounded worker pool caps parallelism anyway.
                if let Some(b) = self.admission_refusal() {
                    writeln!(out, "{}", render_busy(&id, b.retry_after_ms))?;
                    return Ok(true);
                }
                let rid = self.mint_rid(&id);
                match self.check_batch(&id, &rid, &text) {
                    Ok(lines) => {
                        let hits = lines.iter().filter(|l| l.cached).count();
                        let misses = lines.len() - hits;
                        for l in &lines {
                            writeln!(out, "{}", l.render())?;
                        }
                        writeln!(out, "{}", render_done(&id, lines.len(), hits, misses))?;
                    }
                    Err(e) => {
                        self.inner.errors.fetch_add(1, Ordering::Relaxed);
                        self.inner.tracer.counter(metric::ERROR, 1);
                        writeln!(out, "{}", render_error(&id, &e))?;
                    }
                }
                Ok(true)
            }
            Request::Stats { id } => {
                let s = self.stats();
                let line = StatsLine {
                    id,
                    proto: PROTO_VERSION,
                    hits: s.hits,
                    misses: s.misses,
                    joins: s.joins,
                    errors: s.errors,
                    busy: s.busy,
                    shed: s.shed,
                    idle_closed: s.idle_closed,
                    inflight: s.inflight as u64,
                    stored: s.stored as u64,
                    connections: s.connections as u64,
                    uptime_ms: s.uptime_ms,
                    telemetry: Some((&self.inner.telemetry.snapshot()).into()),
                };
                writeln!(out, "{}", line.render())?;
                Ok(true)
            }
            Request::Shutdown { id } => {
                self.inner.stopping.store(true, Ordering::SeqCst);
                writeln!(out, "{}", render_shutdown(&id))?;
                Ok(false)
            }
        }
    }
}

/// Runs one connection to completion: request lines in, response lines
/// out, flushed per request so pipelined clients see answers promptly.
pub fn handle_connection(
    server: &Server,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let keep_going = server.handle_line(&line, &mut writer)?;
        writer.flush()?;
        if !keep_going {
            break;
        }
    }
    Ok(())
}

/// Serves requests from stdin to stdout until EOF or `shutdown` (the
/// test/pipeline transport: `alive serve --stdio`).
pub fn serve_stdio(server: &Server) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    handle_connection(server, stdin.lock(), stdout.lock())
}

/// Binds a unix socket at `path` and serves until a `shutdown` request
/// (or [`Server::begin_stop`]). Each connection gets its own thread; they
/// all share the server's store and in-flight map, so clients racing on
/// one transform coalesce.
///
/// Lifecycle, in order of defense:
/// * an existing socket file is **probed**, never blindly deleted — a
///   live daemon is a refusal to start, only a connection-refused file
///   (dead daemon) is removed;
/// * past [`ServeLimits::max_connections`], a new connection gets one
///   `busy` line and is closed (`serve.shed`);
/// * connections that send nothing for [`ServeLimits::idle_timeout`] are
///   closed (`serve.idle_close`), so a slow-loris client cannot pin the
///   daemon open;
/// * shutdown stops accepting, waits up to [`ServeLimits::drain_timeout`]
///   for in-flight connections, then cancels their verifications and
///   force-closes; the drain duration is sampled as `serve.drain_ms`.
#[cfg(unix)]
pub fn serve_unix(server: &Server, path: &std::path::Path) -> std::io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};
    match UnixStream::connect(path) {
        Ok(_) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!(
                    "{}: a live daemon already answers on this socket; refusing to start",
                    path.display()
                ),
            ));
        }
        // Nothing there: the common first start.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        // A socket file nobody listens on: the previous daemon died
        // without cleanup. Safe — and necessary — to remove.
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
            std::fs::remove_file(path)?;
        }
        // Anything else (not a socket, permission trouble): this is not
        // our stale file to delete.
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let inner = &server.inner;
    let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !server.stopping() {
        // Reap finished connection threads so the vec stays bounded by
        // the number of *live* connections, not total ever accepted.
        threads.retain(|t| !t.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                let cap = inner.limits.max_connections;
                if cap != 0 && inner.connections.load(Ordering::SeqCst) >= cap {
                    inner.shed.fetch_add(1, Ordering::Relaxed);
                    inner.tracer.counter(metric::SHED, 1);
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(false);
                    // Best-effort refusal line; dropping the stream closes it.
                    let _ = writeln!(stream, "{}", render_busy("", 1_000));
                    continue;
                }
                stream.set_nonblocking(false)?;
                inner.connections.fetch_add(1, Ordering::SeqCst);
                let server = server.clone();
                threads.push(std::thread::spawn(move || {
                    let _ = serve_socket_connection(&server, stream);
                    server.inner.connections.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    // Drain: in-flight connections notice `stopping` at their next read
    // tick and close once idle; wait for them up to the limit.
    let drain_start = Instant::now();
    while inner.connections.load(Ordering::SeqCst) > 0
        && drain_start.elapsed() < inner.limits.drain_timeout
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    if inner.connections.load(Ordering::SeqCst) > 0 {
        // Stragglers are mid-verification. Cancel the work — the solvers'
        // cooperative cancellation points unwind in milliseconds and the
        // clients still get (cancelled) verdict lines — then give the
        // threads a short grace to flush and exit.
        server.cancel_inflight();
        let grace = Instant::now();
        while inner.connections.load(Ordering::SeqCst) > 0
            && grace.elapsed() < Duration::from_millis(500)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    inner
        .tracer
        .sample(metric::DRAIN_MS, drain_start.elapsed().as_millis() as u64);
    for t in threads {
        if t.is_finished() {
            let _ = t.join();
        }
        // Still running: abandoned (the handle drop detaches). A thread
        // that survived cancel + grace is wedged on something external;
        // blocking exit on it would turn one bad client into a hung
        // daemon, the exact wedge drain exists to prevent.
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// One socket connection: a poll-style read loop over 100 ms ticks so the
/// thread can notice shutdown and idle expiry without a dedicated timer.
/// Partial lines are preserved across ticks; requests are dispatched to
/// [`Server::handle_line`] as each newline completes.
#[cfg(unix)]
fn serve_socket_connection(
    server: &Server,
    stream: std::os::unix::net::UnixStream,
) -> std::io::Result<()> {
    use std::io::Read;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_data = Instant::now();
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client EOF
            Ok(n) => {
                last_data = Instant::now();
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    let keep_going = server.handle_line(&line, &mut writer)?;
                    writer.flush()?;
                    if !keep_going {
                        return Ok(());
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if server.stopping() {
                    // Draining and this connection is between requests:
                    // nothing in flight to finish, so close it.
                    return Ok(());
                }
                let idle = server.inner.limits.idle_timeout;
                if idle != Duration::ZERO && last_data.elapsed() >= idle {
                    server.inner.idle_closed.fetch_add(1, Ordering::Relaxed);
                    server.inner.tracer.counter(metric::IDLE_CLOSE, 1);
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}
