//! The slow-query log: a CRC-sealed JSONL record per expensive miss.
//!
//! When the daemon runs with `--slow-ms <t>`, every cache miss whose
//! verification takes at least `t` milliseconds appends one sealed line
//! to `<store>.slowlog`: the canonical hash, per-phase times, verdict,
//! and the solver budget it burned. The log answers the operator
//! question the telemetry percentiles cannot — *which* transforms are
//! the slow tail — and `alive slowlog` ranks them.
//!
//! The file reuses the store/journal line discipline (body + FNV-1a 64
//! CRC suffix), so a torn tail from a crash is detected and skipped on
//! read, never trusted. Unlike the store, the slowlog is advisory:
//! the reader counts and skips corrupt lines instead of refusing, and
//! rotation caps the size — when the file exceeds the cap it is
//! renamed to `<path>.1` (replacing the previous rotation) and a fresh
//! log starts. At most two files, bounded disk, no daemon involvement.

use crate::proto::{json_escape, parse_flat_object, JsonValue};
use alive_ir::canon::fnv1a64;
use alive_verifier::durable::{self, DurableFile};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};

/// Schema tag on the header line of every slowlog file.
pub const SLOWLOG_SCHEMA: &str = "alive-slowlog/v1";

/// Default rotation cap in bytes (1 MiB ≈ several thousand records).
pub const DEFAULT_MAX_BYTES: u64 = 1 << 20;

/// One slow-miss record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowRecord {
    /// Request id that paid for the verification.
    pub rid: String,
    /// Transform name (client-visible, not canonical).
    pub name: String,
    /// Canonical content hash, 16 lower-case hex digits.
    pub hash: String,
    /// Verdict label the verification produced.
    pub verdict: String,
    /// End-to-end verification wall time, milliseconds.
    pub wall_ms: u64,
    /// The `--slow-ms` threshold that admitted this record.
    pub threshold_ms: u64,
    /// Type inference + typing enumeration time, microseconds.
    pub typeck_us: u64,
    /// VC generation + SMT term construction time, microseconds.
    pub encode_us: u64,
    /// SAT solving time, microseconds.
    pub solve_us: u64,
    /// Counterexample re-validation time, microseconds.
    pub check_us: u64,
    /// SAT conflicts spent (the budget consumed).
    pub conflicts: u64,
    /// Driver retries the transform needed.
    pub retries: u64,
}

impl SlowRecord {
    fn render_body(&self) -> String {
        format!(
            "{{\"rid\":\"{}\",\"name\":\"{}\",\"hash\":\"{}\",\"verdict\":\"{}\",\
             \"wall_ms\":{},\"threshold_ms\":{},\"typeck_us\":{},\"encode_us\":{},\
             \"solve_us\":{},\"check_us\":{},\"conflicts\":{},\"retries\":{}",
            json_escape(&self.rid),
            json_escape(&self.name),
            self.hash,
            self.verdict,
            self.wall_ms,
            self.threshold_ms,
            self.typeck_us,
            self.encode_us,
            self.solve_us,
            self.check_us,
            self.conflicts,
            self.retries,
        )
    }

    fn from_fields(fields: &HashMap<String, JsonValue>) -> SlowRecord {
        let s = |k: &str| match fields.get(k) {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let n = |k: &str| match fields.get(k) {
            Some(JsonValue::Num(n)) => u64::try_from(*n).unwrap_or(0),
            _ => 0,
        };
        SlowRecord {
            rid: s("rid"),
            name: s("name"),
            hash: s("hash"),
            verdict: s("verdict"),
            wall_ms: n("wall_ms"),
            threshold_ms: n("threshold_ms"),
            typeck_us: n("typeck_us"),
            encode_us: n("encode_us"),
            solve_us: n("solve_us"),
            check_us: n("check_us"),
            conflicts: n("conflicts"),
            retries: n("retries"),
        }
    }
}

/// Seals a body (a JSON object missing its closing brace) with the
/// journal's CRC suffix discipline.
fn seal(body: String) -> String {
    let crc = fnv1a64(body.as_bytes());
    format!("{body},\"crc\":\"{crc:016x}\"}}")
}

/// Strips and verifies the CRC suffix, returning the body.
fn unseal(line: &str) -> Option<&str> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let rest = line.strip_suffix("\"}")?;
    let marker = ",\"crc\":\"";
    let pos = rest.rfind(marker)?;
    let (body, crc_hex) = rest.split_at(pos);
    let crc_hex = &crc_hex[marker.len()..];
    if crc_hex.len() != 16 {
        return None;
    }
    let want = u64::from_str_radix(crc_hex, 16).ok()?;
    (fnv1a64(body.as_bytes()) == want).then_some(body)
}

/// The appending side: owned by the daemon, one instance per store.
///
/// Writes go through the [`durable`] seam: each record is appended and
/// fsync'd, sync failures are propagated (poisoning the handle until
/// rotation/reopen), and rotation's rename persists the directory entry.
#[derive(Debug)]
pub struct SlowLog {
    path: PathBuf,
    file: DurableFile,
    len: u64,
    max_bytes: u64,
}

impl SlowLog {
    /// Opens (or creates) the slowlog at `path`, writing the schema
    /// header if the file is new or empty. `max_bytes` caps the file
    /// before rotation (0 means [`DEFAULT_MAX_BYTES`]).
    pub fn open(path: &Path, max_bytes: u64) -> io::Result<SlowLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut file = DurableFile::from_file(file);
        let mut len = file.file().metadata()?.len();
        if len == 0 {
            len += Self::write_header(&mut file)?;
            durable::fsync_parent(path)?;
        }
        Ok(SlowLog {
            path: path.to_path_buf(),
            file,
            len,
            max_bytes: if max_bytes == 0 {
                DEFAULT_MAX_BYTES
            } else {
                max_bytes
            },
        })
    }

    fn write_header(file: &mut DurableFile) -> io::Result<u64> {
        let line = seal(format!("{{\"slowlog\":\"{SLOWLOG_SCHEMA}\"")) + "\n";
        file.append(line.as_bytes())?;
        file.sync()?;
        Ok(line.len() as u64)
    }

    /// Appends one sealed record, rotating first if the file is at its
    /// cap, and fsyncs before returning. Returns the record's line length
    /// in bytes.
    ///
    /// # Errors
    ///
    /// Propagates append/sync failures; a failed sync poisons the handle
    /// (fsyncgate), and later appends refuse until the log rotates or the
    /// daemon reopens it.
    pub fn append(&mut self, rec: &SlowRecord) -> io::Result<u64> {
        if self.len >= self.max_bytes {
            self.rotate()?;
        }
        let line = seal(rec.render_body()) + "\n";
        self.file.append(line.as_bytes())?;
        self.file.sync()?;
        self.len += line.len() as u64;
        Ok(line.len() as u64)
    }

    /// Renames the current file to `<path>.1` (replacing any previous
    /// rotation) and starts a fresh log with a new header. The rename and
    /// the fresh file's name are both made durable via the parent
    /// directory fsync inside the seam.
    fn rotate(&mut self) -> io::Result<()> {
        let mut rotated = self.path.as_os_str().to_owned();
        rotated.push(".1");
        durable::rename(&self.path, &PathBuf::from(rotated))?;
        let mut file = DurableFile::from_file(durable::create(&self.path)?);
        self.len = Self::write_header(&mut file)?;
        durable::fsync_parent(&self.path)?;
        self.file = file;
        Ok(())
    }

    /// Current file length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records yet (header only).
    pub fn is_empty(&self) -> bool {
        // The header is always present, so "empty" means header-sized.
        self.len <= seal(format!("{{\"slowlog\":\"{SLOWLOG_SCHEMA}\"")).len() as u64 + 1
    }
}

/// The reader side: parses a slowlog file, returning the intact records
/// and the number of lines dropped for a bad CRC or unparseable body.
/// A missing/wrong header is a hard error — without the schema line the
/// file is not a slowlog.
pub fn read_slowlog(path: &Path) -> Result<(Vec<SlowRecord>, usize), String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("{}: empty file", path.display()))?
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let ok = unseal(&header)
        .map(|body| body.contains(SLOWLOG_SCHEMA))
        .unwrap_or(false);
    if !ok {
        return Err(format!(
            "{}: not a {SLOWLOG_SCHEMA} file (bad or missing header)",
            path.display()
        ));
    }
    let mut records = Vec::new();
    let mut dropped = 0usize;
    for line in lines {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        if line.is_empty() {
            continue;
        }
        let parsed = unseal(&line)
            .and_then(|body| parse_flat_object(&format!("{body}}}")).ok())
            .map(|fields| SlowRecord::from_fields(&fields));
        match parsed {
            Some(rec) => records.push(rec),
            None => dropped += 1,
        }
    }
    Ok((records, dropped))
}

/// One ranked offender: every record of one canonical hash, collapsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Offender {
    /// Canonical content hash.
    pub hash: String,
    /// A representative transform name (from the slowest record).
    pub name: String,
    /// Verdict of the slowest record.
    pub verdict: String,
    /// How many slow records this hash produced.
    pub count: u64,
    /// Slowest single verification, milliseconds.
    pub max_ms: u64,
    /// Total wall time across all records, milliseconds.
    pub total_ms: u64,
    /// Total conflicts burned across all records.
    pub conflicts: u64,
}

/// Collapses records per canonical hash and ranks them, worst single
/// verification first (ties broken by total time, then hash).
pub fn rank(records: &[SlowRecord]) -> Vec<Offender> {
    let mut by_hash: HashMap<&str, Offender> = HashMap::new();
    for r in records {
        let o = by_hash.entry(&r.hash).or_insert_with(|| Offender {
            hash: r.hash.clone(),
            name: r.name.clone(),
            verdict: r.verdict.clone(),
            count: 0,
            max_ms: 0,
            total_ms: 0,
            conflicts: 0,
        });
        o.count += 1;
        o.total_ms += r.wall_ms;
        o.conflicts += r.conflicts;
        if r.wall_ms > o.max_ms {
            o.max_ms = r.wall_ms;
            o.name = r.name.clone();
            o.verdict = r.verdict.clone();
        }
    }
    let mut out: Vec<Offender> = by_hash.into_values().collect();
    out.sort_by(|a, b| {
        b.max_ms
            .cmp(&a.max_ms)
            .then(b.total_ms.cmp(&a.total_ms))
            .then(a.hash.cmp(&b.hash))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("alive-slowlog-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let mut rotated = path.as_os_str().to_owned();
        rotated.push(".1");
        let _ = std::fs::remove_file(PathBuf::from(rotated));
        path
    }

    fn rec(hash: &str, wall_ms: u64) -> SlowRecord {
        SlowRecord {
            rid: "rq-1".to_string(),
            name: format!("t-{hash}"),
            hash: hash.to_string(),
            verdict: "valid".to_string(),
            wall_ms,
            threshold_ms: 10,
            typeck_us: 5,
            encode_us: 50,
            solve_us: wall_ms * 900,
            check_us: 1,
            conflicts: wall_ms * 3,
            retries: 0,
        }
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = temp("roundtrip.slowlog");
        let mut log = SlowLog::open(&path, 0).unwrap();
        assert!(log.is_empty());
        log.append(&rec("00000000000000aa", 120)).unwrap();
        log.append(&rec("00000000000000bb", 40)).unwrap();
        assert!(!log.is_empty());
        let (records, dropped) = read_slowlog(&path).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], rec("00000000000000aa", 120));
        assert_eq!(records[1].solve_us, 36_000);
    }

    #[test]
    fn reopen_appends_without_a_second_header() {
        let path = temp("reopen.slowlog");
        SlowLog::open(&path, 0)
            .unwrap()
            .append(&rec("00000000000000aa", 20))
            .unwrap();
        SlowLog::open(&path, 0)
            .unwrap()
            .append(&rec("00000000000000bb", 30))
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches(SLOWLOG_SCHEMA).count(), 1);
        let (records, _) = read_slowlog(&path).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let path = temp("torn.slowlog");
        let mut log = SlowLog::open(&path, 0).unwrap();
        log.append(&rec("00000000000000aa", 20)).unwrap();
        // Simulate a crash mid-append: a truncated, unsealed line.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"rid\":\"rq-9\",\"name\":\"half").unwrap();
        drop(f);
        let (records, dropped) = read_slowlog(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn missing_header_is_fatal() {
        let path = temp("noheader.slowlog");
        std::fs::write(&path, "{\"rid\":\"x\"}\n").unwrap();
        assert!(read_slowlog(&path).unwrap_err().contains("header"));
    }

    #[test]
    fn rotation_caps_the_file_and_keeps_one_predecessor() {
        let path = temp("rotate.slowlog");
        // A cap small enough that a few records trip it.
        let mut log = SlowLog::open(&path, 400).unwrap();
        for i in 0..20 {
            log.append(&rec(&format!("{i:016x}"), i)).unwrap();
        }
        assert!(log.len() <= 400 + 300, "cap not enforced: {}", log.len());
        let mut rotated = path.as_os_str().to_owned();
        rotated.push(".1");
        let rotated = PathBuf::from(rotated);
        assert!(rotated.exists());
        // Both generations are intact, well-formed slowlogs.
        let (cur, d1) = read_slowlog(&path).unwrap();
        let (old, d2) = read_slowlog(&rotated).unwrap();
        assert_eq!(d1 + d2, 0);
        assert!(!cur.is_empty() || !old.is_empty());
    }

    #[test]
    fn rank_orders_by_worst_verification() {
        let records = vec![
            rec("00000000000000aa", 10),
            rec("00000000000000aa", 90),
            rec("00000000000000bb", 50),
        ];
        let ranked = rank(&records);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].hash, "00000000000000aa");
        assert_eq!(ranked[0].count, 2);
        assert_eq!(ranked[0].max_ms, 90);
        assert_eq!(ranked[0].total_ms, 100);
        assert_eq!(ranked[1].max_ms, 50);
    }
}
