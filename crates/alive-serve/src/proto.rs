//! The `alive serve` wire protocol: line-delimited JSON.
//!
//! One request per line in, one or more response lines out. The format is
//! deliberately trivial — flat JSON objects with string/number/bool
//! fields — so any language (or a shell script with `printf`) can be a
//! client. Field order never matters on input and is fixed on output.
//!
//! # Requests
//!
//! ```text
//! {"op":"verify","id":"r1","text":"%r = add %x, 0\n=>\n%r = %x"}
//! {"op":"batch","id":"b1","text":"<multi-transform file text>"}
//! {"op":"stats","id":"s1"}
//! {"op":"shutdown","id":"q1"}
//! ```
//!
//! # Responses
//!
//! A `verify` request gets exactly one verdict line; a `batch` request
//! gets one verdict line per transform (`index` gives its position in the
//! submitted text) followed by a `done` summary line:
//!
//! ```text
//! {"id":"r1","index":0,"name":"opt0","hash":"<16 hex>","verdict":"valid",
//!  "cached":true,"coalesced":false,"reason":"...","wall_us":42,"cert":""}
//! {"id":"b1","done":true,"count":224,"hits":224,"misses":0}
//! {"id":"s1","stats":true,"hits":10,"misses":2,"joins":1,"errors":0,
//!  "busy":0,"shed":0,"idle_closed":0,"inflight":0,"stored":12,
//!  "connections":1,"uptime_ms":6000}
//! {"id":"r9","error":"parse error: ..."}
//! {"id":"r2","busy":true,"retry_after_ms":250}
//! ```
//!
//! `cached` is true when the verdict came from the store; `coalesced` is
//! true when the request joined another client's in-flight verification
//! of the same canonical transform. Both false means this request paid
//! for the verification itself.
//!
//! A `busy` line is the admission-control refusal: the daemon is at its
//! connection cap or verification queue depth and did **not** take the
//! work. `retry_after_ms` is a backoff hint; a well-behaved client waits
//! at least that long (with jitter) before resubmitting. Overload never
//! silently drops a request — every refusal is answered.

use std::collections::HashMap;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Verify one transform (the `text` must parse to exactly one).
    Verify {
        /// Client-chosen correlation id, echoed on every response line.
        id: String,
        /// Alive DSL text of the transform.
        text: String,
    },
    /// Verify every transform in a multi-transform text.
    Batch {
        /// Client-chosen correlation id.
        id: String,
        /// Alive DSL text (any number of transforms).
        text: String,
    },
    /// Report server counters.
    Stats {
        /// Client-chosen correlation id.
        id: String,
    },
    /// Acknowledge and stop the server.
    Shutdown {
        /// Client-chosen correlation id.
        id: String,
    },
}

impl Request {
    /// Parses one request line. Unknown keys are ignored (forward
    /// compatibility); a missing or unknown `op` is an error.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| -> Option<&str> {
            fields.get(k).and_then(|v| match v {
                JsonValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
        };
        let id = get("id").unwrap_or("").to_string();
        let text = || -> Result<String, String> {
            get("text")
                .map(str::to_string)
                .ok_or_else(|| "missing \"text\" field".to_string())
        };
        match get("op") {
            Some("verify") => Ok(Request::Verify { id, text: text()? }),
            Some("batch") => Ok(Request::Batch { id, text: text()? }),
            Some("stats") => Ok(Request::Stats { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            Some(other) => Err(format!("unknown op {other:?}")),
            None => Err("missing \"op\" field".to_string()),
        }
    }
}

/// One verdict line (for both `verify` and `batch` items).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerdictLine {
    /// Echo of the request id.
    pub id: String,
    /// Position of the transform in the submitted text (0 for `verify`).
    pub index: usize,
    /// Transform name (from its `Name:` header, or `opt<index>`).
    pub name: String,
    /// Canonical content hash, 16 lower-case hex digits.
    pub hash: String,
    /// Verdict label: `valid`, `invalid`, `unknown`, `error`, `hung`.
    pub verdict: String,
    /// Whether the verdict came from the store.
    pub cached: bool,
    /// Whether the request joined another client's in-flight run.
    pub coalesced: bool,
    /// Verdict detail (counterexample, error message, ...).
    pub reason: String,
    /// End-to-end latency of this request in microseconds.
    pub wall_us: u64,
    /// Certificate reference (a path), empty when none.
    pub cert: String,
}

impl VerdictLine {
    /// Serializes the verdict as one response line (no newline).
    pub fn render(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"index\":{},\"name\":\"{}\",\"hash\":\"{}\",\
             \"verdict\":\"{}\",\"cached\":{},\"coalesced\":{},\"reason\":\"{}\",\
             \"wall_us\":{},\"cert\":\"{}\"}}",
            json_escape(&self.id),
            self.index,
            json_escape(&self.name),
            self.hash,
            self.verdict,
            self.cached,
            self.coalesced,
            json_escape(&self.reason),
            self.wall_us,
            json_escape(&self.cert),
        )
    }
}

/// Serializes a batch-completion summary line.
pub fn render_done(id: &str, count: usize, hits: usize, misses: usize) -> String {
    format!(
        "{{\"id\":\"{}\",\"done\":true,\"count\":{count},\"hits\":{hits},\"misses\":{misses}}}",
        json_escape(id),
    )
}

/// One `stats` response line: every server counter an operator can see
/// without attaching a tracer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsLine {
    /// Echo of the request id.
    pub id: String,
    /// Requests answered from the store.
    pub hits: u64,
    /// Requests that ran a verification.
    pub misses: u64,
    /// Requests that joined an in-flight verification.
    pub joins: u64,
    /// Requests rejected before verification.
    pub errors: u64,
    /// Requests refused `busy` at the verification queue.
    pub busy: u64,
    /// Connections shed at the connection cap.
    pub shed: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Verifications in flight right now.
    pub inflight: u64,
    /// Distinct verdicts in the store.
    pub stored: u64,
    /// Socket connections open right now.
    pub connections: u64,
    /// Milliseconds since the server opened its store.
    pub uptime_ms: u64,
}

impl StatsLine {
    /// Serializes the stats response (no newline).
    pub fn render(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"stats\":true,\"hits\":{},\"misses\":{},\"joins\":{},\
             \"errors\":{},\"busy\":{},\"shed\":{},\"idle_closed\":{},\"inflight\":{},\
             \"stored\":{},\"connections\":{},\"uptime_ms\":{}}}",
            json_escape(&self.id),
            self.hits,
            self.misses,
            self.joins,
            self.errors,
            self.busy,
            self.shed,
            self.idle_closed,
            self.inflight,
            self.stored,
            self.connections,
            self.uptime_ms,
        )
    }
}

/// Serializes an admission-control refusal: the server did not take the
/// request; retry after the hinted delay.
pub fn render_busy(id: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"id\":\"{}\",\"busy\":true,\"retry_after_ms\":{retry_after_ms}}}",
        json_escape(id),
    )
}

/// Serializes an error response line.
pub fn render_error(id: &str, message: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"error\":\"{}\"}}",
        json_escape(id),
        json_escape(message),
    )
}

/// Serializes the shutdown acknowledgement.
pub fn render_shutdown(id: &str) -> String {
    format!("{{\"id\":\"{}\",\"shutdown\":true}}", json_escape(id))
}

/// A parsed server response line — the client half of the protocol,
/// used by the retrying [`crate::client`] and by test harnesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// One verdict (a `verify` answer or a `batch` item).
    Verdict(VerdictLine),
    /// Batch completion summary.
    Done {
        /// Echo of the request id.
        id: String,
        /// Transforms answered.
        count: u64,
        /// How many came from the store.
        hits: u64,
        /// How many ran a verification.
        misses: u64,
    },
    /// Admission refusal: resubmit after the hint.
    Busy {
        /// Echo of the request id (may be empty when shed at accept).
        id: String,
        /// Backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// Counter snapshot.
    Stats(StatsLine),
    /// Request-level failure (parse error, bad transform, ...).
    Error {
        /// Echo of the request id.
        id: String,
        /// Human-readable message.
        message: String,
    },
    /// Shutdown acknowledgement.
    Shutdown {
        /// Echo of the request id.
        id: String,
    },
}

/// Parses one server response line. The discriminating key decides the
/// variant (`busy`, `done`, `stats`, `error`, `shutdown`, else a verdict
/// line with its `verdict` field).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let fields = parse_flat_object(line)?;
    let str_of = |k: &str| -> String {
        match fields.get(k) {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => String::new(),
        }
    };
    let num_of = |k: &str| -> u64 {
        match fields.get(k) {
            Some(JsonValue::Num(n)) => u64::try_from(*n).unwrap_or(0),
            _ => 0,
        }
    };
    let bool_of = |k: &str| -> bool { matches!(fields.get(k), Some(JsonValue::Bool(true))) };
    let id = str_of("id");
    if bool_of("busy") {
        return Ok(Response::Busy {
            id,
            retry_after_ms: num_of("retry_after_ms"),
        });
    }
    if bool_of("done") {
        return Ok(Response::Done {
            id,
            count: num_of("count"),
            hits: num_of("hits"),
            misses: num_of("misses"),
        });
    }
    if bool_of("stats") {
        return Ok(Response::Stats(StatsLine {
            id,
            hits: num_of("hits"),
            misses: num_of("misses"),
            joins: num_of("joins"),
            errors: num_of("errors"),
            busy: num_of("busy"),
            shed: num_of("shed"),
            idle_closed: num_of("idle_closed"),
            inflight: num_of("inflight"),
            stored: num_of("stored"),
            connections: num_of("connections"),
            uptime_ms: num_of("uptime_ms"),
        }));
    }
    if let Some(JsonValue::Str(message)) = fields.get("error") {
        return Ok(Response::Error {
            id,
            message: message.clone(),
        });
    }
    if bool_of("shutdown") {
        return Ok(Response::Shutdown { id });
    }
    if let Some(JsonValue::Str(verdict)) = fields.get("verdict") {
        return Ok(Response::Verdict(VerdictLine {
            id,
            index: num_of("index") as usize,
            name: str_of("name"),
            hash: str_of("hash"),
            verdict: verdict.clone(),
            cached: bool_of("cached"),
            coalesced: bool_of("coalesced"),
            reason: str_of("reason"),
            wall_us: num_of("wall_us"),
            cert: str_of("cert"),
        }));
    }
    Err(format!("unrecognized response line: {line:?}"))
}

/// Escapes a string for embedding in a JSON string literal (the same
/// escaping the journal and report writers use).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A scalar field value in a flat request object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    Str(String),
    /// An integer (the protocol uses no fractions).
    Num(i64),
    /// `true` / `false`.
    Bool(bool),
}

/// Parses a flat JSON object of scalar fields, any key order, unknown
/// keys kept. Nested objects/arrays are rejected — no request uses them,
/// and refusing them keeps this parser ~100 lines and obviously correct.
pub fn parse_flat_object(line: &str) -> Result<HashMap<String, JsonValue>, String> {
    let mut p = Parser {
        rest: line.trim_end_matches(['\r', '\n']),
    };
    p.skip_ws();
    p.expect('{')?;
    let mut out = HashMap::new();
    p.skip_ws();
    if p.try_take('}') {
        p.skip_ws();
        return p.finish(out);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        out.insert(key, value);
        p.skip_ws();
        if p.try_take(',') {
            continue;
        }
        p.expect('}')?;
        p.skip_ws();
        return p.finish(out);
    }
}

struct Parser<'a> {
    rest: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t']);
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.try_take(c) {
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at {:?}",
                &self.rest[..self.rest.len().min(20)]
            ))
        }
    }

    fn try_take(&mut self, c: char) -> bool {
        if let Some(r) = self.rest.strip_prefix(c) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn finish<T>(&self, out: T) -> Result<T, String> {
        if self.rest.is_empty() {
            Ok(out)
        } else {
            Err(format!("trailing input: {:?}", self.rest))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| "unterminated string".to_string())?;
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or_else(|| "dangling escape".to_string())?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                code = code * 16
                                    + h.to_digit(16).ok_or_else(|| "bad \\u escape".to_string())?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        if self.rest.starts_with('"') {
            return Ok(JsonValue::Str(self.string()?));
        }
        if let Some(r) = self.rest.strip_prefix("true") {
            self.rest = r;
            return Ok(JsonValue::Bool(true));
        }
        if let Some(r) = self.rest.strip_prefix("false") {
            self.rest = r;
            return Ok(JsonValue::Bool(false));
        }
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit() && c != '-')
            .unwrap_or(self.rest.len());
        let (digits, rest) = self.rest.split_at(end);
        let n: i64 = digits.parse().map_err(|_| {
            format!(
                "expected a value at {:?}",
                &self.rest[..self.rest.len().min(20)]
            )
        })?;
        self.rest = rest;
        Ok(JsonValue::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_in_any_field_order() {
        let a = Request::parse(r#"{"op":"verify","id":"r1","text":"%r = add %x, 0\n=>\n%r = %x"}"#)
            .unwrap();
        let b = Request::parse(r#"{"text":"%r = add %x, 0\n=>\n%r = %x","id":"r1","op":"verify"}"#)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a,
            Request::Verify {
                id: "r1".to_string(),
                text: "%r = add %x, 0\n=>\n%r = %x".to_string(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { id: String::new() }
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown","id":"q"}"#).unwrap(),
            Request::Shutdown {
                id: "q".to_string()
            }
        );
    }

    #[test]
    fn unknown_fields_are_ignored_unknown_ops_are_not() {
        assert!(Request::parse(r#"{"op":"stats","future":"stuff","n":3,"b":true}"#).is_ok());
        assert!(Request::parse(r#"{"op":"reboot"}"#).is_err());
        assert!(Request::parse(r#"{"id":"x"}"#).is_err());
        assert!(Request::parse(r#"{"op":"verify","id":"x"}"#).is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"verify","text":{"nested":1}}"#).is_err());
    }

    #[test]
    fn responses_round_trip_through_parse_response() {
        let verdict = VerdictLine {
            id: "r1".to_string(),
            index: 2,
            name: "opt2".to_string(),
            hash: "00ff00ff00ff00ff".to_string(),
            verdict: "valid".to_string(),
            cached: true,
            coalesced: false,
            reason: String::new(),
            wall_us: 7,
            cert: String::new(),
        };
        assert_eq!(
            parse_response(&verdict.render()).unwrap(),
            Response::Verdict(verdict)
        );
        assert_eq!(
            parse_response(&render_busy("r2", 250)).unwrap(),
            Response::Busy {
                id: "r2".to_string(),
                retry_after_ms: 250
            }
        );
        assert_eq!(
            parse_response(&render_done("b1", 3, 2, 1)).unwrap(),
            Response::Done {
                id: "b1".to_string(),
                count: 3,
                hits: 2,
                misses: 1
            }
        );
        let stats = StatsLine {
            id: "s1".to_string(),
            hits: 10,
            busy: 4, // numeric counter, must not read as a busy refusal
            uptime_ms: 12345,
            ..StatsLine::default()
        };
        assert_eq!(
            parse_response(&stats.render()).unwrap(),
            Response::Stats(stats)
        );
        assert_eq!(
            parse_response(&render_error("x", "nope")).unwrap(),
            Response::Error {
                id: "x".to_string(),
                message: "nope".to_string()
            }
        );
        assert_eq!(
            parse_response(&render_shutdown("q")).unwrap(),
            Response::Shutdown {
                id: "q".to_string()
            }
        );
        assert!(parse_response(r#"{"id":"x"}"#).is_err());
    }

    #[test]
    fn verdict_line_round_trips_through_the_flat_parser() {
        let line = VerdictLine {
            id: "r\"1\"".to_string(),
            index: 3,
            name: "opt3".to_string(),
            hash: "00ff00ff00ff00ff".to_string(),
            verdict: "invalid".to_string(),
            cached: true,
            coalesced: false,
            reason: "counterexample:\n%x i8 = 1".to_string(),
            wall_us: 42,
            cert: "".to_string(),
        };
        let fields = parse_flat_object(&line.render()).unwrap();
        assert_eq!(fields["id"], JsonValue::Str("r\"1\"".to_string()));
        assert_eq!(fields["index"], JsonValue::Num(3));
        assert_eq!(fields["cached"], JsonValue::Bool(true));
        assert_eq!(
            fields["reason"],
            JsonValue::Str("counterexample:\n%x i8 = 1".to_string())
        );
    }
}
