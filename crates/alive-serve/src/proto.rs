//! The `alive serve` wire protocol: line-delimited JSON.
//!
//! One request per line in, one or more response lines out. The format is
//! deliberately trivial — flat JSON objects with string/number/bool
//! fields — so any language (or a shell script with `printf`) can be a
//! client. Field order never matters on input and is fixed on output.
//!
//! # Requests
//!
//! ```text
//! {"op":"verify","id":"r1","text":"%r = add %x, 0\n=>\n%r = %x"}
//! {"op":"batch","id":"b1","text":"<multi-transform file text>"}
//! {"op":"stats","id":"s1"}
//! {"op":"shutdown","id":"q1"}
//! ```
//!
//! # Responses
//!
//! A `verify` request gets exactly one verdict line; a `batch` request
//! gets one verdict line per transform (`index` gives its position in the
//! submitted text) followed by a `done` summary line:
//!
//! ```text
//! {"id":"r1","index":0,"name":"opt0","hash":"<16 hex>","verdict":"valid",
//!  "cached":true,"coalesced":false,"reason":"...","wall_us":42,"cert":"",
//!  "rid":"r1","canon_us":3,"lookup_us":1,"queue_us":0,"verify_us":0}
//! {"id":"b1","done":true,"count":224,"hits":224,"misses":0}
//! {"id":"s1","stats":true,"proto":2,"hits":10,"misses":2,"joins":1,"errors":0,
//!  "busy":0,"shed":0,"idle_closed":0,"inflight":0,"stored":12,
//!  "connections":1,"uptime_ms":6000,"telemetry":{"v":1,"window_ms":60000,
//!  "hit_count":10,"hit_p50_us":31,...}}
//! {"id":"r9","error":"parse error: ..."}
//! {"id":"r2","busy":true,"retry_after_ms":250}
//! ```
//!
//! The protocol is versioned by the `proto` field of the `stats`
//! response ([`PROTO_VERSION`]). Version 2 added `proto` itself, the
//! nested `telemetry` block, and the `rid`/`*_us` timing fields on
//! verdict lines. Every addition is ignorable: a v1 client skips the
//! unknown keys, and a v1-shaped request still gets a full answer.
//!
//! `cached` is true when the verdict came from the store; `coalesced` is
//! true when the request joined another client's in-flight verification
//! of the same canonical transform. Both false means this request paid
//! for the verification itself.
//!
//! A `busy` line is the admission-control refusal: the daemon is at its
//! connection cap or verification queue depth and did **not** take the
//! work. `retry_after_ms` is a backoff hint; a well-behaved client waits
//! at least that long (with jitter) before resubmitting. Overload never
//! silently drops a request — every refusal is answered.

use std::collections::HashMap;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Verify one transform (the `text` must parse to exactly one).
    Verify {
        /// Client-chosen correlation id, echoed on every response line.
        id: String,
        /// Alive DSL text of the transform.
        text: String,
    },
    /// Verify every transform in a multi-transform text.
    Batch {
        /// Client-chosen correlation id.
        id: String,
        /// Alive DSL text (any number of transforms).
        text: String,
    },
    /// Report server counters.
    Stats {
        /// Client-chosen correlation id.
        id: String,
    },
    /// Acknowledge and stop the server.
    Shutdown {
        /// Client-chosen correlation id.
        id: String,
    },
}

impl Request {
    /// Parses one request line. Unknown keys are ignored (forward
    /// compatibility); a missing or unknown `op` is an error.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| -> Option<&str> {
            fields.get(k).and_then(|v| match v {
                JsonValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
        };
        let id = get("id").unwrap_or("").to_string();
        let text = || -> Result<String, String> {
            get("text")
                .map(str::to_string)
                .ok_or_else(|| "missing \"text\" field".to_string())
        };
        match get("op") {
            Some("verify") => Ok(Request::Verify { id, text: text()? }),
            Some("batch") => Ok(Request::Batch { id, text: text()? }),
            Some("stats") => Ok(Request::Stats { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            Some(other) => Err(format!("unknown op {other:?}")),
            None => Err("missing \"op\" field".to_string()),
        }
    }
}

/// One verdict line (for both `verify` and `batch` items).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerdictLine {
    /// Echo of the request id.
    pub id: String,
    /// Position of the transform in the submitted text (0 for `verify`).
    pub index: usize,
    /// Transform name (from its `Name:` header, or `opt<index>`).
    pub name: String,
    /// Canonical content hash, 16 lower-case hex digits.
    pub hash: String,
    /// Verdict label: `valid`, `invalid`, `unknown`, `error`, `hung`.
    pub verdict: String,
    /// Whether the verdict came from the store.
    pub cached: bool,
    /// Whether the request joined another client's in-flight run.
    pub coalesced: bool,
    /// Verdict detail (counterexample, error message, ...).
    pub reason: String,
    /// End-to-end latency of this request in microseconds.
    pub wall_us: u64,
    /// Certificate reference (a path), empty when none.
    pub cert: String,
    /// Server-side request id (the client's `id`, or a daemon-minted
    /// `rq-<n>` when the client sent none; batch items get
    /// `<id>#<index>`) — the key that finds this request in a `--trace`
    /// file via `alive stats --request`.
    pub rid: String,
    /// Canonicalization + hashing time, microseconds.
    pub canon_us: u64,
    /// Verdict-store lookup time, microseconds.
    pub lookup_us: u64,
    /// Wait before the verification started (leader) or the joined
    /// verdict arrived (follower), microseconds.
    pub queue_us: u64,
    /// Verification time paid by this request (0 on hits and joins),
    /// microseconds.
    pub verify_us: u64,
}

impl VerdictLine {
    /// Serializes the verdict as one response line (no newline). The
    /// proto-1 fields keep their fixed order; the proto-2 timing block
    /// is appended after them (old clients ignore unknown keys).
    pub fn render(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"index\":{},\"name\":\"{}\",\"hash\":\"{}\",\
             \"verdict\":\"{}\",\"cached\":{},\"coalesced\":{},\"reason\":\"{}\",\
             \"wall_us\":{},\"cert\":\"{}\",\"rid\":\"{}\",\"canon_us\":{},\
             \"lookup_us\":{},\"queue_us\":{},\"verify_us\":{}}}",
            json_escape(&self.id),
            self.index,
            json_escape(&self.name),
            self.hash,
            self.verdict,
            self.cached,
            self.coalesced,
            json_escape(&self.reason),
            self.wall_us,
            json_escape(&self.cert),
            json_escape(&self.rid),
            self.canon_us,
            self.lookup_us,
            self.queue_us,
            self.verify_us,
        )
    }
}

/// Serializes a batch-completion summary line.
pub fn render_done(id: &str, count: usize, hits: usize, misses: usize) -> String {
    format!(
        "{{\"id\":\"{}\",\"done\":true,\"count\":{count},\"hits\":{hits},\"misses\":{misses}}}",
        json_escape(id),
    )
}

/// The wire-protocol version the daemon speaks. Version 2 added the
/// `proto` field itself, the `telemetry` stats block, and the per-request
/// `rid`/timing fields on verdict lines — all additive, so a v1 client
/// keeps working (unknown fields are ignored on both sides).
pub const PROTO_VERSION: u64 = 2;

/// One `stats` response line: every server counter an operator can see
/// without attaching a tracer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsLine {
    /// Echo of the request id.
    pub id: String,
    /// Wire-protocol version ([`PROTO_VERSION`]); 0 when the response
    /// predates versioning (a v1 daemon).
    pub proto: u64,
    /// Requests answered from the store.
    pub hits: u64,
    /// Requests that ran a verification.
    pub misses: u64,
    /// Requests that joined an in-flight verification.
    pub joins: u64,
    /// Requests rejected before verification.
    pub errors: u64,
    /// Requests refused `busy` at the verification queue.
    pub busy: u64,
    /// Connections shed at the connection cap.
    pub shed: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Verifications in flight right now.
    pub inflight: u64,
    /// Distinct verdicts in the store.
    pub stored: u64,
    /// Socket connections open right now.
    pub connections: u64,
    /// Milliseconds since the server opened its store.
    pub uptime_ms: u64,
    /// The windowed latency telemetry block (proto ≥ 2); `None` from a
    /// v1 daemon.
    pub telemetry: Option<TelemetryBlock>,
}

impl StatsLine {
    /// Serializes the stats response (no newline).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"stats\":true,\"proto\":{},\"hits\":{},\"misses\":{},\
             \"joins\":{},\"errors\":{},\"busy\":{},\"shed\":{},\"idle_closed\":{},\
             \"inflight\":{},\"stored\":{},\"connections\":{},\"uptime_ms\":{}",
            json_escape(&self.id),
            self.proto,
            self.hits,
            self.misses,
            self.joins,
            self.errors,
            self.busy,
            self.shed,
            self.idle_closed,
            self.inflight,
            self.stored,
            self.connections,
            self.uptime_ms,
        );
        if let Some(t) = &self.telemetry {
            out.push_str(",\"telemetry\":");
            out.push_str(&t.render());
        }
        out.push('}');
        out
    }
}

/// Latency summary for one telemetry series, as carried on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatSummary {
    /// Lifetime sample count.
    pub count: u64,
    /// Lifetime p50 upper bound, microseconds.
    pub p50_us: u64,
    /// Lifetime p90 upper bound, microseconds.
    pub p90_us: u64,
    /// Lifetime p99 upper bound, microseconds.
    pub p99_us: u64,
    /// Lifetime maximum, microseconds.
    pub max_us: u64,
    /// Samples inside the sliding window.
    pub window: u64,
    /// Window rate in milli-events per second.
    pub rate_x1000: u64,
}

/// The versioned `telemetry` block of a proto-2 `stats` response: one
/// nested object of integer fields (`<series>_<stat>`), so a flat-JSON
/// client one level smarter than proto 1 can read it, and a proto-1
/// client ignores the whole key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryBlock {
    /// Telemetry block schema version (1).
    pub v: u64,
    /// Sliding-window span shared by every series, milliseconds.
    pub window_ms: u64,
    /// Store-hit request latency.
    pub hit: LatSummary,
    /// Cache-miss request latency.
    pub miss: LatSummary,
    /// Coalesced-join request latency.
    pub join: LatSummary,
    /// Queue-wait before verification/join delivery.
    pub queue_wait: LatSummary,
    /// Canonicalization + hashing time.
    pub canon: LatSummary,
    /// Verdict-store append time.
    pub append: LatSummary,
}

/// The six series of a telemetry block with their wire-key prefixes, in
/// render order.
const TELEMETRY_SERIES: [&str; 6] = ["hit", "miss", "join", "queue_wait", "canon", "append"];

impl TelemetryBlock {
    fn series(&self, name: &str) -> &LatSummary {
        match name {
            "hit" => &self.hit,
            "miss" => &self.miss,
            "join" => &self.join,
            "queue_wait" => &self.queue_wait,
            "canon" => &self.canon,
            "append" => &self.append,
            _ => unreachable!("unknown telemetry series {name}"),
        }
    }

    fn series_mut(&mut self, name: &str) -> &mut LatSummary {
        match name {
            "hit" => &mut self.hit,
            "miss" => &mut self.miss,
            "join" => &mut self.join,
            "queue_wait" => &mut self.queue_wait,
            "canon" => &mut self.canon,
            "append" => &mut self.append,
            _ => unreachable!("unknown telemetry series {name}"),
        }
    }

    /// Serializes the block as one nested JSON object (no newline).
    pub fn render(&self) -> String {
        let mut out = format!("{{\"v\":{},\"window_ms\":{}", self.v, self.window_ms);
        for name in TELEMETRY_SERIES {
            let s = self.series(name);
            out.push_str(&format!(
                ",\"{name}_count\":{},\"{name}_p50_us\":{},\"{name}_p90_us\":{},\
                 \"{name}_p99_us\":{},\"{name}_max_us\":{},\"{name}_window\":{},\
                 \"{name}_rate_x1000\":{}",
                s.count, s.p50_us, s.p90_us, s.p99_us, s.max_us, s.window, s.rate_x1000,
            ));
        }
        out.push('}');
        out
    }

    /// Reconstructs a block from the parsed nested object. Missing
    /// fields read as 0 (forward compatibility within the block).
    pub fn from_fields(fields: &HashMap<String, JsonValue>) -> TelemetryBlock {
        let num = |k: &str| -> u64 {
            match fields.get(k) {
                Some(JsonValue::Num(n)) => u64::try_from(*n).unwrap_or(0),
                _ => 0,
            }
        };
        let mut block = TelemetryBlock {
            v: num("v"),
            window_ms: num("window_ms"),
            ..TelemetryBlock::default()
        };
        for name in TELEMETRY_SERIES {
            *block.series_mut(name) = LatSummary {
                count: num(&format!("{name}_count")),
                p50_us: num(&format!("{name}_p50_us")),
                p90_us: num(&format!("{name}_p90_us")),
                p99_us: num(&format!("{name}_p99_us")),
                max_us: num(&format!("{name}_max_us")),
                window: num(&format!("{name}_window")),
                rate_x1000: num(&format!("{name}_rate_x1000")),
            };
        }
        block
    }
}

impl From<&alive_trace::SeriesSnapshot> for LatSummary {
    fn from(s: &alive_trace::SeriesSnapshot) -> LatSummary {
        LatSummary {
            count: s.count,
            p50_us: s.p50_us,
            p90_us: s.p90_us,
            p99_us: s.p99_us,
            max_us: s.max_us,
            window: s.window_count,
            rate_x1000: s.rate_x1000,
        }
    }
}

impl From<&alive_trace::TelemetrySnapshot> for TelemetryBlock {
    fn from(t: &alive_trace::TelemetrySnapshot) -> TelemetryBlock {
        TelemetryBlock {
            v: 1,
            window_ms: t.window_ms,
            hit: (&t.hit).into(),
            miss: (&t.miss).into(),
            join: (&t.join).into(),
            queue_wait: (&t.queue_wait).into(),
            canon: (&t.canon).into(),
            append: (&t.append).into(),
        }
    }
}

/// Serializes an admission-control refusal: the server did not take the
/// request; retry after the hinted delay.
pub fn render_busy(id: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"id\":\"{}\",\"busy\":true,\"retry_after_ms\":{retry_after_ms}}}",
        json_escape(id),
    )
}

/// Serializes an error response line.
pub fn render_error(id: &str, message: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"error\":\"{}\"}}",
        json_escape(id),
        json_escape(message),
    )
}

/// Serializes the shutdown acknowledgement.
pub fn render_shutdown(id: &str) -> String {
    format!("{{\"id\":\"{}\",\"shutdown\":true}}", json_escape(id))
}

/// A parsed server response line — the client half of the protocol,
/// used by the retrying [`crate::client`] and by test harnesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// One verdict (a `verify` answer or a `batch` item).
    Verdict(VerdictLine),
    /// Batch completion summary.
    Done {
        /// Echo of the request id.
        id: String,
        /// Transforms answered.
        count: u64,
        /// How many came from the store.
        hits: u64,
        /// How many ran a verification.
        misses: u64,
    },
    /// Admission refusal: resubmit after the hint.
    Busy {
        /// Echo of the request id (may be empty when shed at accept).
        id: String,
        /// Backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// Counter snapshot (boxed: the telemetry block makes it much
    /// larger than the other variants).
    Stats(Box<StatsLine>),
    /// Request-level failure (parse error, bad transform, ...).
    Error {
        /// Echo of the request id.
        id: String,
        /// Human-readable message.
        message: String,
    },
    /// Shutdown acknowledgement.
    Shutdown {
        /// Echo of the request id.
        id: String,
    },
}

/// Parses one server response line. The discriminating key decides the
/// variant (`busy`, `done`, `stats`, `error`, `shutdown`, else a verdict
/// line with its `verdict` field).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let fields = parse_flat_object(line)?;
    let str_of = |k: &str| -> String {
        match fields.get(k) {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => String::new(),
        }
    };
    let num_of = |k: &str| -> u64 {
        match fields.get(k) {
            Some(JsonValue::Num(n)) => u64::try_from(*n).unwrap_or(0),
            _ => 0,
        }
    };
    let bool_of = |k: &str| -> bool { matches!(fields.get(k), Some(JsonValue::Bool(true))) };
    let id = str_of("id");
    if bool_of("busy") {
        return Ok(Response::Busy {
            id,
            retry_after_ms: num_of("retry_after_ms"),
        });
    }
    if bool_of("done") {
        return Ok(Response::Done {
            id,
            count: num_of("count"),
            hits: num_of("hits"),
            misses: num_of("misses"),
        });
    }
    if bool_of("stats") {
        let telemetry = match fields.get("telemetry") {
            Some(JsonValue::Obj(t)) => Some(TelemetryBlock::from_fields(t)),
            _ => None,
        };
        return Ok(Response::Stats(Box::new(StatsLine {
            id,
            proto: num_of("proto"),
            hits: num_of("hits"),
            misses: num_of("misses"),
            joins: num_of("joins"),
            errors: num_of("errors"),
            busy: num_of("busy"),
            shed: num_of("shed"),
            idle_closed: num_of("idle_closed"),
            inflight: num_of("inflight"),
            stored: num_of("stored"),
            connections: num_of("connections"),
            uptime_ms: num_of("uptime_ms"),
            telemetry,
        })));
    }
    if let Some(JsonValue::Str(message)) = fields.get("error") {
        return Ok(Response::Error {
            id,
            message: message.clone(),
        });
    }
    if bool_of("shutdown") {
        return Ok(Response::Shutdown { id });
    }
    if let Some(JsonValue::Str(verdict)) = fields.get("verdict") {
        return Ok(Response::Verdict(VerdictLine {
            id,
            index: num_of("index") as usize,
            name: str_of("name"),
            hash: str_of("hash"),
            verdict: verdict.clone(),
            cached: bool_of("cached"),
            coalesced: bool_of("coalesced"),
            reason: str_of("reason"),
            wall_us: num_of("wall_us"),
            cert: str_of("cert"),
            rid: str_of("rid"),
            canon_us: num_of("canon_us"),
            lookup_us: num_of("lookup_us"),
            queue_us: num_of("queue_us"),
            verify_us: num_of("verify_us"),
        }));
    }
    Err(format!("unrecognized response line: {line:?}"))
}

/// Escapes a string for embedding in a JSON string literal (the same
/// escaping the journal and report writers use).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A field value in a protocol object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    Str(String),
    /// An integer (the protocol uses no fractions).
    Num(i64),
    /// `true` / `false`.
    Bool(bool),
    /// A nested object of scalar fields — used only by the proto-2
    /// `telemetry` stats block; requests stay flat by construction.
    Obj(HashMap<String, JsonValue>),
}

/// Parses a protocol object of scalar fields, any key order, unknown
/// keys kept. One level of object nesting is allowed (the proto-2
/// `telemetry` stats block); arrays and deeper nesting are rejected —
/// nothing on the wire uses them, and refusing them keeps this parser
/// small and obviously correct.
pub fn parse_flat_object(line: &str) -> Result<HashMap<String, JsonValue>, String> {
    let mut p = Parser {
        rest: line.trim_end_matches(['\r', '\n']),
    };
    p.skip_ws();
    let out = p.object(0)?;
    p.skip_ws();
    p.finish(out)
}

struct Parser<'a> {
    rest: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t']);
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.try_take(c) {
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at {:?}",
                &self.rest[..self.rest.len().min(20)]
            ))
        }
    }

    fn try_take(&mut self, c: char) -> bool {
        if let Some(r) = self.rest.strip_prefix(c) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn finish<T>(&self, out: T) -> Result<T, String> {
        if self.rest.is_empty() {
            Ok(out)
        } else {
            Err(format!("trailing input: {:?}", self.rest))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| "unterminated string".to_string())?;
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or_else(|| "dangling escape".to_string())?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                code = code * 16
                                    + h.to_digit(16).ok_or_else(|| "bad \\u escape".to_string())?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<HashMap<String, JsonValue>, String> {
        self.expect('{')?;
        let mut out = HashMap::new();
        self.skip_ws();
        if self.try_take('}') {
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value(depth)?;
            out.insert(key, value);
            self.skip_ws();
            if self.try_take(',') {
                continue;
            }
            self.expect('}')?;
            return Ok(out);
        }
    }

    fn value(&mut self, depth: u32) -> Result<JsonValue, String> {
        if self.rest.starts_with('{') {
            if depth >= 1 {
                return Err("object nested deeper than one level".to_string());
            }
            return Ok(JsonValue::Obj(self.object(depth + 1)?));
        }
        if self.rest.starts_with('"') {
            return Ok(JsonValue::Str(self.string()?));
        }
        if let Some(r) = self.rest.strip_prefix("true") {
            self.rest = r;
            return Ok(JsonValue::Bool(true));
        }
        if let Some(r) = self.rest.strip_prefix("false") {
            self.rest = r;
            return Ok(JsonValue::Bool(false));
        }
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit() && c != '-')
            .unwrap_or(self.rest.len());
        let (digits, rest) = self.rest.split_at(end);
        let n: i64 = digits.parse().map_err(|_| {
            format!(
                "expected a value at {:?}",
                &self.rest[..self.rest.len().min(20)]
            )
        })?;
        self.rest = rest;
        Ok(JsonValue::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_in_any_field_order() {
        let a = Request::parse(r#"{"op":"verify","id":"r1","text":"%r = add %x, 0\n=>\n%r = %x"}"#)
            .unwrap();
        let b = Request::parse(r#"{"text":"%r = add %x, 0\n=>\n%r = %x","id":"r1","op":"verify"}"#)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a,
            Request::Verify {
                id: "r1".to_string(),
                text: "%r = add %x, 0\n=>\n%r = %x".to_string(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { id: String::new() }
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown","id":"q"}"#).unwrap(),
            Request::Shutdown {
                id: "q".to_string()
            }
        );
    }

    #[test]
    fn unknown_fields_are_ignored_unknown_ops_are_not() {
        assert!(Request::parse(r#"{"op":"stats","future":"stuff","n":3,"b":true}"#).is_ok());
        assert!(Request::parse(r#"{"op":"reboot"}"#).is_err());
        assert!(Request::parse(r#"{"id":"x"}"#).is_err());
        assert!(Request::parse(r#"{"op":"verify","id":"x"}"#).is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"verify","text":{"nested":1}}"#).is_err());
    }

    #[test]
    fn responses_round_trip_through_parse_response() {
        let verdict = VerdictLine {
            id: "r1".to_string(),
            index: 2,
            name: "opt2".to_string(),
            hash: "00ff00ff00ff00ff".to_string(),
            verdict: "valid".to_string(),
            cached: true,
            reason: String::new(),
            wall_us: 7,
            rid: "r1".to_string(),
            canon_us: 3,
            lookup_us: 1,
            queue_us: 2,
            verify_us: 0,
            ..VerdictLine::default()
        };
        assert_eq!(
            parse_response(&verdict.render()).unwrap(),
            Response::Verdict(verdict)
        );
        assert_eq!(
            parse_response(&render_busy("r2", 250)).unwrap(),
            Response::Busy {
                id: "r2".to_string(),
                retry_after_ms: 250
            }
        );
        assert_eq!(
            parse_response(&render_done("b1", 3, 2, 1)).unwrap(),
            Response::Done {
                id: "b1".to_string(),
                count: 3,
                hits: 2,
                misses: 1
            }
        );
        let stats = StatsLine {
            id: "s1".to_string(),
            proto: PROTO_VERSION,
            hits: 10,
            busy: 4, // numeric counter, must not read as a busy refusal
            uptime_ms: 12345,
            telemetry: Some(TelemetryBlock {
                v: 1,
                window_ms: 60_000,
                hit: LatSummary {
                    count: 10,
                    p50_us: 31,
                    p90_us: 63,
                    p99_us: 127,
                    max_us: 90,
                    window: 4,
                    rate_x1000: 66,
                },
                ..TelemetryBlock::default()
            }),
            ..StatsLine::default()
        };
        assert_eq!(
            parse_response(&stats.render()).unwrap(),
            Response::Stats(Box::new(stats))
        );
        assert_eq!(
            parse_response(&render_error("x", "nope")).unwrap(),
            Response::Error {
                id: "x".to_string(),
                message: "nope".to_string()
            }
        );
        assert_eq!(
            parse_response(&render_shutdown("q")).unwrap(),
            Response::Shutdown {
                id: "q".to_string()
            }
        );
        assert!(parse_response(r#"{"id":"x"}"#).is_err());
    }

    #[test]
    fn verdict_line_round_trips_through_the_flat_parser() {
        let line = VerdictLine {
            id: "r\"1\"".to_string(),
            index: 3,
            name: "opt3".to_string(),
            hash: "00ff00ff00ff00ff".to_string(),
            verdict: "invalid".to_string(),
            cached: true,
            reason: "counterexample:\n%x i8 = 1".to_string(),
            wall_us: 42,
            rid: "rq-7".to_string(),
            ..VerdictLine::default()
        };
        let fields = parse_flat_object(&line.render()).unwrap();
        assert_eq!(fields["id"], JsonValue::Str("r\"1\"".to_string()));
        assert_eq!(fields["index"], JsonValue::Num(3));
        assert_eq!(fields["cached"], JsonValue::Bool(true));
        assert_eq!(fields["rid"], JsonValue::Str("rq-7".to_string()));
        assert_eq!(
            fields["reason"],
            JsonValue::Str("counterexample:\n%x i8 = 1".to_string())
        );
    }

    #[test]
    fn proto_v1_responses_still_parse() {
        // A literal v1 daemon stats line: no proto, no telemetry.
        let v1 = r#"{"id":"s1","stats":true,"hits":10,"misses":2,"joins":1,"errors":0,"busy":0,"shed":0,"idle_closed":0,"inflight":0,"stored":12,"connections":1,"uptime_ms":6000}"#;
        let Response::Stats(s) = parse_response(v1).unwrap() else {
            panic!("not a stats line");
        };
        assert_eq!(s.proto, 0);
        assert_eq!(s.telemetry, None);
        assert_eq!(s.hits, 10);
        // A literal v1 verdict line: no rid, no timing fields.
        let v1 = r#"{"id":"r1","index":0,"name":"opt0","hash":"00ff00ff00ff00ff","verdict":"valid","cached":true,"coalesced":false,"reason":"","wall_us":42,"cert":""}"#;
        let Response::Verdict(v) = parse_response(v1).unwrap() else {
            panic!("not a verdict line");
        };
        assert_eq!(v.rid, "");
        assert_eq!(v.verify_us, 0);
        assert_eq!(v.wall_us, 42);
    }

    #[test]
    fn telemetry_block_renders_nested_and_round_trips() {
        let stats = StatsLine {
            id: "s".to_string(),
            proto: PROTO_VERSION,
            telemetry: Some(TelemetryBlock {
                v: 1,
                window_ms: 6_000,
                miss: LatSummary {
                    count: 3,
                    p50_us: 8191,
                    p90_us: 16_383,
                    p99_us: 16_383,
                    max_us: 12_000,
                    window: 3,
                    rate_x1000: 500,
                },
                ..TelemetryBlock::default()
            }),
            ..StatsLine::default()
        };
        let line = stats.render();
        assert!(line.contains("\"telemetry\":{\"v\":1"));
        assert!(line.contains("\"miss_p99_us\":16383"));
        assert_eq!(
            parse_response(&line).unwrap(),
            Response::Stats(Box::new(stats))
        );
        // Nesting deeper than the telemetry block is still rejected.
        assert!(parse_flat_object(r#"{"a":{"b":{"c":1}}}"#).is_err());
        // Unknown keys inside the block are ignored, not fatal.
        let future = r#"{"id":"s","stats":true,"proto":3,"telemetry":{"v":2,"new_field":9}}"#;
        let Response::Stats(s) = parse_response(future).unwrap() else {
            panic!("not a stats line");
        };
        assert_eq!(s.proto, 3);
        assert_eq!(s.telemetry.unwrap().v, 2);
    }
}
