//! Property test: the grammar-aware fuzzer's generator and the printer /
//! parser agree. Proptest drives the generator through its `(seed, index)`
//! space (plus generator tunables), and for every generated transform:
//!
//! 1. printing and reparsing yields the identical AST, and
//! 2. printing is a *fixpoint*: `print(parse(print(t))) == print(t)`.
//!
//! The fixpoint property is what lets the crash corpus store reproducers
//! as plain text: a saved file reparses to exactly the transform that
//! produced the failure.

use alive_fuzz::{gen_case, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_transforms_print_parse_print_fixpoint(
        seed in any::<u64>(),
        index in 0u64..1024,
        max_width in 1u32..=8,
        max_insts in 1usize..=8,
    ) {
        let cfg = GenConfig {
            max_width,
            max_insts,
            ..GenConfig::default()
        };
        let t = gen_case(seed, index, &cfg);
        alive_ir::validate(&t).expect("generator output is well-formed");
        let printed = t.to_string();
        let back = alive_ir::parse_transform(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&back, &t, "AST round trip mismatch:\n{}", printed);
        prop_assert_eq!(back.to_string(), printed, "printer is not a fixpoint");
    }
}
