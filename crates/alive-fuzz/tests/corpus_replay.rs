//! Replays every checked-in crash reproducer as a regression test.
//!
//! The `corpus/` directory holds minimized reproducers for failures the
//! fuzzer (or its fault-injection harness) has caught, one `.opt` file
//! per failure signature. Each must now run through the full pipeline —
//! verification plus the paranoid audit — without panicking, hanging,
//! disagreeing, or erroring. A regression that re-introduces one of these
//! failures turns this test red with the entry's name.

use alive_fuzz::{replay_corpus, FuzzConfig, OracleConfig};
use alive_trace::Tracer;
use std::path::Path;
use std::time::Duration;

#[test]
fn checked_in_reproducers_replay_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    assert!(
        dir.is_dir(),
        "crash corpus directory is missing: {}",
        dir.display()
    );
    let cfg = FuzzConfig {
        // Bounded so a re-introduced hang fails fast instead of wedging CI.
        timeout: Some(Duration::from_secs(30)),
        conflict_budget: Some(100_000),
        oracle: OracleConfig {
            max_points: 1024,
            max_typings: 4,
            ..OracleConfig::default()
        },
        ..FuzzConfig::default()
    };
    let report = replay_corpus(&dir, &cfg, &Tracer::disabled()).unwrap();
    assert!(report.cases > 0, "corpus unexpectedly empty");
    assert!(
        report.is_clean(),
        "corpus reproducers failed again: {:#?}",
        report
            .failures
            .iter()
            .map(|f| (f.index, f.signature.slug(), f.detail.clone()))
            .collect::<Vec<_>>()
    );
}
