//! The fuzzing driver: generate → verify → audit → shrink → persist.
//!
//! Each case is generated deterministically from `(seed, index)`, run
//! through the supervised verification pool (so panics are isolated,
//! hangs are reaped by the watchdog, and `--jobs` parallelism applies),
//! and its verdict is audited by the paranoid oracle. Failures are
//! classified into a [`Signature`], shrunk by the delta-debugging
//! minimizer (each probe re-runs the full pipeline), and saved to the
//! crash corpus under their signature.
//!
//! The run digest is computed from the corpus-ordered outcomes, so it is
//! independent of worker count and completion order: the same seed and
//! case count must produce the same digest.

use crate::corpus::{Corpus, FailureClass, Signature};
use crate::gen::{gen_case, GenConfig};
use crate::minimize::minimize;
use crate::oracle::{paranoid_audit, AuditResult, OracleConfig};
use alive_ir::Transform;
use alive_trace::Tracer;
use alive_verifier::{
    run_supervised, run_transforms, DriverConfig, Journal, OutcomeKind, PoolConfig, TaskSpec,
    VerifyConfig,
};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Configuration for one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Run seed; the same seed reproduces the same case sequence.
    pub seed: u64,
    /// Number of cases to generate.
    pub cases: u64,
    /// Generator tunables.
    pub gen: GenConfig,
    /// Paranoid-oracle tunables.
    pub oracle: OracleConfig,
    /// Verification worker count.
    pub jobs: usize,
    /// Per-transform wall deadline (hangs are reaped past this).
    pub timeout: Option<Duration>,
    /// Per-query conflict budget (deterministic, unlike timeouts).
    pub conflict_budget: Option<u64>,
    /// Shrink failures with the delta-debugging minimizer.
    pub minimize: bool,
    /// Probe budget per minimization.
    pub max_shrink_probes: usize,
    /// Crash-corpus directory (failures are persisted when set).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            cases: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            jobs: 1,
            timeout: None,
            conflict_budget: Some(200_000),
            minimize: true,
            max_shrink_probes: 300,
            corpus_dir: None,
        }
    }
}

/// One failing case, after classification and (optional) shrinking.
#[derive(Clone, Debug)]
pub struct FailureCase {
    /// Case index within the run.
    pub index: usize,
    /// Stable failure identity.
    pub signature: Signature,
    /// Human-readable detail (outcome detail or oracle disagreements).
    pub detail: String,
    /// The generated transform.
    pub transform: Transform,
    /// The minimized reproducer (when minimization ran and shrank it).
    pub minimized: Option<Transform>,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
    /// Corpus path, when the reproducer was newly persisted.
    pub saved: Option<PathBuf>,
}

/// Summary of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Verdict counts.
    pub valid: u64,
    /// Invalid (counterexample found) verdicts.
    pub invalid: u64,
    /// Unknown (budget/timeout) verdicts, excluding panics.
    pub unknown: u64,
    /// Pipeline errors.
    pub errors: u64,
    /// Concrete points executed by the oracle.
    pub points_checked: u64,
    /// Oracle skip notes (transforms it could not brute-force).
    pub audits_skipped: u64,
    /// All failures: panics, hangs, disagreements, errors.
    pub failures: Vec<FailureCase>,
    /// Order-independent digest of (index, kind, detail) triples.
    pub digest: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl FuzzReport {
    /// True when no case panicked, hung, disagreed, or errored.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Process exit code: 0 clean, 1 failures found.
    pub fn exit_code(&self) -> u8 {
        u8::from(!self.is_clean())
    }
}

/// Re-installs the `ALIVE_FAULT` plan so injected faults re-fire (their
/// trigger counters reset). No-op without the `fault-injection` feature.
fn reinstall_faults() {
    #[cfg(feature = "fault-injection")]
    if let Ok(spec) = std::env::var("ALIVE_FAULT") {
        if !spec.is_empty() {
            if let Ok(plan) = alive_sat::fault::FailurePlan::parse(&spec) {
                alive_sat::fault::install(Some(plan));
            }
        }
    }
}

/// FNV-1a over the parts that must be reproducible across runs.
fn case_hash(index: usize, kind: OutcomeKind, detail: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fnv(&(index as u64).to_le_bytes());
    fnv(kind.as_str().as_bytes());
    fnv(detail.as_bytes());
    h
}

/// Classifies one verified outcome (with its audit) into a failure.
fn classify(
    kind: OutcomeKind,
    detail: &str,
    audit: &AuditResult,
) -> Option<(FailureClass, String)> {
    if kind == OutcomeKind::Unknown && detail.contains("internal error") {
        return Some((FailureClass::Panic, detail.to_string()));
    }
    if kind == OutcomeKind::Hung {
        return Some((FailureClass::Hang, detail.to_string()));
    }
    if !audit.is_clean() {
        return Some((FailureClass::Disagreement, audit.disagreements.join("; ")));
    }
    if kind == OutcomeKind::Error {
        return Some((FailureClass::Error, detail.to_string()));
    }
    None
}

/// Runs the full pipeline on a single transform and classifies the result
/// (used by minimization probes). Returns `None` for clean outcomes.
fn classify_single(
    t: &Transform,
    config: &DriverConfig,
    vcfg: &VerifyConfig,
    ocfg: &OracleConfig,
) -> Option<(Signature, String)> {
    reinstall_faults();
    let report = run_transforms(&[("probe".to_string(), t.clone())], config);
    let outcome = report.outcomes.first()?;
    let audit = paranoid_audit(t, outcome.kind, &outcome.certificates, vcfg, ocfg);
    let (class, detail) = classify(outcome.kind, &outcome.detail, &audit)?;
    Some((Signature::new(class, &detail), detail))
}

/// Runs one fuzzing campaign.
///
/// Progress counters are emitted through `tracer` (`fuzz.cases`,
/// `fuzz.disagreements`, `fuzz.shrink_steps`, …); pass
/// [`Tracer::disabled()`] to opt out.
pub fn run_fuzz(cfg: &FuzzConfig, tracer: &Tracer) -> FuzzReport {
    // Generate the corpus for this run, deterministically.
    let transforms: Vec<(String, Transform)> = (0..cfg.cases)
        .map(|i| (format!("fuzz-{i}"), gen_case(cfg.seed, i, &cfg.gen)))
        .collect();
    campaign(&transforms, cfg, tracer)
}

/// Replays every reproducer in a crash corpus as a regression suite.
///
/// Each entry runs through the same pipeline and paranoid audit as a
/// freshly fuzzed case; the report's `failures` list the entries that
/// still panic, hang, disagree, or error. Minimization and corpus
/// persistence are disabled — the entries *are* the corpus.
///
/// # Errors
///
/// Returns an error when the directory cannot be read or an entry fails
/// to parse (a corrupt reproducer is itself a regression).
pub fn replay_corpus(dir: &Path, cfg: &FuzzConfig, tracer: &Tracer) -> io::Result<FuzzReport> {
    if !dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("corpus directory {} does not exist", dir.display()),
        ));
    }
    let corpus = Corpus::open(dir)?;
    let transforms = corpus.entries()?;
    let replay_cfg = FuzzConfig {
        minimize: false,
        corpus_dir: None,
        ..cfg.clone()
    };
    Ok(campaign(&transforms, &replay_cfg, tracer))
}

/// The shared campaign body: verify every transform through the
/// supervised pool, audit each verdict, classify/shrink/persist failures.
fn campaign(transforms: &[(String, Transform)], cfg: &FuzzConfig, tracer: &Tracer) -> FuzzReport {
    let started = Instant::now();
    reinstall_faults();

    let vcfg = {
        let mut v = VerifyConfig::fast();
        v.typeck.widths = (1..=cfg.gen.max_width).collect();
        v.typeck.max_assignments = 16;
        v
    };
    let driver = DriverConfig {
        verify: vcfg.clone(),
        timeout: cfg.timeout,
        conflict_budget: cfg.conflict_budget,
        keep_going: true,
        with_certificates: true,
        ..DriverConfig::default()
    };
    let pool = PoolConfig {
        jobs: cfg.jobs.max(1),
        ..PoolConfig::default()
    };

    // Verify through the supervised pool; audit each verdict as it
    // lands (the observer runs serially on this thread).
    let mut audits: Vec<Option<AuditResult>> = vec![None; transforms.len()];
    let tasks: Vec<TaskSpec> = (0..transforms.len()).map(TaskSpec::fresh).collect();
    let report = {
        let audits = &mut audits;
        run_supervised(
            transforms,
            tasks,
            Vec::new(),
            &driver,
            &pool,
            None::<(&mut Journal, &[String])>,
            |idx, outcome| {
                let t = &transforms[idx].1;
                let audit =
                    paranoid_audit(t, outcome.kind, &outcome.certificates, &vcfg, &cfg.oracle);
                tracer.counter("fuzz.cases", 1);
                tracer.counter("fuzz.points", audit.points_checked);
                if !audit.is_clean() {
                    tracer.counter("fuzz.disagreements", audit.disagreements.len() as u64);
                }
                audits[idx] = Some(audit);
            },
        )
    };

    // Classify, digest, and collect failures in corpus order.
    let mut out = FuzzReport {
        cases: transforms.len() as u64,
        ..FuzzReport::default()
    };
    let mut failures: Vec<(usize, FailureClass, String)> = Vec::new();
    for (idx, outcome) in report.outcomes.iter().enumerate() {
        let audit = audits[idx].take().unwrap_or_default();
        out.points_checked += audit.points_checked;
        out.audits_skipped += audit.skipped.len() as u64;
        match outcome.kind {
            OutcomeKind::Valid => out.valid += 1,
            OutcomeKind::Invalid => out.invalid += 1,
            OutcomeKind::Unknown | OutcomeKind::Hung => out.unknown += 1,
            OutcomeKind::Error => out.errors += 1,
        }
        out.digest ^= case_hash(idx, outcome.kind, &outcome.detail);
        if let Some((class, detail)) = classify(outcome.kind, &outcome.detail, &audit) {
            failures.push((idx, class, detail));
        }
    }

    // Shrink and persist failures.
    let corpus = cfg.corpus_dir.as_ref().and_then(|d| Corpus::open(d).ok());
    for (idx, class, detail) in failures {
        let t = transforms[idx].1.clone();
        let signature = Signature::new(class, &detail);
        let mut minimized = None;
        let mut shrink_steps = 0usize;
        if cfg.minimize {
            let (small, stats) = minimize(
                &t,
                |cand| {
                    classify_single(cand, &driver, &vcfg, &cfg.oracle)
                        .is_some_and(|(s, _)| s == signature)
                },
                cfg.max_shrink_probes,
            );
            tracer.counter("fuzz.shrink_steps", stats.accepted as u64);
            shrink_steps = stats.accepted;
            if small != t {
                minimized = Some(small);
            }
        }
        let repro = minimized.as_ref().unwrap_or(&t);
        let saved = match &corpus {
            Some(c) => match c.save(&signature, repro, &detail) {
                Ok(true) => Some(c.path_for(&signature)),
                _ => None,
            },
            None => None,
        };
        out.failures.push(FailureCase {
            index: idx,
            signature,
            detail,
            transform: t,
            minimized,
            shrink_steps,
            saved,
        });
    }

    tracer.flush();
    out.wall = started.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(cases: u64, seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            cases,
            // Tiny widths keep debug-build SAT solving fast.
            gen: GenConfig {
                max_width: 4,
                max_insts: 4,
                ..GenConfig::default()
            },
            oracle: OracleConfig {
                max_points: 1024,
                max_typings: 4,
                ..OracleConfig::default()
            },
            conflict_budget: Some(50_000),
            minimize: false,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn small_run_is_clean_and_deterministic() {
        let cfg = quick_cfg(25, 42);
        let a = run_fuzz(&cfg, &Tracer::disabled());
        assert!(
            a.is_clean(),
            "failures: {:#?}",
            a.failures
                .iter()
                .map(|f| (f.index, f.signature.slug(), f.detail.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(a.cases, 25);
        let b = run_fuzz(&cfg, &Tracer::disabled());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.invalid, b.invalid);
    }

    #[test]
    fn jobs_do_not_change_the_digest() {
        let mut cfg = quick_cfg(12, 7);
        let a = run_fuzz(&cfg, &Tracer::disabled());
        cfg.jobs = 4;
        let b = run_fuzz(&cfg, &Tracer::disabled());
        assert_eq!(a.digest, b.digest);
    }
}
