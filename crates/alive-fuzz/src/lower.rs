//! Lowering a typed Alive transform to the mini-LLVM IR.
//!
//! The paranoid oracle wants to *execute* both templates of a transform on
//! concrete inputs through [`alive_opt::interp`] — an evaluator written
//! independently of the SMT encoding. This module builds, for one type
//! assignment, a pair of [`Function`]s (source and target) whose parameters
//! are the transform's input registers, its abstract constants, and one
//! extra parameter per non-literal constant-expression operand (the oracle
//! evaluates those through the SMT term evaluator, where division is total
//! per SMT-LIB, and passes the results in).
//!
//! One semantic wrinkle is handled here rather than in the oracle:
//! `select` is *lazy* in the interpreter (only the chosen arm is demanded)
//! but *strict* in the vcgen encoding (UB and poison flow from both arms).
//! To compare like with like, `select c, t, e` is lowered to the strict
//! mask form
//!
//! ```text
//! m = sext c to w        ; all-ones or all-zeros
//! r = (t & m) | (e & ~m)
//! ```
//!
//! which demands both arms, exactly like the encoding does.

use alive_ir::ast::{CExpr, ConvOp, Inst, Operand, Transform};
use alive_opt::{Function, MInst, MValue};
use alive_smt::BvVal;
use alive_typeck::{Key, TypeAssignment};
use std::collections::HashMap;
use std::fmt;

/// Why a transform could not be lowered (the oracle then skips
/// brute-forcing it; the SMT pipeline is unaffected).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not executable: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// A transform lowered to two executable functions over shared parameters.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// Executes the source template (returns the root value).
    pub src_fn: Function,
    /// Executes the target template (same parameters, returns the
    /// redefined root).
    pub tgt_fn: Function,
    /// Input register names, in parameter order (first).
    pub input_names: Vec<String>,
    /// Abstract constant names, in parameter order (after the inputs).
    pub sym_names: Vec<String>,
    /// Constant expressions bound to the remaining parameters, with their
    /// widths. The oracle evaluates each under the current symbol values
    /// and passes the result as the corresponding argument.
    pub cexprs: Vec<(CExpr, u32)>,
}

fn err(msg: impl Into<String>) -> LowerError {
    LowerError(msg.into())
}

/// Integer width of `key` under `typing`, or an error for non-integers.
fn int_width(typing: &TypeAssignment, key: &Key, what: &str) -> Result<u32, LowerError> {
    match typing.get(key) {
        Some(t) if t.is_int() => Ok(t.register_width(typing.ptr_width)),
        Some(_) => Err(err(format!("{what} is not an integer"))),
        None => Err(err(format!("{what} has no type"))),
    }
}

struct Ctx<'a> {
    typing: &'a TypeAssignment,
    /// Register name -> lowered value.
    env: HashMap<String, MValue>,
    /// Constant-expression parameters discovered during the pre-pass.
    cexprs: Vec<(CExpr, u32)>,
    /// Parameter index for each cexpr (aligned with `cexprs`).
    cexpr_params: Vec<u32>,
}

impl Ctx<'_> {
    /// Lowers an operand of the statement at (`in_target`, `si`),
    /// operand index `oi`.
    fn operand(
        &mut self,
        in_target: bool,
        si: usize,
        oi: usize,
        op: &Operand,
    ) -> Result<MValue, LowerError> {
        match op {
            Operand::Reg(name, _) => self
                .env
                .get(name)
                .copied()
                .ok_or_else(|| err(format!("register %{name} unbound"))),
            Operand::Const(e, _) => {
                let w = int_width(self.typing, &Key::Operand(in_target, si, oi), "constant")?;
                if let CExpr::Lit(n) = e {
                    return Ok(MValue::Const(BvVal::from_i128(w, *n)));
                }
                // Pre-pass registered this expression as a parameter.
                let idx = self
                    .cexprs
                    .iter()
                    .position(|(ce, cw)| ce == e && *cw == w)
                    .ok_or_else(|| err("constant expression not registered"))?;
                Ok(MValue::Reg(self.cexpr_params[idx]))
            }
            Operand::Undef(_) => Err(err("undef operand")),
        }
    }
}

/// Lowers a statement's instruction, pushing mini-LLVM instructions onto
/// `f` and returning the defined value (if any).
fn lower_inst(
    ctx: &mut Ctx<'_>,
    f: &mut Function,
    in_target: bool,
    si: usize,
    stmt_name: Option<&str>,
    inst: &Inst,
) -> Result<Option<MValue>, LowerError> {
    match inst {
        Inst::BinOp { op, flags, a, b } => {
            let a = ctx.operand(in_target, si, 0, a)?;
            let b = ctx.operand(in_target, si, 1, b)?;
            let id = f.push(MInst::Bin {
                op: *op,
                flags: flags.clone(),
                a,
                b,
            });
            Ok(Some(MValue::Reg(id)))
        }
        Inst::ICmp { pred, a, b } => {
            let a = ctx.operand(in_target, si, 0, a)?;
            let b = ctx.operand(in_target, si, 1, b)?;
            let id = f.push(MInst::ICmp { pred: *pred, a, b });
            Ok(Some(MValue::Reg(id)))
        }
        Inst::Select {
            cond,
            on_true,
            on_false,
        } => {
            let c = ctx.operand(in_target, si, 0, cond)?;
            let t = ctx.operand(in_target, si, 1, on_true)?;
            let e = ctx.operand(in_target, si, 2, on_false)?;
            let name = stmt_name.ok_or_else(|| err("select without a result"))?;
            let w = int_width(ctx.typing, &Key::Reg(name.to_string()), "select result")?;
            // Strict mask form; see module docs.
            let mask = MValue::Reg(f.push(MInst::Conv {
                op: ConvOp::SExt,
                a: c,
                to: w,
            }));
            let inv = MValue::Reg(f.push(MInst::Bin {
                op: alive_ir::BinOp::Xor,
                flags: vec![],
                a: mask,
                b: MValue::Const(BvVal::ones(w)),
            }));
            let tm = MValue::Reg(f.push(MInst::Bin {
                op: alive_ir::BinOp::And,
                flags: vec![],
                a: t,
                b: mask,
            }));
            let em = MValue::Reg(f.push(MInst::Bin {
                op: alive_ir::BinOp::And,
                flags: vec![],
                a: e,
                b: inv,
            }));
            let id = f.push(MInst::Bin {
                op: alive_ir::BinOp::Or,
                flags: vec![],
                a: tm,
                b: em,
            });
            Ok(Some(MValue::Reg(id)))
        }
        Inst::Conv { op, arg, .. } => {
            let a = ctx.operand(in_target, si, 0, arg)?;
            let name = stmt_name.ok_or_else(|| err("conversion without a result"))?;
            let to = int_width(ctx.typing, &Key::Reg(name.to_string()), "conversion result")?;
            let from = int_width(
                ctx.typing,
                &match arg {
                    Operand::Reg(n, _) => Key::Reg(n.clone()),
                    _ => Key::Operand(in_target, si, 0),
                },
                "conversion operand",
            )?;
            match op {
                ConvOp::ZExt | ConvOp::SExt | ConvOp::Trunc => {
                    let id = f.push(MInst::Conv { op: *op, a, to });
                    Ok(Some(MValue::Reg(id)))
                }
                ConvOp::Bitcast if from == to => {
                    let id = f.push(MInst::Copy { a });
                    Ok(Some(MValue::Reg(id)))
                }
                _ => Err(err(format!("unsupported conversion {op}"))),
            }
        }
        Inst::Copy { val } => {
            let a = ctx.operand(in_target, si, 0, val)?;
            let id = f.push(MInst::Copy { a });
            Ok(Some(MValue::Reg(id)))
        }
        Inst::Alloca { .. } | Inst::Load { .. } | Inst::Store { .. } | Inst::Gep { .. } => {
            Err(err("memory operation"))
        }
        Inst::Unreachable => Err(err("unreachable")),
    }
}

/// Lowers `t` under `typing` into an executable source/target pair.
///
/// # Errors
///
/// Returns [`LowerError`] for transforms the interpreter cannot execute:
/// memory operations, `unreachable`, `undef` operands, pointer-typed
/// values, and non-integer conversions.
pub fn lower(t: &Transform, typing: &TypeAssignment) -> Result<Lowered, LowerError> {
    // Parameter layout: inputs, then syms, then cexpr params.
    let input_names: Vec<String> = t.inputs().iter().map(|s| s.to_string()).collect();
    let sym_names: Vec<String> = t.constant_symbols();

    let mut params: Vec<u32> = Vec::new();
    for n in &input_names {
        params.push(int_width(typing, &Key::Reg(n.clone()), &format!("%{n}"))?);
    }
    for n in &sym_names {
        params.push(int_width(typing, &Key::Sym(n.clone()), n)?);
    }

    // Pre-pass: register every non-literal constant-expression operand as
    // an extra parameter (deduplicated by expression and width).
    let mut cexprs: Vec<(CExpr, u32)> = Vec::new();
    for (in_target, stmts) in [(false, &t.source), (true, &t.target)] {
        for (si, stmt) in stmts.iter().enumerate() {
            for (oi, op) in stmt.inst.operands().into_iter().enumerate() {
                if let Operand::Const(e, _) = op {
                    if matches!(e, CExpr::Lit(_)) {
                        continue;
                    }
                    let w = int_width(typing, &Key::Operand(in_target, si, oi), "constant")?;
                    if !cexprs.iter().any(|(ce, cw)| ce == e && *cw == w) {
                        cexprs.push((e.clone(), w));
                    }
                }
            }
        }
    }
    let base = params.len() as u32;
    let cexpr_params: Vec<u32> = (0..cexprs.len() as u32).map(|i| base + i).collect();
    for (_, w) in &cexprs {
        params.push(*w);
    }

    let mut env: HashMap<String, MValue> = HashMap::new();
    for (i, n) in input_names.iter().enumerate() {
        env.insert(n.clone(), MValue::Reg(i as u32));
    }

    let mut ctx = Ctx {
        typing,
        env,
        cexprs,
        cexpr_params,
    };

    // Both templates go into one instruction stream; lazy interpretation
    // only evaluates what each root demands.
    let mut f = Function::new("fuzz", params);

    for (si, stmt) in t.source.iter().enumerate() {
        let v = lower_inst(
            &mut ctx,
            &mut f,
            false,
            si,
            stmt.name.as_deref(),
            &stmt.inst,
        )?;
        if let (Some(name), Some(v)) = (&stmt.name, v) {
            ctx.env.insert(name.clone(), v);
        }
    }
    let root = t.root().to_string();
    let src_ret = *ctx
        .env
        .get(&root)
        .ok_or_else(|| err("source defines no root"))?;

    // Target statements shadow same-named source definitions.
    for (si, stmt) in t.target.iter().enumerate() {
        let v = lower_inst(&mut ctx, &mut f, true, si, stmt.name.as_deref(), &stmt.inst)?;
        if let (Some(name), Some(v)) = (&stmt.name, v) {
            ctx.env.insert(name.clone(), v);
        }
    }
    let tgt_ret = *ctx
        .env
        .get(&root)
        .ok_or_else(|| err("target does not redefine the root"))?;

    let mut src_fn = f.clone();
    src_fn.ret = src_ret;
    let mut tgt_fn = f;
    tgt_fn.ret = tgt_ret;

    Ok(Lowered {
        src_fn,
        tgt_fn,
        input_names,
        sym_names,
        cexprs: ctx.cexprs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_opt::{run, Exec, Outcome};
    use alive_typeck::{enumerate_typings, TypeckConfig};

    fn first_typing(t: &Transform) -> TypeAssignment {
        let cfg = TypeckConfig::fast();
        enumerate_typings(t, &cfg).unwrap().remove(0)
    }

    #[test]
    fn lowers_and_executes_a_simple_transform() {
        let t = alive_ir::parse_transform("%r = add i8 %x, %y\n=>\n%r = add i8 %y, %x\n").unwrap();
        let l = lower(&t, &first_typing(&t)).unwrap();
        let args = vec![BvVal::new(8, 3), BvVal::new(8, 4)];
        let s = run(&l.src_fn, &args);
        let g = run(&l.tgt_fn, &args);
        assert_eq!(s, Outcome::Return(Exec::Val(BvVal::new(8, 7))));
        assert_eq!(s, g);
    }

    #[test]
    fn select_is_strict_in_both_arms() {
        // The false arm divides by zero; the lazy interpreter would ignore
        // it when the condition is true, but the strict lowering must not.
        let t = alive_ir::parse_transform(
            "%q = udiv i8 %x, 0\n%r = select i1 %c, i8 %x, %q\n=>\n%r = %x\n",
        )
        .unwrap();
        let l = lower(&t, &first_typing(&t)).unwrap();
        let args = vec![BvVal::new(1, 1), BvVal::new(8, 5)];
        // Parameter order follows t.inputs(): %c first? inputs() walks
        // source statements in order, so %x (from %q) comes first.
        assert_eq!(l.input_names, vec!["x", "c"]);
        let s = run(&l.src_fn, &[BvVal::new(8, 5), BvVal::new(1, 1)]);
        assert_eq!(s, Outcome::Ub, "strict select must demand the UB arm");
        let _ = args;
    }

    #[test]
    fn memory_transforms_are_rejected() {
        let t = alive_ir::parse_transform(
            "%p = alloca i8, 1\nstore %v, %p\n%r = load %p\n=>\n%r = %v\n",
        )
        .unwrap();
        let typings = enumerate_typings(&t, &TypeckConfig::fast()).unwrap();
        assert!(lower(&t, &typings[0]).is_err());
    }
}
