//! Delta-debugging minimization of failing transforms.
//!
//! Given a transform that triggers a failure (a panic, a hang, a paranoid
//! disagreement, …) and a *probe* that re-runs the full pipeline and says
//! whether a candidate still fails the same way, [`minimize`] greedily
//! shrinks the transform until no reduction step preserves the failure:
//!
//! 1. drop a statement, rewiring uses of its result to one of its
//!    operands, a fresh input, or a literal;
//! 2. replace the precondition with `true`;
//! 3. strip instruction attributes (`nsw`, `nuw`, `exact`);
//! 4. replace abstract constants with small literals;
//! 5. simplify composite constant expressions to their first symbol.
//!
//! Candidates that fail *differently* (including candidates that are no
//! longer well-formed — the probe sees a validation error) are rejected,
//! so the result always reproduces the original failure signature. The
//! probe budget bounds total work on pathologically shrink-resistant
//! inputs.

use alive_ir::ast::{CExpr, Inst, Operand, Pred, Stmt, Transform};

/// Counters describing one minimization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Probe invocations (each re-runs the pipeline).
    pub probes: usize,
    /// Accepted reduction steps.
    pub accepted: usize,
}

/// Replaces every use of register `name` in `t` with `rep`.
fn subst_reg(t: &mut Transform, name: &str, rep: &Operand) {
    for stmt in t.source.iter_mut().chain(t.target.iter_mut()) {
        stmt.inst.map_operands_mut(|op| {
            if matches!(op, Operand::Reg(n, _) if n == name) {
                // The annotation comes from the replacement; the probe
                // re-validates and re-types the candidate anyway.
                *op = rep.clone();
            }
        });
    }
}

/// Candidate replacements for the result of a dropped statement.
fn replacements(stmt: &Stmt) -> Vec<Operand> {
    let mut out: Vec<Operand> = Vec::new();
    // First choice: forward one of the instruction's own register
    // operands (keeps the dataflow shape).
    for op in stmt.inst.operands() {
        if matches!(op, Operand::Reg(..)) && !out.contains(op) {
            out.push(op.clone());
        }
    }
    out.push(Operand::Const(CExpr::Lit(0), None));
    out.push(Operand::Const(CExpr::Lit(1), None));
    out
}

/// One round of candidate generation, cheapest-win first.
fn candidates(t: &Transform) -> Vec<Transform> {
    let mut out: Vec<Transform> = Vec::new();

    // Drop a statement (never the final root definition of a template).
    for (in_target, len) in [(false, t.source.len()), (true, t.target.len())] {
        for i in 0..len {
            let stmts = if in_target { &t.target } else { &t.source };
            if i + 1 == len {
                continue; // keep each template's root definition
            }
            let stmt = &stmts[i];
            let name = match &stmt.name {
                Some(n) => n.clone(),
                None => {
                    // store/unreachable: plain removal.
                    let mut c = t.clone();
                    if in_target {
                        c.target.remove(i);
                    } else {
                        c.source.remove(i);
                    }
                    out.push(c);
                    continue;
                }
            };
            for rep in replacements(stmt) {
                let mut c = t.clone();
                if in_target {
                    c.target.remove(i);
                } else {
                    c.source.remove(i);
                }
                subst_reg(&mut c, &name, &rep);
                out.push(c);
            }
        }
    }

    // Precondition to true.
    if t.pre != Pred::True {
        let mut c = t.clone();
        c.pre = Pred::True;
        out.push(c);
    }

    // Strip flags.
    for in_target in [false, true] {
        let stmts = if in_target { &t.target } else { &t.source };
        for (i, stmt) in stmts.iter().enumerate() {
            if let Inst::BinOp { flags, .. } = &stmt.inst {
                if !flags.is_empty() {
                    let mut c = t.clone();
                    let cs = if in_target {
                        &mut c.target
                    } else {
                        &mut c.source
                    };
                    if let Inst::BinOp { flags, .. } = &mut cs[i].inst {
                        flags.clear();
                    }
                    out.push(c);
                }
            }
        }
    }

    // Abstract constants to literals; composite constant expressions to
    // their first symbol.
    for sym in t.constant_symbols() {
        for lit in [0i128, 1] {
            let mut c = t.clone();
            subst_sym(&mut c, &sym, &CExpr::Lit(lit));
            out.push(c);
        }
    }
    for in_target in [false, true] {
        let stmts = if in_target { &t.target } else { &t.source };
        for (i, stmt) in stmts.iter().enumerate() {
            for (oi, op) in stmt.inst.operands().into_iter().enumerate() {
                if let Operand::Const(e, ann) = op {
                    if matches!(e, CExpr::Lit(_) | CExpr::Sym(_)) {
                        continue;
                    }
                    let simpler = match e.symbols().first() {
                        Some(s) => CExpr::Sym(s.to_string()),
                        None => CExpr::Lit(0),
                    };
                    let mut c = t.clone();
                    let cs = if in_target {
                        &mut c.target
                    } else {
                        &mut c.source
                    };
                    set_operand(&mut cs[i].inst, oi, Operand::Const(simpler, ann.clone()));
                    out.push(c);
                }
            }
        }
    }

    out
}

/// Replaces every occurrence of symbol `sym` in constant expressions.
fn subst_sym(t: &mut Transform, sym: &str, rep: &CExpr) {
    fn fix_expr(e: &mut CExpr, sym: &str, rep: &CExpr) {
        match e {
            CExpr::Sym(s) if s == sym => *e = rep.clone(),
            CExpr::Unop(_, a) => fix_expr(a, sym, rep),
            CExpr::Binop(_, a, b) => {
                fix_expr(a, sym, rep);
                fix_expr(b, sym, rep);
            }
            CExpr::Fun(_, args) => {
                for a in args {
                    if let alive_ir::CExprArg::Expr(e) = a {
                        fix_expr(e, sym, rep);
                    }
                }
            }
            _ => {}
        }
    }
    fn fix_pred(p: &mut Pred, sym: &str, rep: &CExpr) {
        match p {
            Pred::Not(a) => fix_pred(a, sym, rep),
            Pred::And(a, b) | Pred::Or(a, b) => {
                fix_pred(a, sym, rep);
                fix_pred(b, sym, rep);
            }
            Pred::Cmp(_, a, b) => {
                fix_expr(a, sym, rep);
                fix_expr(b, sym, rep);
            }
            Pred::Fun(_, args) => {
                for a in args {
                    if let alive_ir::PredArg::Expr(e) = a {
                        fix_expr(e, sym, rep);
                    }
                }
            }
            Pred::True => {}
        }
    }
    for stmt in t.source.iter_mut().chain(t.target.iter_mut()) {
        stmt.inst.map_operands_mut(|op| {
            if let Operand::Const(e, _) = op {
                fix_expr(e, sym, rep);
            }
        });
    }
    fix_pred(&mut t.pre, sym, rep);
}

/// Overwrites operand `oi` of `inst`.
fn set_operand(inst: &mut Inst, oi: usize, new: Operand) {
    let mut i = 0usize;
    inst.map_operands_mut(|op| {
        if i == oi {
            *op = new.clone();
        }
        i += 1;
    });
}

/// Helper: in-place operand iteration (the AST has no mutable operand
/// accessor; this mirrors [`Inst::operands`]'s ordering exactly).
trait MapOperandsMut {
    fn map_operands_mut(&mut self, f: impl FnMut(&mut Operand));
}

impl MapOperandsMut for Inst {
    fn map_operands_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::BinOp { a, b, .. } | Inst::ICmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Inst::Conv { arg, .. } | Inst::Copy { val: arg } => f(arg),
            Inst::Alloca { count, .. } => f(count),
            Inst::Load { ptr } => f(ptr),
            Inst::Store { val, ptr } => {
                f(val);
                f(ptr);
            }
            Inst::Gep { ptr, idxs } => {
                f(ptr);
                for i in idxs {
                    f(i);
                }
            }
            Inst::Unreachable => {}
        }
    }
}

/// Shrinks `t` while `probe` keeps reporting the same failure.
///
/// `probe` must return `true` iff the candidate still fails with the
/// *original* signature (callers compare [`crate::Signature`]s). The input
/// transform itself is assumed to satisfy the probe. Work is bounded by
/// `max_probes`.
pub fn minimize(
    t: &Transform,
    mut probe: impl FnMut(&Transform) -> bool,
    max_probes: usize,
) -> (Transform, MinimizeStats) {
    let mut cur = t.clone();
    let mut stats = MinimizeStats::default();
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            if stats.probes >= max_probes {
                return (cur, stats);
            }
            // Only consider candidates that actually got smaller or
            // simpler (candidates() guarantees this by construction, but
            // statement drops can be no-ops if the register was unused).
            stats.probes += 1;
            if probe(&cand) {
                cur = cand;
                stats.accepted += 1;
                improved = true;
                break; // restart candidate generation on the smaller input
            }
        }
        if !improved {
            return (cur, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake failure: "fails" whenever the source contains a udiv.
    fn has_udiv(t: &Transform) -> bool {
        alive_ir::validate(t).is_ok()
            && t.source.iter().chain(t.target.iter()).any(|s| {
                matches!(
                    s.inst,
                    Inst::BinOp {
                        op: alive_ir::BinOp::UDiv,
                        ..
                    }
                )
            })
    }

    #[test]
    fn shrinks_to_the_failing_instruction() {
        let t = alive_ir::parse_transform(
            "Pre: isPowerOf2(C)\n%a = mul i8 %x, C\n%b = add i8 %a, 1\n%t = udiv i8 %b, %y\n%r = xor i8 %t, %a\n=>\n%r = xor i8 %t, %a\n",
        )
        .unwrap();
        assert!(has_udiv(&t));
        let (small, stats) = minimize(&t, has_udiv, 10_000);
        assert!(has_udiv(&small));
        assert!(stats.accepted > 0);
        let insts: usize = small.source.len() + small.target.len();
        assert!(
            insts <= 3,
            "expected <= 3 instructions after shrinking, got {insts}:\n{small}"
        );
        assert_eq!(small.pre, Pred::True);
    }

    #[test]
    fn returns_input_when_nothing_shrinks() {
        let t =
            alive_ir::parse_transform("%r = udiv i8 %x, %y\n=>\n%r = udiv i8 %x, %y\n").unwrap();
        let (small, _) = minimize(&t, has_udiv, 1000);
        assert_eq!(small, t);
    }
}
