//! The paranoid differential oracle.
//!
//! Verification answers are only as trustworthy as the SMT pipeline that
//! produced them. This module re-derives verdicts along independent paths
//! and reports *disagreements*:
//!
//! * **UNSAT re-check** — every refutation [`Certificate`] attached to a
//!   verdict is re-validated by the independent RUP/DRAT checker in
//!   `alive-proof` (which shares no code with the solver's search).
//! * **Brute force** — at small widths the entire input space is
//!   enumerable. For each type assignment, every point of the input/
//!   constant space is executed through the concrete interpreter in
//!   `alive-opt` (via [`crate::lower`]) and checked against the paper's
//!   refinement conditions: under ψ (precondition ∧ source defined ∧
//!   source poison-free), the target must be defined, poison-free, and
//!   equal to the source. A `Valid` verdict with a concrete violation, or
//!   an `Invalid` verdict whose input space is exhaustively clean, is a
//!   disagreement.
//! * **Encoding cross-check** — at every enumerated point the vcgen
//!   encoding (evaluated with `alive-smt`'s term evaluator) is compared
//!   against the interpreter's outcome. The two implementations were
//!   written independently; any divergence is a bug in one of them.
//!
//! (SAT counterexamples are already replayed concretely by the verifier
//! itself before it reports `Invalid`; the brute-force pass here re-checks
//! that direction independently of the model.)
//!
//! Transforms the oracle cannot execute — memory operations, `undef`
//! operands, register-dependent precondition predicates (approximated by
//! fresh booleans in the encoding), or input spaces beyond the point
//! budget — are skipped with a recorded reason, never silently.

use crate::lower::{lower, Lowered};
use alive_ir::Transform;
use alive_opt::{run, Exec, Outcome};
use alive_proof::Certificate;
use alive_smt::{eval, Assignment, BvVal, TermId, TermPool, Value};
use alive_typeck::{enumerate_typings, Key, TypeAssignment};
use alive_vcgen::{encode_cexpr, encode_transform, NameEnv, TransformEnc};
use alive_verifier::{OutcomeKind, VerifyConfig};
use std::collections::HashMap;

/// Tunables for the paranoid oracle.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Brute force only runs when every enumerated variable is at most
    /// this wide.
    pub max_width: u32,
    /// Cap on the number of enumeration points per typing.
    pub max_points: u64,
    /// Cap on the number of typings brute-forced per transform.
    pub max_typings: usize,
    /// Re-check refutation certificates with the independent checker.
    pub check_certificates: bool,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            max_width: 8,
            max_points: 4096,
            max_typings: 16,
            check_certificates: true,
        }
    }
}

/// What the oracle concluded about one verdict.
#[derive(Clone, Debug, Default)]
pub struct AuditResult {
    /// Human-readable disagreements (empty means the verdict survived).
    pub disagreements: Vec<String>,
    /// Reasons any typing was skipped rather than enumerated.
    pub skipped: Vec<String>,
    /// Total concrete points executed.
    pub points_checked: u64,
    /// Typings fully enumerated.
    pub typings_checked: usize,
}

impl AuditResult {
    /// Did the verdict survive every cross-check?
    pub fn is_clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Outcome of brute-forcing a single typing.
enum TypingCheck {
    /// No refinement violation found; `complete` means every point under
    /// the precondition was executed.
    Clean { points: u64 },
    /// A concrete violation (with a rendered witness).
    Violation { points: u64, witness: String },
    /// Not executable / too large; reason recorded.
    Skipped(String),
}

/// Audits one verdict against the independent checkers.
///
/// `kind` is the verdict under audit, `certs` the refutation certificates
/// the verifier attached to it (empty when certificates were not
/// requested).
pub fn paranoid_audit(
    t: &Transform,
    kind: OutcomeKind,
    certs: &[Certificate],
    vcfg: &VerifyConfig,
    cfg: &OracleConfig,
) -> AuditResult {
    let mut out = AuditResult::default();

    if cfg.check_certificates {
        for (i, cert) in certs.iter().enumerate() {
            if let Err(e) = cert.check() {
                out.disagreements.push(format!(
                    "certificate {i} rejected by the independent checker: {e}"
                ));
            }
        }
    }

    // Brute force only cross-checks definite verdicts.
    if !matches!(kind, OutcomeKind::Valid | OutcomeKind::Invalid) {
        return out;
    }

    let typings = match enumerate_typings(t, &vcfg.typeck) {
        Ok(ts) => ts,
        Err(_) => return out, // verifier saw the same error; nothing to audit
    };
    let total_typings = typings.len();
    let mut any_violation = false;
    let mut all_complete = true;

    for typing in typings.into_iter().take(cfg.max_typings) {
        match brute_check_typing(t, &typing, cfg, &mut out.disagreements) {
            TypingCheck::Clean { points } => {
                out.points_checked += points;
                out.typings_checked += 1;
            }
            TypingCheck::Violation { points, witness } => {
                out.points_checked += points;
                out.typings_checked += 1;
                any_violation = true;
                if kind == OutcomeKind::Valid {
                    out.disagreements.push(format!(
                        "verdict is valid but exhaustive enumeration found a violation \
                         ({}): {witness}",
                        typing.summary()
                    ));
                }
            }
            TypingCheck::Skipped(reason) => {
                all_complete = false;
                out.skipped.push(reason);
            }
        }
    }
    if total_typings > cfg.max_typings {
        all_complete = false;
        out.skipped.push(format!(
            "{total_typings} typings, audited {}",
            cfg.max_typings
        ));
    }

    if kind == OutcomeKind::Invalid && all_complete && !any_violation && out.typings_checked > 0 {
        out.disagreements.push(format!(
            "verdict is invalid but exhaustive enumeration of all {} typing(s) found no \
             violation",
            out.typings_checked
        ));
    }
    out
}

/// Widths of the enumerated variables (inputs then syms), or a skip
/// reason.
fn enumeration_plan(
    enc: &TransformEnc,
    lowered: &Lowered,
    typing: &TypeAssignment,
    cfg: &OracleConfig,
) -> Result<Vec<(Option<TermId>, u32)>, String> {
    let mut vars: Vec<(Option<TermId>, u32)> = Vec::new();
    for name in &lowered.input_names {
        let w = match typing.get(&Key::Reg(name.clone())) {
            Some(ct) if ct.is_int() => ct.register_width(typing.ptr_width),
            _ => return Err(format!("input %{name} is not an integer")),
        };
        vars.push((enc.inputs.get(name).copied(), w));
    }
    for name in &lowered.sym_names {
        let w = match typing.get(&Key::Sym(name.clone())) {
            Some(ct) if ct.is_int() => ct.register_width(typing.ptr_width),
            _ => return Err(format!("constant {name} is not an integer")),
        };
        vars.push((enc.consts.get(name).copied(), w));
    }
    if let Some(&(_, w)) = vars.iter().find(|(_, w)| *w > cfg.max_width) {
        return Err(format!("variable width i{w} exceeds brute-force cap"));
    }
    let total_bits: u32 = vars.iter().map(|(_, w)| *w).sum();
    if total_bits > 62 || (1u64 << total_bits) > cfg.max_points {
        return Err(format!(
            "input space of 2^{total_bits} points exceeds brute-force budget"
        ));
    }
    Ok(vars)
}

fn render_point(lowered: &Lowered, vals: &[BvVal]) -> String {
    let names = lowered
        .input_names
        .iter()
        .map(|n| format!("%{n}"))
        .chain(lowered.sym_names.iter().cloned());
    names
        .zip(vals.iter())
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn describe(o: &Outcome) -> String {
    match o {
        Outcome::Ub => "UB".into(),
        Outcome::Return(Exec::Poison) => "poison".into(),
        Outcome::Return(Exec::Val(v)) => format!("{v}"),
    }
}

/// Enumerates every point of one typing. Pushes encoding-divergence
/// disagreements directly into `disagreements`.
fn brute_check_typing(
    t: &Transform,
    typing: &TypeAssignment,
    cfg: &OracleConfig,
    disagreements: &mut Vec<String>,
) -> TypingCheck {
    let mut pool = TermPool::new();
    let enc = match encode_transform(&mut pool, t, typing) {
        Ok(enc) => enc,
        Err(e) => return TypingCheck::Skipped(format!("not encodable: {e}")),
    };
    if !enc.pre_aux.is_empty() {
        return TypingCheck::Skipped("precondition uses approximated register predicates".into());
    }
    if !enc.src.undefs.is_empty() || !enc.tgt.undefs.is_empty() {
        return TypingCheck::Skipped("undef semantics are not enumerable pointwise".into());
    }
    if !enc.mem_consistency.is_empty()
        || !enc.src.alloca_constraints.is_empty()
        || !enc.tgt.alloca_constraints.is_empty()
    {
        return TypingCheck::Skipped("memory operations".into());
    }
    let lowered = match lower(t, typing) {
        Ok(l) => l,
        Err(e) => return TypingCheck::Skipped(e.to_string()),
    };
    let vars = match enumeration_plan(&enc, &lowered, typing, cfg) {
        Ok(v) => v,
        Err(reason) => return TypingCheck::Skipped(reason),
    };

    // Encode the constant-expression parameters once.
    let reg_widths: HashMap<String, u32> = typing
        .iter()
        .filter_map(|(k, ct)| match k {
            Key::Reg(n) if ct.is_int() => Some((n.clone(), ct.register_width(typing.ptr_width))),
            _ => None,
        })
        .collect();
    let mut regs: HashMap<String, TermId> = enc.inputs.clone();
    for (name, &v) in &enc.src.values {
        regs.insert(name.clone(), v);
    }
    let env = NameEnv {
        consts: &enc.consts,
        regs: &regs,
        reg_widths: &reg_widths,
    };
    let mut cexpr_terms: Vec<TermId> = Vec::new();
    for (e, w) in &lowered.cexprs {
        match encode_cexpr(&mut pool, e, *w, &env) {
            Ok(id) => cexpr_terms.push(id),
            Err(e) => return TypingCheck::Skipped(format!("constant not encodable: {e}")),
        }
    }

    let root = &enc.root;
    let (src_d, src_p, src_v) = (
        enc.src.defined[root],
        enc.src.poison_free[root],
        enc.src.values[root],
    );
    let (tgt_d, tgt_p, tgt_v) = (
        enc.tgt.defined[root],
        enc.tgt.poison_free[root],
        enc.tgt.values[root],
    );

    let total_bits: u32 = vars.iter().map(|(_, w)| *w).sum();
    let n_points = 1u64 << total_bits;
    let mut points = 0u64;
    let mut witness: Option<String> = None;

    for p in 0..n_points {
        // Decompose the point index into one value per variable.
        let mut vals: Vec<BvVal> = Vec::with_capacity(vars.len());
        let mut shift = 0u32;
        for &(_, w) in &vars {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            vals.push(BvVal::new(w, u128::from((p >> shift) & mask)));
            shift += w;
        }
        let mut asg = Assignment::new();
        for (&(id, _), v) in vars.iter().zip(&vals) {
            if let Some(id) = id {
                asg.set(id, *v);
            }
        }

        // φ: skip points outside the precondition.
        let pre_ok = match eval(&pool, enc.pre, &asg) {
            Ok(Value::Bool(b)) => b,
            _ => return TypingCheck::Skipped("precondition not evaluable".into()),
        };
        if !pre_ok {
            continue;
        }
        points += 1;

        // Arguments: enumerated values plus evaluated constant expressions.
        let mut args = vals.clone();
        for &term in &cexpr_terms {
            match eval(&pool, term, &asg) {
                Ok(Value::Bv(v)) => args.push(v),
                _ => return TypingCheck::Skipped("constant not evaluable".into()),
            }
        }

        let src_out = run(&lowered.src_fn, &args);
        let tgt_out = run(&lowered.tgt_fn, &args);

        // Encoding cross-check: the interpreter returns a clean value iff
        // the encoding says the root is defined and poison-free, and then
        // the values must agree. (δ and ρ are compared as a conjunction:
        // the two implementations classify poison-operand UB differently,
        // but δ∧ρ — the only combination refinement depends on — must
        // match.)
        for (what, d, pf, v, o) in [
            ("source", src_d, src_p, src_v, &src_out),
            ("target", tgt_d, tgt_p, tgt_v, &tgt_out),
        ] {
            let clean = match (eval(&pool, d, &asg), eval(&pool, pf, &asg)) {
                (Ok(Value::Bool(a)), Ok(Value::Bool(b))) => a && b,
                _ => return TypingCheck::Skipped("encoding not evaluable".into()),
            };
            match (clean, o) {
                (true, Outcome::Return(Exec::Val(iv))) => {
                    if let Ok(Value::Bv(ev)) = eval(&pool, v, &asg) {
                        if ev != *iv {
                            disagreements.push(format!(
                                "encoding/interpreter divergence on {what} value at \
                                 {}: encoding {ev}, interpreter {iv}",
                                render_point(&lowered, &vals)
                            ));
                        }
                    }
                }
                (true, other) => disagreements.push(format!(
                    "encoding/interpreter divergence on {what} at {}: encoding says \
                     defined+poison-free, interpreter says {}",
                    render_point(&lowered, &vals),
                    describe(other)
                )),
                (false, Outcome::Return(Exec::Val(iv))) => disagreements.push(format!(
                    "encoding/interpreter divergence on {what} at {}: encoding says \
                     UB-or-poison, interpreter computed {iv}",
                    render_point(&lowered, &vals)
                )),
                (false, _) => {}
            }
        }

        // Refinement: under ψ the target must produce the same clean value.
        if let Outcome::Return(Exec::Val(sv)) = src_out {
            let refined = matches!(tgt_out, Outcome::Return(Exec::Val(tv)) if tv == sv);
            if !refined && witness.is_none() {
                witness = Some(format!(
                    "at {}: source {}, target {}",
                    render_point(&lowered, &vals),
                    describe(&src_out),
                    describe(&tgt_out)
                ));
            }
        }
    }

    match witness {
        Some(witness) => TypingCheck::Violation { points, witness },
        None => TypingCheck::Clean { points },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(text: &str, kind: OutcomeKind) -> AuditResult {
        let t = alive_ir::parse_transform(text).unwrap();
        let vcfg = VerifyConfig::fast();
        paranoid_audit(&t, kind, &[], &vcfg, &OracleConfig::default())
    }

    #[test]
    fn agrees_with_a_correct_transform() {
        let r = audit(
            "%r = add i4 %x, %y\n=>\n%r = add i4 %y, %x\n",
            OutcomeKind::Valid,
        );
        assert!(r.is_clean(), "{:?}", r.disagreements);
        assert!(r.points_checked > 0);
    }

    #[test]
    fn catches_a_bogus_valid_verdict() {
        // sub is not commutative: claiming this is valid must be refuted.
        let r = audit(
            "%r = sub i4 %x, %y\n=>\n%r = sub i4 %y, %x\n",
            OutcomeKind::Valid,
        );
        assert!(!r.is_clean());
        assert!(r.disagreements[0].contains("found a violation"));
    }

    #[test]
    fn catches_a_bogus_invalid_verdict() {
        let r = audit(
            "%r = add i4 %x, %y\n=>\n%r = add i4 %y, %x\n",
            OutcomeKind::Invalid,
        );
        assert!(!r.is_clean());
        assert!(r.disagreements[0].contains("found no"));
    }

    #[test]
    fn respects_preconditions() {
        // Only valid because the precondition pins C != 0... actually
        // udiv %x, C refines to itself trivially; use a pre-dependent one:
        // x | C == x + C requires x & C == 0; with Pre: C == 0 it holds.
        let r = audit(
            "Pre: C == 0\n%r = or i4 %x, C\n=>\n%r = add i4 %x, C\n",
            OutcomeKind::Valid,
        );
        assert!(r.is_clean(), "{:?}", r.disagreements);
    }

    #[test]
    fn skips_memory_transforms() {
        let r = audit(
            "%p = alloca i8, 1\nstore %v, %p\n%r = load %p\n=>\n%r = %v\n",
            OutcomeKind::Valid,
        );
        assert!(r.is_clean());
        assert_eq!(r.typings_checked, 0);
        assert!(!r.skipped.is_empty());
    }

    #[test]
    fn strict_select_matches_the_encoding() {
        // Lazy-select semantics would hide the poison in the untaken arm;
        // the encoding cross-check fails if lowering were lazy.
        let r = audit(
            "%t = add nsw i4 %x, %y\n%r = select i1 %c, i4 %x, %t\n=>\n%r = select i1 %c, i4 %x, %t\n",
            OutcomeKind::Valid,
        );
        assert!(r.is_clean(), "{:?}", r.disagreements);
        assert!(r.points_checked > 0);
    }
}
