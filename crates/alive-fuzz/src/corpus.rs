//! Crash corpus: persistent, deduplicated failure reproducers.
//!
//! Every failure the fuzzer finds (after minimization) is written into a
//! corpus directory as a plain Alive `.opt` file whose name is the
//! failure's *signature* — a stable hash of the failure class and its
//! digit-normalized detail text, so reruns of the same bug land on the
//! same file instead of piling up duplicates. Checked-in corpus entries
//! are replayed as regression tests (`tests/corpus_replay.rs`).

use alive_ir::Transform;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Broad classes of fuzzer-visible failure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FailureClass {
    /// The pipeline panicked (caught by the driver's isolation layer).
    Panic,
    /// The pipeline exceeded its deadline.
    Hang,
    /// The paranoid oracle disagreed with the verdict.
    Disagreement,
    /// The pipeline reported an error on generator-produced input.
    Error,
}

impl FailureClass {
    /// A short lowercase label (used in filenames).
    pub fn as_str(self) -> &'static str {
        match self {
            FailureClass::Panic => "panic",
            FailureClass::Hang => "hang",
            FailureClass::Disagreement => "disagreement",
            FailureClass::Error => "error",
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A stable identity for "the same failure".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    /// The failure class.
    pub class: FailureClass,
    /// FNV-1a hash of the class and the digit-normalized detail text.
    pub hash: u64,
}

impl Signature {
    /// Builds a signature from a failure class and its detail text.
    ///
    /// Runs of decimal digits are collapsed before hashing, so details
    /// that differ only in case indices, concrete values, line numbers,
    /// or timings map to the same signature.
    pub fn new(class: FailureClass, detail: &str) -> Signature {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fnv = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in class.as_str().bytes() {
            fnv(b);
        }
        let mut in_digits = false;
        for b in detail.bytes() {
            if b.is_ascii_digit() {
                if !in_digits {
                    fnv(b'N');
                    in_digits = true;
                }
            } else {
                in_digits = false;
                fnv(b);
            }
        }
        Signature { class, hash: h }
    }

    /// The filename stem for this signature, e.g. `panic-1f9a60d2c3b4a5e6`.
    pub fn slug(&self) -> String {
        format!("{}-{:016x}", self.class, self.hash)
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.slug())
    }
}

/// A directory of failure reproducers, one `.opt` file per signature.
#[derive(Clone, Debug)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Opens (creating if necessary) a corpus directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Corpus> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Corpus { dir })
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path a signature's reproducer lives at.
    pub fn path_for(&self, sig: &Signature) -> PathBuf {
        self.dir.join(format!("{}.opt", sig.slug()))
    }

    /// Saves a reproducer; returns `false` if this signature was already
    /// in the corpus (the existing reproducer is kept).
    pub fn save(&self, sig: &Signature, t: &Transform, detail: &str) -> io::Result<bool> {
        let path = self.path_for(sig);
        if path.exists() {
            return Ok(false);
        }
        let mut text = String::new();
        text.push_str(&format!("; class: {}\n", sig.class));
        for line in detail.lines().take(6) {
            text.push_str(&format!("; {line}\n"));
        }
        // No `Name:` header — the filename is the identity, and slugs
        // contain hex hashes the lexer would reject as malformed numbers.
        text.push_str(&t.to_string());
        if !text.ends_with('\n') {
            text.push('\n');
        }
        fs::write(&path, text)?;
        Ok(true)
    }

    /// Loads every reproducer in the corpus, sorted by filename so replay
    /// order is stable. Unparsable files are reported as errors.
    pub fn entries(&self) -> io::Result<Vec<(String, Transform)>> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "opt"))
            .collect();
        files.sort();
        let mut out = Vec::new();
        for path in files {
            let text = fs::read_to_string(&path)?;
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("corpus-entry")
                .to_string();
            let t = alive_ir::parse_transform(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            out.push((name, t));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_normalize_digits() {
        let a = Signature::new(FailureClass::Panic, "internal error: fault at query 3");
        let b = Signature::new(FailureClass::Panic, "internal error: fault at query 17");
        assert_eq!(a, b);
        let c = Signature::new(FailureClass::Panic, "internal error: other");
        assert_ne!(a, c);
        let d = Signature::new(FailureClass::Hang, "internal error: fault at query 3");
        assert_ne!(a, d);
    }

    #[test]
    fn save_dedups_and_entries_round_trip() {
        let dir = std::env::temp_dir().join(format!("alive-fuzz-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let corpus = Corpus::open(&dir).unwrap();
        let t = alive_ir::parse_transform("%r = add i8 %x, 1\n=>\n%r = add i8 %x, 1\n").unwrap();
        let sig = Signature::new(FailureClass::Disagreement, "verdict mismatch at case 12");
        assert!(corpus
            .save(&sig, &t, "verdict mismatch at case 12")
            .unwrap());
        assert!(!corpus
            .save(&sig, &t, "verdict mismatch at case 99")
            .unwrap());
        let entries = corpus.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1.source, t.source);
        let _ = fs::remove_dir_all(&dir);
    }
}
