//! Grammar-aware generation of random Alive transformations.
//!
//! The generator emits *well-typed by construction* transforms: every value
//! is assigned a concrete bitwidth during generation and (most) operands
//! carry explicit `iN` annotations, so type enumeration stays small and the
//! paranoid oracle can afford to brute-force the result. Templates are
//! built as expression trees emitted in post-order, which satisfies the
//! SSA/scoping rules of [`alive_ir::validate`] by construction:
//!
//! * every temporary is defined before its (unique) use,
//! * the root is the last source statement,
//! * the target always redefines the root.
//!
//! Generation is deterministic: the same [`GenConfig`] and seed produce the
//! same transform, independent of worker count or iteration order (no
//! hash-map iteration anywhere in this module).

use alive_ir::ast::{
    BinOp, CExpr, CUnop, ConvOp, Flag, ICmpPred, Inst, Operand, Pred, PredArg, PredCmpOp, Stmt,
    Transform, Type,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Tunables for the transform generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum integer bitwidth drawn for any value (inclusive).
    pub max_width: u32,
    /// Soft cap on the number of source instructions.
    pub max_insts: usize,
    /// Probability that a register/constant operand carries an explicit
    /// `iN` annotation (conversions are always annotated).
    pub annot_prob: f64,
    /// Probability that the transform gets a precondition.
    pub pre_prob: f64,
    /// Probability that a leaf operand is `undef` (paranoid brute-force
    /// skips undef-bearing transforms, the SMT pipeline still runs them).
    pub undef_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_width: 8,
            max_insts: 6,
            annot_prob: 0.85,
            pre_prob: 0.3,
            undef_prob: 0.02,
        }
    }
}

/// Mixes a run seed and a case index into a per-case RNG seed
/// (splitmix64-style finalizer, so neighbouring indices diverge fully).
pub fn case_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates the `index`-th transform of a run, deterministically.
pub fn gen_case(seed: u64, index: u64, cfg: &GenConfig) -> Transform {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, index));
    gen_transform(&mut rng, cfg)
}

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::UDiv,
    BinOp::SDiv,
    BinOp::URem,
    BinOp::SRem,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
];

const ICMP_PREDS: &[ICmpPred] = &[
    ICmpPred::Eq,
    ICmpPred::Ne,
    ICmpPred::Ugt,
    ICmpPred::Uge,
    ICmpPred::Ult,
    ICmpPred::Ule,
    ICmpPred::Sgt,
    ICmpPred::Sge,
    ICmpPred::Slt,
    ICmpPred::Sle,
];

struct Gen<'a> {
    rng: &'a mut StdRng,
    cfg: &'a GenConfig,
    /// Emitted source statements, in order.
    stmts: Vec<Stmt>,
    /// (name, width) of every input register created so far.
    inputs: Vec<(String, u32)>,
    /// (name, width) of every source temporary emitted so far.
    temps: Vec<(String, u32)>,
    /// (name, width-at-first-use) of abstract constants in use.
    syms: Vec<(String, u32)>,
    next_temp: usize,
    /// Remaining instruction budget.
    budget: usize,
    /// While generating the target, no new inputs may be minted (a
    /// register used only by the target is rejected by `validate`).
    frozen_inputs: bool,
}

impl Gen<'_> {
    fn width(&mut self) -> u32 {
        self.rng.gen_range(1..=self.cfg.max_width)
    }

    fn annot(&mut self, w: u32) -> Option<Type> {
        if self.rng.gen_bool(self.cfg.annot_prob) {
            Some(Type::Int(w))
        } else {
            None
        }
    }

    /// A leaf operand of width `w`: an input register, a constant, or
    /// (rarely) `undef`.
    fn leaf(&mut self, w: u32) -> Operand {
        if self.rng.gen_bool(self.cfg.undef_prob) {
            return Operand::Undef(Some(Type::Int(w)));
        }
        match self.rng.gen_range(0..10u32) {
            // Reuse or mint an input register.
            0..=4 => {
                let existing: Vec<String> = self
                    .inputs
                    .iter()
                    .filter(|(_, iw)| *iw == w)
                    .map(|(n, _)| n.clone())
                    .collect();
                let name = if !existing.is_empty() && (self.frozen_inputs || self.rng.gen_bool(0.5))
                {
                    existing[self.rng.gen_range(0..existing.len())].clone()
                } else if self.frozen_inputs {
                    // No reusable input of this width: fall back to a
                    // constant so the target never mints a new input.
                    let ty = self.annot(w);
                    return Operand::Const(self.literal(w), ty);
                } else {
                    let name = format!("x{}", self.inputs.len());
                    self.inputs.push((name.clone(), w));
                    name
                };
                let ty = self.annot(w);
                Operand::Reg(name, ty)
            }
            // Literal constant.
            5..=7 => {
                let ty = self.annot(w);
                Operand::Const(self.literal(w), ty)
            }
            // Abstract constant (possibly wrapped in constant arithmetic).
            _ => {
                let ty = self.annot(w);
                Operand::Const(self.sym_expr(w), ty)
            }
        }
    }

    /// A literal whose value is interesting at width `w` (boundary values
    /// are over-represented on purpose).
    fn literal(&mut self, w: u32) -> CExpr {
        let max = if w >= 64 { i128::MAX } else { (1i128 << w) - 1 };
        let v = match self.rng.gen_range(0..6u32) {
            0 => 0,
            1 => 1,
            2 => -1,
            3 => 1i128 << (w - 1).min(62), // sign bit (as unsigned literal)
            _ => self.rng.gen_range(0..=max.min(1 << 16) as u64) as i128,
        };
        CExpr::Lit(v)
    }

    /// A constant expression mentioning an abstract constant, with a width
    /// recorded so later uses of the same symbol stay consistent.
    fn sym_expr(&mut self, w: u32) -> CExpr {
        // Reuse a same-width symbol or mint a new one.
        let existing: Vec<String> = self
            .syms
            .iter()
            .filter(|(_, sw)| *sw == w)
            .map(|(n, _)| n.clone())
            .collect();
        let name = if !existing.is_empty() && self.rng.gen_bool(0.6) {
            existing[self.rng.gen_range(0..existing.len())].clone()
        } else {
            let name = format!("C{}", self.syms.len());
            self.syms.push((name.clone(), w));
            name
        };
        let sym = CExpr::Sym(name);
        match self.rng.gen_range(0..8u32) {
            0 => CExpr::Unop(CUnop::Not, Box::new(sym)),
            1 => CExpr::Unop(CUnop::Neg, Box::new(sym)),
            2 => CExpr::Binop(
                alive_ir::ast::CBinop::Add,
                Box::new(sym),
                Box::new(CExpr::Lit(1)),
            ),
            3 => CExpr::Binop(
                alive_ir::ast::CBinop::Sub,
                Box::new(sym),
                Box::new(CExpr::Lit(1)),
            ),
            _ => sym,
        }
    }

    fn push_temp(&mut self, inst: Inst, w: u32) -> String {
        let name = format!("t{}", self.next_temp);
        self.next_temp += 1;
        self.stmts.push(Stmt {
            name: Some(name.clone()),
            inst,
        });
        self.temps.push((name.clone(), w));
        name
    }

    /// An operand of width `w`: an expression tree (consuming budget), a
    /// reuse of an already-emitted temporary, or a leaf.
    fn expr(&mut self, w: u32, depth: u32) -> Operand {
        // Occasionally share an existing temporary (makes the DAG case).
        if depth > 0 && self.rng.gen_bool(0.12) {
            let candidates: Vec<String> = self
                .temps
                .iter()
                .filter(|(_, tw)| *tw == w)
                .map(|(n, _)| n.clone())
                .collect();
            if !candidates.is_empty() {
                let name = candidates[self.rng.gen_range(0..candidates.len())].clone();
                let ty = self.annot(w);
                return Operand::Reg(name, ty);
            }
        }
        if self.budget == 0 || depth >= 3 || self.rng.gen_bool(0.35) {
            return self.leaf(w);
        }
        self.budget -= 1;
        let inst = self.inst(w, depth);
        let name = self.push_temp(inst, w);
        let ty = self.annot(w);
        Operand::Reg(name, ty)
    }

    /// A random instruction producing a value of width `w`.
    fn inst(&mut self, w: u32, depth: u32) -> Inst {
        let choice = self.rng.gen_range(0..10u32);
        match choice {
            // icmp: only possible when the requested width is 1.
            0 | 1 if w == 1 => {
                let ow = self.width();
                let a = self.expr(ow, depth + 1);
                // One operand is always annotated so the comparison's width
                // component is usually pinned.
                let a = match a {
                    Operand::Reg(n, _) => Operand::Reg(n, Some(Type::Int(ow))),
                    Operand::Const(e, _) => Operand::Const(e, Some(Type::Int(ow))),
                    Operand::Undef(_) => Operand::Undef(Some(Type::Int(ow))),
                };
                let b = self.expr(ow, depth + 1);
                let pred = ICMP_PREDS[self.rng.gen_range(0..ICMP_PREDS.len())];
                Inst::ICmp { pred, a, b }
            }
            // select
            2 => {
                let cond = self.expr(1, depth + 1);
                let on_true = self.expr(w, depth + 1);
                let on_false = self.expr(w, depth + 1);
                Inst::Select {
                    cond,
                    on_true,
                    on_false,
                }
            }
            // Conversions: need a distinct argument width in range.
            3 if w > 1 => {
                // zext/sext from a narrower width.
                let from = self.rng.gen_range(1..w);
                let arg = self.expr(from, depth + 1);
                let arg = annotate(arg, from);
                let op = if self.rng.gen_bool(0.5) {
                    ConvOp::ZExt
                } else {
                    ConvOp::SExt
                };
                Inst::Conv {
                    op,
                    arg,
                    to: Some(Type::Int(w)),
                }
            }
            4 if w < self.cfg.max_width => {
                // trunc from a wider width.
                let from = self.rng.gen_range(w + 1..=self.cfg.max_width);
                let arg = self.expr(from, depth + 1);
                let arg = annotate(arg, from);
                Inst::Conv {
                    op: ConvOp::Trunc,
                    arg,
                    to: Some(Type::Int(w)),
                }
            }
            // Everything else: a binary operation at width `w`.
            _ => {
                let op = BINOPS[self.rng.gen_range(0..BINOPS.len())];
                let allowed = op.allowed_flags();
                let mut flags: Vec<Flag> = Vec::new();
                for &f in allowed {
                    if self.rng.gen_bool(0.2) {
                        flags.push(f);
                    }
                }
                let a = self.expr(w, depth + 1);
                let b = self.expr(w, depth + 1);
                Inst::BinOp { op, flags, a, b }
            }
        }
    }

    /// An optional precondition over the symbols minted so far.
    fn precondition(&mut self) -> Pred {
        if self.syms.is_empty() || !self.rng.gen_bool(self.cfg.pre_prob) {
            return Pred::True;
        }
        let (name, w) = {
            let i = self.rng.gen_range(0..self.syms.len());
            self.syms[i].clone()
        };
        let sym = CExpr::Sym(name);
        match self.rng.gen_range(0..6u32) {
            0 => Pred::Fun("isPowerOf2".into(), vec![PredArg::Expr(sym)]),
            1 => Pred::Cmp(PredCmpOp::Ne, sym, CExpr::Lit(0)),
            2 => Pred::Cmp(PredCmpOp::Sgt, sym, CExpr::Lit(0)),
            3 => Pred::Cmp(PredCmpOp::Ult, sym, CExpr::Lit(1i128 << (w - 1).min(62))),
            4 => Pred::Not(Box::new(Pred::Cmp(PredCmpOp::Eq, sym, CExpr::Lit(0)))),
            _ => Pred::Cmp(PredCmpOp::Sge, sym, CExpr::Lit(0)),
        }
    }
}

fn annotate(op: Operand, w: u32) -> Operand {
    match op {
        Operand::Reg(n, _) => Operand::Reg(n, Some(Type::Int(w))),
        Operand::Const(e, _) => Operand::Const(e, Some(Type::Int(w))),
        Operand::Undef(_) => Operand::Undef(Some(Type::Int(w))),
    }
}

/// Generates one random, well-formed transform.
///
/// The result always passes [`alive_ir::validate`]; a debug assertion
/// enforces this, and the fuzz driver re-checks in release builds.
pub fn gen_transform(rng: &mut StdRng, cfg: &GenConfig) -> Transform {
    let root_width = rng.gen_range(1..=cfg.max_width);
    let mut g = Gen {
        rng,
        cfg,
        stmts: Vec::new(),
        inputs: Vec::new(),
        temps: Vec::new(),
        syms: Vec::new(),
        next_temp: 0,
        budget: cfg.max_insts.saturating_sub(1),
        frozen_inputs: false,
    };

    // Source: an expression tree whose root instruction defines `%r` last.
    let root_inst = g.inst(root_width, 0);
    g.stmts.push(Stmt {
        name: Some("r".into()),
        inst: root_inst,
    });
    let source = std::mem::take(&mut g.stmts);

    // Target: redefine `%r`, by one of three strategies. New inputs may
    // not appear here — registers used only by the target are invalid.
    g.frozen_inputs = true;
    let strategy = g.rng.gen_range(0..10u32);
    let target = match strategy {
        // Identity-ish: copy an input (or constant) of the root's width.
        0..=2 => {
            let val = g.leaf(root_width);
            let val = annotate(val, root_width);
            vec![Stmt {
                name: Some("r".into()),
                inst: Inst::Copy { val },
            }]
        }
        // Mutation: clone the source and perturb one instruction. These
        // are the interesting cases for the oracle — usually *invalid*
        // transforms whose counterexamples must replay concretely.
        3..=5 => {
            let mut tgt = source.clone();
            let i = g.rng.gen_range(0..tgt.len());
            mutate_inst(&mut tgt[i].inst, g.rng);
            tgt
        }
        // Fresh expression tree over the same inputs (and possibly new
        // ones), with its own temporaries.
        _ => {
            g.budget = cfg.max_insts.saturating_sub(1);
            g.temps.clear(); // fresh tree may not reference source temps
            let root_inst = g.inst(root_width, 0);
            let mut tgt = std::mem::take(&mut g.stmts);
            // Rename fresh temporaries %tN -> %uN to avoid silently
            // overwriting same-named source temporaries.
            for s in &mut tgt {
                if let Some(n) = &mut s.name {
                    if let Some(rest) = n.strip_prefix('t') {
                        *n = format!("u{rest}");
                    }
                }
                rename_regs(&mut s.inst, "t", "u");
            }
            let mut root_inst = root_inst;
            rename_regs(&mut root_inst, "t", "u");
            tgt.push(Stmt {
                name: Some("r".into()),
                inst: root_inst,
            });
            tgt
        }
    };

    let pre = g.precondition();
    let mut t = Transform {
        name: None,
        pre,
        source,
        target,
    };
    normalize_annotations(&mut t);
    debug_assert!(
        alive_ir::validate(&t).is_ok(),
        "generator produced an invalid transform: {t}"
    );
    t
}

/// Makes annotations print/parse-stable: a binop or icmp whose *first*
/// operand is annotated prints that type in the leading position, which the
/// parser reads as an instruction-level type and applies to *both*
/// operands. Annotating the second operand whenever the first is annotated
/// makes the printed form a parse fixpoint.
fn normalize_annotations(t: &mut Transform) {
    for stmt in t.source.iter_mut().chain(t.target.iter_mut()) {
        if let Inst::BinOp { a, b, .. } | Inst::ICmp { a, b, .. } = &mut stmt.inst {
            let a_ty = match a {
                Operand::Reg(_, ty) | Operand::Const(_, ty) | Operand::Undef(ty) => ty.clone(),
            };
            if let Some(ty) = a_ty {
                match b {
                    Operand::Reg(_, ann @ None)
                    | Operand::Const(_, ann @ None)
                    | Operand::Undef(ann @ None) => *ann = Some(ty),
                    _ => {}
                }
            }
        }
    }
}

/// Renames register operands `%<from>N` to `%<to>N` in-place.
fn rename_regs(inst: &mut Inst, from: &str, to: &str) {
    let fix = |op: &mut Operand| {
        if let Operand::Reg(n, _) = op {
            if let Some(rest) = n.strip_prefix(from) {
                if rest.chars().all(|c| c.is_ascii_digit()) && !rest.is_empty() {
                    *n = format!("{to}{rest}");
                }
            }
        }
    };
    match inst {
        Inst::BinOp { a, b, .. } | Inst::ICmp { a, b, .. } => {
            fix(a);
            fix(b);
        }
        Inst::Select {
            cond,
            on_true,
            on_false,
        } => {
            fix(cond);
            fix(on_true);
            fix(on_false);
        }
        Inst::Conv { arg, .. } | Inst::Copy { val: arg } => fix(arg),
        Inst::Alloca { count: op, .. } => fix(op),
        Inst::Load { ptr } => fix(ptr),
        Inst::Store { val, ptr } => {
            fix(val);
            fix(ptr);
        }
        Inst::Gep { ptr, idxs } => {
            fix(ptr);
            for i in idxs {
                fix(i);
            }
        }
        Inst::Unreachable => {}
    }
}

/// Perturbs one instruction in place, preserving well-typedness.
fn mutate_inst(inst: &mut Inst, rng: &mut StdRng) {
    match inst {
        Inst::BinOp { op, flags, a, b } => match rng.gen_range(0..4u32) {
            // Swap to another binop with the same shape.
            0 => {
                let mut nop = BINOPS[rng.gen_range(0..BINOPS.len())];
                if nop == *op {
                    nop = BinOp::Xor;
                }
                *op = nop;
                flags.retain(|f| nop.allowed_flags().contains(f));
            }
            // Toggle a flag.
            1 if !op.allowed_flags().is_empty() => {
                let f = op.allowed_flags()[rng.gen_range(0..op.allowed_flags().len())];
                if flags.contains(&f) {
                    flags.retain(|&g| g != f);
                } else {
                    flags.push(f);
                }
            }
            // Swap operands.
            _ => std::mem::swap(a, b),
        },
        Inst::ICmp { pred, a, b } => {
            if rng.gen_bool(0.5) {
                *pred = ICMP_PREDS[rng.gen_range(0..ICMP_PREDS.len())];
            } else {
                std::mem::swap(a, b);
            }
        }
        Inst::Select {
            on_true, on_false, ..
        } => std::mem::swap(on_true, on_false),
        Inst::Conv { op, .. } => {
            // zext <-> sext keeps widths legal; other conversions are left
            // alone.
            match *op {
                ConvOp::ZExt => *op = ConvOp::SExt,
                ConvOp::SExt => *op = ConvOp::ZExt,
                _ => {}
            }
        }
        Inst::Copy {
            val: Operand::Const(e, _),
        } => {
            *e = CExpr::Unop(CUnop::Not, Box::new(e.clone()));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_transforms_validate() {
        let cfg = GenConfig::default();
        for i in 0..500 {
            let t = gen_case(7, i, &cfg);
            alive_ir::validate(&t).unwrap_or_else(|e| {
                panic!("case {i} failed validation: {e}\n{t}");
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for i in 0..100 {
            let a = gen_case(42, i, &cfg);
            let b = gen_case(42, i, &cfg);
            assert_eq!(a, b, "case {i} not deterministic");
        }
    }

    #[test]
    fn generated_transforms_parse_back() {
        let cfg = GenConfig::default();
        for i in 0..200 {
            let t = gen_case(13, i, &cfg);
            let text = t.to_string();
            let back = alive_ir::parse_transform(&text)
                .unwrap_or_else(|e| panic!("case {i} failed to re-parse: {e}\n{text}"));
            assert_eq!(back.to_string(), text, "printer not a fixpoint on case {i}");
        }
    }
}
