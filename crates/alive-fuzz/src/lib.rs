//! Grammar-aware fuzzing and paranoid self-checking for the Alive toolchain.
//!
//! This crate turns the verifier on itself:
//!
//! * [`gen`] — a seeded generator of well-typed random transforms;
//! * [`lower`] — lowering of a typed transform to the mini-LLVM IR so the
//!   concrete interpreter can execute it;
//! * [`oracle`] — the paranoid differential oracle: SAT counterexamples
//!   replayed concretely, UNSAT answers re-checked against their
//!   refutation certificates, and small-width verdicts cross-checked by
//!   brute-force enumeration;
//! * [`minimize`] — a delta-debugging minimizer that shrinks a failing
//!   transform while preserving its failure signature;
//! * [`corpus`] — a crash corpus with failure-signature dedup;
//! * [`fuzz`] — the driver tying it all together (`alive fuzz`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod lower;
pub mod minimize;
pub mod oracle;

pub use corpus::{Corpus, FailureClass, Signature};
pub use fuzz::{replay_corpus, run_fuzz, FailureCase, FuzzConfig, FuzzReport};
pub use gen::{case_seed, gen_case, gen_transform, GenConfig};
pub use lower::{lower, LowerError, Lowered};
pub use minimize::{minimize, MinimizeStats};
pub use oracle::{paranoid_audit, AuditResult, OracleConfig};
