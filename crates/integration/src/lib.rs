//! Integration-test host crate; the test sources live in `/tests`.
