//! The optimization corpus: InstCombine transformations translated to the
//! Alive DSL, organized by the source file they came from (paper Table 3),
//! plus the eight incorrect transformations of Fig. 8 and their corrected
//! versions.
//!
//! The paper translated 334 of 1,028 InstCombine optimizations; this
//! reproduction ships a representative corpus with the same file structure
//! and the exact Fig. 8 bugs. Counts per category are reported side by
//! side with the paper's in the Table 3 reproduction binary.
//!
//! # Examples
//!
//! ```
//! use alive_suite::{corpus, buggy, InstCombineFile};
//!
//! let all = corpus();
//! assert!(all.iter().any(|e| e.file == InstCombineFile::AddSub));
//! assert_eq!(buggy().len(), 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use alive_ir::{parse_transforms, Transform};
use std::fmt;

/// The InstCombine source file a transformation was translated from
/// (paper Table 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum InstCombineFile {
    /// `InstCombineAddSub.cpp`
    AddSub,
    /// `InstCombineAndOrXor.cpp`
    AndOrXor,
    /// `InstCombineLoadStoreAlloca.cpp`
    LoadStoreAlloca,
    /// `InstCombineMulDivRem.cpp`
    MulDivRem,
    /// `InstCombineSelect.cpp`
    Select,
    /// `InstCombineShifts.cpp`
    Shifts,
}

impl InstCombineFile {
    /// All files, in Table 3 order.
    pub fn all() -> [InstCombineFile; 6] {
        [
            InstCombineFile::AddSub,
            InstCombineFile::AndOrXor,
            InstCombineFile::LoadStoreAlloca,
            InstCombineFile::MulDivRem,
            InstCombineFile::Select,
            InstCombineFile::Shifts,
        ]
    }

    /// Short display name used in Table 3.
    pub fn name(self) -> &'static str {
        match self {
            InstCombineFile::AddSub => "AddSub",
            InstCombineFile::AndOrXor => "AndOrXor",
            InstCombineFile::LoadStoreAlloca => "LoadStoreAlloca",
            InstCombineFile::MulDivRem => "MulDivRem",
            InstCombineFile::Select => "Select",
            InstCombineFile::Shifts => "Shifts",
        }
    }

    /// Total number of optimizations in this file per the paper's Table 3.
    pub fn paper_total(self) -> usize {
        match self {
            InstCombineFile::AddSub => 67,
            InstCombineFile::AndOrXor => 165,
            InstCombineFile::LoadStoreAlloca => 28,
            InstCombineFile::MulDivRem => 65,
            InstCombineFile::Select => 74,
            InstCombineFile::Shifts => 43,
        }
    }

    /// Number translated to Alive per the paper's Table 3.
    pub fn paper_translated(self) -> usize {
        match self {
            InstCombineFile::AddSub => 49,
            InstCombineFile::AndOrXor => 131,
            InstCombineFile::LoadStoreAlloca => 17,
            InstCombineFile::MulDivRem => 44,
            InstCombineFile::Select => 52,
            InstCombineFile::Shifts => 41,
        }
    }

    /// Number of bugs found per the paper's Table 3.
    pub fn paper_bugs(self) -> usize {
        match self {
            InstCombineFile::AddSub => 2,
            InstCombineFile::MulDivRem => 6,
            _ => 0,
        }
    }
}

impl fmt::Display for InstCombineFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The transformation's `Name:` header.
    pub name: String,
    /// Which InstCombine file it models.
    pub file: InstCombineFile,
    /// The parsed transformation.
    pub transform: Transform,
    /// Whether the verifier is expected to reject it (Fig. 8 bugs).
    pub expected_bug: bool,
}

const ADDSUB: &str = include_str!("../opts/addsub.opt");
const ANDORXOR: &str = include_str!("../opts/andorxor.opt");
const MULDIVREM: &str = include_str!("../opts/muldivrem.opt");
const SELECT: &str = include_str!("../opts/select.opt");
const SHIFTS: &str = include_str!("../opts/shifts.opt");
const LOADSTOREALLOCA: &str = include_str!("../opts/loadstorealloca.opt");
const BUGGY: &str = include_str!("../opts/buggy.opt");
const FIXED: &str = include_str!("../opts/fixed.opt");

fn parse_category(text: &str, file: InstCombineFile, expected_bug: bool) -> Vec<SuiteEntry> {
    parse_transforms(text)
        .unwrap_or_else(|e| panic!("corpus file for {file} failed to parse: {e}"))
        .into_iter()
        .map(|t| SuiteEntry {
            name: t.name.clone().unwrap_or_else(|| "<unnamed>".to_string()),
            file,
            transform: t,
            expected_bug,
        })
        .collect()
}

/// File attribution of the Fig. 8 bugs (by PR number).
fn buggy_file(name: &str) -> InstCombineFile {
    match name {
        // PR20186 (0 - (X sdiv C)) and PR20189 root at `sub`, which lives
        // in InstCombineAddSub — matching the paper's Table 3 attribution
        // of 2 bugs to AddSub and 6 to MulDivRem.
        "PR20186" | "PR20189" => InstCombineFile::AddSub,
        _ => InstCombineFile::MulDivRem,
    }
}

/// The correct (expected-to-verify) corpus, including the fixed versions of
/// the Fig. 8 bugs.
pub fn corpus() -> Vec<SuiteEntry> {
    let mut out = Vec::new();
    out.extend(parse_category(ADDSUB, InstCombineFile::AddSub, false));
    out.extend(parse_category(ANDORXOR, InstCombineFile::AndOrXor, false));
    out.extend(parse_category(
        LOADSTOREALLOCA,
        InstCombineFile::LoadStoreAlloca,
        false,
    ));
    out.extend(parse_category(MULDIVREM, InstCombineFile::MulDivRem, false));
    out.extend(parse_category(SELECT, InstCombineFile::Select, false));
    out.extend(parse_category(SHIFTS, InstCombineFile::Shifts, false));
    for mut e in parse_category(FIXED, InstCombineFile::MulDivRem, false) {
        e.file = buggy_file(e.name.trim_end_matches("-fixed"));
        out.push(e);
    }
    out
}

/// The eight incorrect transformations of Fig. 8, verbatim.
pub fn buggy() -> Vec<SuiteEntry> {
    parse_transforms(BUGGY)
        .expect("buggy corpus parses")
        .into_iter()
        .map(|t| {
            let name = t.name.clone().unwrap_or_default();
            SuiteEntry {
                file: buggy_file(&name),
                name,
                transform: t,
                expected_bug: true,
            }
        })
        .collect()
}

/// The whole corpus: correct entries plus the Fig. 8 bugs.
pub fn full_corpus() -> Vec<SuiteEntry> {
    let mut out = corpus();
    out.extend(buggy());
    out
}

/// Looks up a single entry by name across the full corpus.
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    full_corpus().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::validate;
    use std::collections::HashSet;

    #[test]
    fn all_entries_parse_and_validate() {
        let all = full_corpus();
        assert!(all.len() >= 120, "corpus has {} entries", all.len());
        for e in &all {
            validate(&e.transform)
                .unwrap_or_else(|err| panic!("{} fails validation: {err}", e.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let all = full_corpus();
        let mut seen = HashSet::new();
        for e in &all {
            assert!(seen.insert(e.name.clone()), "duplicate name {}", e.name);
        }
    }

    #[test]
    fn buggy_set_is_figure8() {
        let b = buggy();
        assert_eq!(b.len(), 8);
        let names: HashSet<String> = b.iter().map(|e| e.name.clone()).collect();
        for pr in [
            "PR20186", "PR20189", "PR21242", "PR21243", "PR21245", "PR21255", "PR21256", "PR21274",
        ] {
            assert!(names.contains(pr), "missing {pr}");
        }
        assert!(b.iter().all(|e| e.expected_bug));
    }

    #[test]
    fn every_category_is_populated() {
        let all = corpus();
        for file in InstCombineFile::all() {
            let n = all.iter().filter(|e| e.file == file).count();
            assert!(n >= 8, "{file} has only {n} entries");
        }
    }

    #[test]
    fn fixed_versions_exist_for_every_bug() {
        let all = corpus();
        for pr in [
            "PR20186", "PR20189", "PR21242", "PR21243", "PR21245", "PR21255", "PR21256", "PR21274",
        ] {
            assert!(
                all.iter().any(|e| e.name == format!("{pr}-fixed")),
                "missing fixed version of {pr}"
            );
        }
    }

    #[test]
    fn round_trips_through_printer() {
        for e in full_corpus() {
            let printed = e.transform.to_string();
            let reparsed = alive_ir::parse_transform(&printed)
                .unwrap_or_else(|err| panic!("{} reparse failed: {err}\n{printed}", e.name));
            assert_eq!(reparsed, e.transform, "{} round trip mismatch", e.name);
        }
    }

    #[test]
    fn by_name_finds_entries() {
        assert!(by_name("PR21245").is_some());
        assert!(by_name("AddSub:NotIntro").is_some());
        assert!(by_name("NoSuchOpt").is_none());
    }

    #[test]
    fn all_typecheck() {
        for e in full_corpus() {
            alive_typeck_smoke(&e);
        }
    }

    fn alive_typeck_smoke(_e: &SuiteEntry) {
        // Typechecking lives in alive-typeck; the integration tests verify
        // the whole corpus end to end. Here we only ensure parseability,
        // which the other tests already cover.
    }
}
